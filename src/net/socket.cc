#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace geosir::net {
namespace {

util::Status Errno(const char* what) {
  return util::Status::Unavailable(std::string(what) + ": " +
                                   ::strerror(errno));
}

util::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return util::Status::OK();
}

/// Poll timeout for the deadline's remaining time: at least 1 ms while
/// time remains (rounding to zero would busy-spin), -1 for infinite.
/// This 1 ms rounding is the "poll granularity" the deadline contract
/// allows an operation to overshoot by.
int PollTimeoutMs(util::Deadline deadline) {
  if (deadline.infinite()) return -1;
  const int64_t us = deadline.remaining_micros();
  if (us <= 0) return 0;
  return static_cast<int>((us + 999) / 1000);
}

/// Waits until `events` is ready on fd or the deadline passes. Returns
/// true when ready (including error/hup conditions the subsequent I/O
/// call will surface properly); false on timeout.
bool PollWait(int fd, short events, util::Deadline deadline) {
  while (true) {
    if (deadline.expired()) return false;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (rc > 0) return true;
    if (rc == 0) continue;  // Timed out this slice; recheck the deadline.
    if (errno == EINTR) continue;
    return true;  // Let recv/send report the real error.
  }
}

util::Status ParseAddr(const std::string& host, uint16_t port,
                       struct sockaddr_in* addr) {
  ::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return util::Status::InvalidArgument("not a dotted-quad IPv4 address: " +
                                         host);
  }
  return util::Status::OK();
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::Adopt(int fd) {
  (void)SetNonBlocking(fd);
  return Socket(fd);
}

util::Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                                     util::Deadline deadline) {
  struct sockaddr_in addr;
  GEOSIR_RETURN_IF_ERROR(ParseAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);
  GEOSIR_RETURN_IF_ERROR(SetNonBlocking(fd));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    if (!PollWait(fd, POLLOUT, deadline)) {
      return util::Status::DeadlineExceeded("connect timed out");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (so_error != 0) {
      return util::Status::Unavailable(std::string("connect: ") +
                                       ::strerror(so_error));
    }
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

util::Status Socket::ReadFull(void* buf, size_t size, util::Deadline deadline,
                              size_t* bytes_read) {
  if (bytes_read != nullptr) *bytes_read = 0;
  if (fd_ < 0) return util::Status::Internal("read on an invalid socket");
  uint8_t* out = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, out + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      if (bytes_read != nullptr) *bytes_read = done;
      continue;
    }
    if (n == 0) {
      return util::Status::Unavailable("connection closed by peer");
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return Errno("recv");
    if (deadline.expired() || !PollWait(fd_, POLLIN, deadline)) {
      return util::Status::DeadlineExceeded("read timed out");
    }
  }
  return util::Status::OK();
}

util::Status Socket::WriteFull(const void* buf, size_t size,
                               util::Deadline deadline) {
  if (fd_ < 0) return util::Status::Internal("write on an invalid socket");
  const uint8_t* in = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd_, in + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return Errno("send");
    }
    if (deadline.expired() || !PollWait(fd_, POLLOUT, deadline)) {
      return util::Status::DeadlineExceeded("write timed out");
    }
  }
  return util::Status::OK();
}

void Socket::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() {
  if (fd_ >= 0) (void)::close(fd_);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) (void)::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

util::Result<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                      int backlog) {
  struct sockaddr_in addr;
  GEOSIR_RETURN_IF_ERROR(ParseAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  Listener listener(fd, 0);
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  GEOSIR_RETURN_IF_ERROR(SetNonBlocking(fd));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) < 0) return Errno("listen");
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) <
      0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

util::Result<Socket> Listener::Accept(util::Deadline deadline) {
  if (fd_ < 0) return util::Status::Internal("accept on an invalid listener");
  while (true) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      Socket socket = Socket::Adopt(fd);
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return socket;
    }
    if (errno == EINTR) continue;
    if (errno == EINVAL) {
      // accept on a shutdown() listener: the Stop path.
      return util::Status::Cancelled("listener shut down");
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK
#ifdef ECONNABORTED
        && errno != ECONNABORTED
#endif
    ) {
      return Errno("accept");
    }
    if (deadline.expired() || !PollWait(fd_, POLLIN, deadline)) {
      return util::Status::DeadlineExceeded("accept timed out");
    }
  }
}

void Listener::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

}  // namespace geosir::net
