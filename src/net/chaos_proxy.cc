#include "net/chaos_proxy.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace geosir::net {

/// One proxied connection: the client-facing socket, the target-facing
/// socket, and the two pump threads shuttling bytes between them. The
/// sockets outlive the threads via the shared_ptr; Stop/Sever only
/// Shutdown() them (never Close()), so a racing pump can at worst see a
/// failing fd, not a recycled one.
struct ChaosProxy::Relay {
  Socket client;
  Socket upstream;
  std::thread down_thread;  // target → client
  std::thread up_thread;    // client → target
  std::atomic<bool> dead{false};

  void Kill() {
    dead.store(true, std::memory_order_relaxed);
    client.Shutdown();
    upstream.Shutdown();
  }
};

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)) {
  garbage_state_.store(options_.seed * 0x9E3779B97F4A7C15ull + 1,
                       std::memory_order_relaxed);
}

util::Result<std::unique_ptr<ChaosProxy>> ChaosProxy::Start(
    ChaosProxyOptions options) {
  std::unique_ptr<ChaosProxy> proxy(new ChaosProxy(std::move(options)));
  GEOSIR_ASSIGN_OR_RETURN(
      proxy->listener_,
      Listener::Bind(proxy->options_.listen_host, proxy->options_.listen_port));
  proxy->accept_thread_ = std::thread([p = proxy.get()] { p->AcceptLoop(); });
  return proxy;
}

ChaosProxy::~ChaosProxy() { Stop(); }

void ChaosProxy::Stop() {
  if (stopping_.exchange(true, std::memory_order_relaxed)) return;
  listener_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(relays_mutex_);
    for (auto& relay : relays_) relay->Kill();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Relay>> relays;
  {
    std::lock_guard<std::mutex> lock(relays_mutex_);
    relays.swap(relays_);
  }
  for (auto& relay : relays) {
    if (relay->down_thread.joinable()) relay->down_thread.join();
    if (relay->up_thread.joinable()) relay->up_thread.join();
  }
}

void ChaosProxy::Sever() {
  severs_.fetch_add(1, std::memory_order_relaxed);
  severed_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(relays_mutex_);
  for (auto& relay : relays_) relay->Kill();
}

void ChaosProxy::Restore() {
  severed_.store(false, std::memory_order_relaxed);
}

void ChaosProxy::TruncateDownstreamAfter(size_t bytes) {
  truncate_after_.store(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
}

void ChaosProxy::InjectGarbage(size_t bytes) {
  garbage_bytes_.store(static_cast<int64_t>(bytes),
                       std::memory_order_relaxed);
}

void ChaosProxy::StallDownstream(int millis) {
  stall_ms_.store(millis, std::memory_order_relaxed);
}

void ChaosProxy::CloseDownstreamHalf() {
  half_close_.store(true, std::memory_order_relaxed);
}

ChaosProxyCounters ChaosProxy::counters() const {
  ChaosProxyCounters counters;
  counters.connections = connections_.load(std::memory_order_relaxed);
  counters.refused_while_severed =
      refused_while_severed_.load(std::memory_order_relaxed);
  counters.truncations = truncations_.load(std::memory_order_relaxed);
  counters.garbage_injections =
      garbage_injections_.load(std::memory_order_relaxed);
  counters.stalls = stalls_.load(std::memory_order_relaxed);
  counters.half_closes = half_closes_.load(std::memory_order_relaxed);
  counters.severs = severs_.load(std::memory_order_relaxed);
  return counters;
}

uint8_t ChaosProxy::NextGarbageByte() {
  // SplitMix64 step (same generator family as the fault planners), one
  // byte per draw: reproducible noise for a given seed.
  uint64_t z = garbage_state_.fetch_add(0x9E3779B97F4A7C15ull,
                                        std::memory_order_relaxed) +
               0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<uint8_t>((z ^ (z >> 31)) & 0xFF);
}

void ChaosProxy::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kCancelled) return;
      continue;
    }
    if (severed_.load(std::memory_order_relaxed)) {
      // The link is down: the TCP handshake may still complete (the
      // kernel did it), but the peer is gone the instant anyone talks.
      refused_while_severed_.fetch_add(1, std::memory_order_relaxed);
      continue;  // Dropping the Socket closes it.
    }
    auto upstream =
        Socket::Connect(options_.target_host, options_.target_port,
                        util::Deadline::AfterMillis(2000));
    if (!upstream.ok()) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto relay = std::make_shared<Relay>();
    relay->client = std::move(accepted).value();
    relay->upstream = std::move(upstream).value();
    {
      std::lock_guard<std::mutex> lock(relays_mutex_);
      // Reap finished relays so a long chaos run does not accumulate
      // dead sockets; their threads are joined here, off the hot path.
      for (auto it = relays_.begin(); it != relays_.end();) {
        if ((*it)->dead.load(std::memory_order_relaxed)) {
          if ((*it)->down_thread.joinable()) (*it)->down_thread.join();
          if ((*it)->up_thread.joinable()) (*it)->up_thread.join();
          it = relays_.erase(it);
        } else {
          ++it;
        }
      }
      relays_.push_back(relay);
    }
    relay->down_thread =
        std::thread([this, relay] { PumpDirection(relay, true); });
    relay->up_thread =
        std::thread([this, relay] { PumpDirection(relay, false); });
  }
}

void ChaosProxy::PumpDirection(const std::shared_ptr<Relay>& relay,
                               bool downstream) {
  Socket& from = downstream ? relay->upstream : relay->client;
  Socket& to = downstream ? relay->client : relay->upstream;
  std::vector<uint8_t> buf(options_.chunk_bytes);
  while (!relay->dead.load(std::memory_order_relaxed)) {
    // Read whatever is available (up to a chunk): ReadFull with size 1
    // would serialize bytes, so recv directly through a 1-byte ReadFull
    // then drain. Simplest portable shape: block for the first byte,
    // then opportunistically read the rest with a zero deadline.
    size_t got = 0;
    util::Status first =
        from.ReadFull(buf.data(), 1, util::Deadline(), &got);
    if (!first.ok()) break;
    size_t extra = 0;
    (void)from.ReadFull(buf.data() + 1, buf.size() - 1,
                        util::Deadline::AfterMicros(0), &extra);
    size_t have = 1 + extra;

    if (downstream) {
      const int stall = stall_ms_.exchange(0, std::memory_order_relaxed);
      if (stall > 0) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
      }
      const int64_t garbage =
          garbage_bytes_.exchange(0, std::memory_order_relaxed);
      if (garbage > 0) {
        garbage_injections_.fetch_add(1, std::memory_order_relaxed);
        std::vector<uint8_t> noise(static_cast<size_t>(garbage));
        for (auto& b : noise) b = NextGarbageByte();
        if (!to.WriteFull(noise.data(), noise.size(),
                          util::Deadline::AfterMillis(2000))
                 .ok()) {
          break;
        }
      }
      if (half_close_.exchange(false, std::memory_order_relaxed)) {
        half_closes_.fetch_add(1, std::memory_order_relaxed);
        to.Shutdown();  // Downstream goes quiet; upstream stays up.
        continue;
      }
      const int64_t budget =
          truncate_after_.load(std::memory_order_relaxed);
      if (budget >= 0) {
        if (static_cast<int64_t>(have) >= budget) {
          // Forward exactly the budget, then cut the whole connection:
          // the client holds a torn frame.
          truncate_after_.store(-1, std::memory_order_relaxed);
          truncations_.fetch_add(1, std::memory_order_relaxed);
          if (budget > 0) {
            (void)to.WriteFull(buf.data(), static_cast<size_t>(budget),
                               util::Deadline::AfterMillis(2000));
          }
          relay->Kill();
          break;
        }
        truncate_after_.store(budget - static_cast<int64_t>(have),
                              std::memory_order_relaxed);
      }
    }
    if (!to.WriteFull(buf.data(), have, util::Deadline::AfterMillis(5000))
             .ok()) {
      break;
    }
  }
  relay->Kill();
}

}  // namespace geosir::net
