#ifndef GEOSIR_NET_FRAME_H_
#define GEOSIR_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "util/deadline.h"
#include "util/status.h"

namespace geosir::net {

/// CRC32-framed wire envelope shared by every replication RPC. Layout
/// (all little-endian):
///
///   u32 magic 'G''S''N''1' | u8 version | u8 type | u16 flags (0)
///   | u32 payload_len | payload bytes | u32 crc32
///
/// The CRC covers everything before it (header + payload), so a flipped
/// length, type or version byte is caught, not just payload rot. The
/// length prefix is validated against a max-frame bound BEFORE any
/// allocation: a corrupt or hostile peer cannot make the reader reserve
/// gigabytes by forging one u32.
///
/// Decode error contract (the transport maps these onto the follower's
/// retry/resync semantics):
///   kUnavailable  the buffer/stream ended before the frame did (torn at
///                 a clean boundary, or more bytes still in flight).
///   kCorruption   the bytes can never become a valid frame: bad magic,
///                 oversize length, CRC mismatch.
inline constexpr uint32_t kFrameMagic = 0x314E5347u;  // "GSN1" on the wire.
/// v2: fetch requests carry a fencing min_epoch, fetch replies carry the
/// primary's epoch, and the kEpochInfo probe exists. The request/reply
/// payload layouts changed shape, so v1 and v2 peers must not talk —
/// the handshake rejects the mismatch terminally (kFailedPrecondition).
inline constexpr uint8_t kProtocolVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Default payload bound. Generous (snapshots ship whole checkpoints) but
/// finite: the reader allocates at most this much per frame.
inline constexpr size_t kDefaultMaxFramePayload = size_t{64} << 20;

struct Frame {
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

/// Appends one framed message to `out`.
void AppendFrame(std::vector<uint8_t>* out, uint8_t type,
                 const uint8_t* payload, size_t payload_len);
void AppendFrame(std::vector<uint8_t>* out, uint8_t type,
                 const std::vector<uint8_t>& payload);

/// Decodes one frame from the front of [data, data+size). On success sets
/// `consumed` to the frame's full byte length. See the error contract
/// above; neither error consumes bytes.
util::Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                                size_t max_payload, size_t* consumed);

/// Writes one frame to the socket under the deadline. `wire_bytes`, when
/// non-null, receives the frame's on-wire size (for byte counters).
util::Status WriteFrame(Socket* socket, uint8_t type,
                        const std::vector<uint8_t>& payload,
                        util::Deadline deadline,
                        size_t* wire_bytes = nullptr);

/// Reads one complete frame from the socket under the deadline.
///   kDeadlineExceeded  the deadline expired mid-read.
///   kUnavailable       the peer closed cleanly BETWEEN frames.
///   kCorruption        the peer closed mid-frame (torn), or the frame
///                      failed validation (magic / bound / CRC).
util::Result<Frame> ReadFrame(Socket* socket, size_t max_payload,
                              util::Deadline deadline,
                              size_t* wire_bytes = nullptr);

// --- Little-endian byte codec helpers (shared by the wire protocol) ---

void PutU8(std::vector<uint8_t>* out, uint8_t v);
void PutU16(std::vector<uint8_t>* out, uint16_t v);
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutU64(std::vector<uint8_t>* out, uint64_t v);

/// Bounds-checked sequential reader over a byte span. Every Read returns
/// false (and leaves the output untouched) once the span is exhausted —
/// decoding a truncated or hostile payload degrades to a clean failure,
/// never an overread.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }

  bool ReadU8(uint8_t* v);
  bool ReadU16(uint16_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadBytes(std::vector<uint8_t>* out, size_t n);
  bool ReadString(std::string* out, size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace geosir::net

#endif  // GEOSIR_NET_FRAME_H_
