#ifndef GEOSIR_NET_CHAOS_PROXY_H_
#define GEOSIR_NET_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "util/status.h"

namespace geosir::net {

/// A byte-level TCP chaos relay: clients connect to the proxy, the proxy
/// connects onward to the target, and every byte flows through fault
/// hooks the test controls. The socket analogue of the replication
/// tier's FaultInjectingTransport — where that decorator fails whole
/// RPCs, this one damages the byte stream itself (torn frames, stalls,
/// garbage, half-open closes, severed links), which is what a real
/// network does.
///
/// Faults are armed explicitly and deterministically: each arm-call
/// applies to the NEXT matching transfer, so a test scripts an exact
/// sequence (arm, trigger one RPC, assert) instead of sampling rates.
/// Garbage bytes come from a SplitMix64 stream seeded at Start, so even
/// the injected noise is reproducible.
///
/// Downstream means target→client bytes (the responses a follower
/// reads); upstream means client→target. Faults apply downstream, where
/// frame validation lives.
struct ChaosProxyOptions {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = ephemeral.
  std::string target_host = "127.0.0.1";
  uint16_t target_port = 0;
  /// Seed for the garbage-byte stream.
  uint64_t seed = 1;
  /// Relay chunk size; faults land at chunk boundaries, so a smaller
  /// chunk gives finer-grained truncation points.
  size_t chunk_bytes = 4096;
};

struct ChaosProxyCounters {
  uint64_t connections = 0;
  uint64_t refused_while_severed = 0;
  uint64_t truncations = 0;
  uint64_t garbage_injections = 0;
  uint64_t stalls = 0;
  uint64_t half_closes = 0;
  uint64_t severs = 0;
};

class ChaosProxy {
 public:
  static util::Result<std::unique_ptr<ChaosProxy>> Start(
      ChaosProxyOptions options);

  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// The proxy's listening port (connect clients here).
  uint16_t port() const { return listener_.port(); }

  /// Stops the accept loop, kills every live relay, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  // --- Link control (all thread-safe) ---

  /// Cuts the link: every live connection is shut down and new ones are
  /// accepted-then-closed until Restore(). A client sees connection
  /// resets / immediate EOFs — exactly a dead switch port.
  void Sever();
  void Restore();
  bool severed() const { return severed_.load(std::memory_order_relaxed); }

  // --- One-shot byte-level faults (applied to the next downstream
  //     transfer, then disarmed) ---

  /// Forwards only `bytes` more downstream bytes, then hard-closes both
  /// sides of that connection. Arm with a value smaller than a frame to
  /// cut mid-frame.
  void TruncateDownstreamAfter(size_t bytes);
  /// Prepends `bytes` seeded garbage bytes to the next downstream chunk
  /// (the client's framer sees a corrupt magic/CRC).
  void InjectGarbage(size_t bytes);
  /// Holds the next downstream chunk for `millis` before forwarding
  /// (client read deadlines fire).
  void StallDownstream(int millis);
  /// Half-open: shuts down only the downstream direction of the next
  /// active connection, leaving upstream writable — the classic
  /// half-dead TCP peer.
  void CloseDownstreamHalf();

  ChaosProxyCounters counters() const;

 private:
  struct Relay;

  explicit ChaosProxy(ChaosProxyOptions options);

  void AcceptLoop();
  void RunRelay(std::shared_ptr<Relay> relay);
  void PumpDirection(const std::shared_ptr<Relay>& relay, bool downstream);
  /// Next byte of the deterministic garbage stream.
  uint8_t NextGarbageByte();

  ChaosProxyOptions options_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> severed_{false};

  // Armed one-shot faults. -1 / 0 = disarmed.
  std::atomic<int64_t> truncate_after_{-1};
  std::atomic<int64_t> garbage_bytes_{0};
  std::atomic<int> stall_ms_{0};
  std::atomic<bool> half_close_{false};

  std::atomic<uint64_t> garbage_state_{0};

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> refused_while_severed_{0};
  std::atomic<uint64_t> truncations_{0};
  std::atomic<uint64_t> garbage_injections_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> half_closes_{0};
  std::atomic<uint64_t> severs_{0};

  mutable std::mutex relays_mutex_;
  std::vector<std::shared_ptr<Relay>> relays_;
};

}  // namespace geosir::net

#endif  // GEOSIR_NET_CHAOS_PROXY_H_
