#include "workload/image_composer.h"

#include <algorithm>
#include <cmath>

#include "geom/diameter.h"
#include "workload/noise.h"

namespace geosir::workload {

namespace {

using geom::Point;
using geom::Polyline;

/// Returns `shape` scaled/rotated/translated so its bounding box fits
/// inside the square cell [cx, cx+cell] x [cy, cy+cell] with a margin.
Polyline PlaceInCell(const Polyline& shape, double cx, double cy, double cell,
                     util::Rng* rng) {
  const geom::BoundingBox box = shape.Bounds();
  const double extent = std::max(box.Width(), box.Height());
  const double scale = 0.7 * cell / std::max(extent, 1e-9);
  const geom::AffineTransform t =
      geom::AffineTransform::Translation(
          {cx + cell * 0.5, cy + cell * 0.5}) *
      geom::AffineTransform::Rotation(rng->Uniform(0, 2 * M_PI)) *
      geom::AffineTransform::Scaling(scale) *
      geom::AffineTransform::Translation(-box.Center());
  return shape.Transformed(t);
}

/// Scales `shape` about its bounding-box center and translates it to
/// `center`, producing a copy with bounding-box extent `target_extent`.
Polyline PlaceAt(const Polyline& shape, Point center, double target_extent,
                 util::Rng* rng) {
  const geom::BoundingBox box = shape.Bounds();
  const double extent = std::max(box.Width(), box.Height());
  const geom::AffineTransform t =
      geom::AffineTransform::Translation(center) *
      geom::AffineTransform::Rotation(rng->Uniform(0, 2 * M_PI)) *
      geom::AffineTransform::Scaling(target_extent / std::max(extent, 1e-9)) *
      geom::AffineTransform::Translation(-box.Center());
  return shape.Transformed(t);
}

}  // namespace

ComposedImage ComposeImage(const std::vector<Polyline>& prototypes,
                           double instance_noise, util::Rng* rng,
                           const ComposeOptions& options) {
  ComposedImage image;
  if (prototypes.empty()) return image;

  // Draw the shape count around the mean, clamped.
  int count = static_cast<int>(std::lround(
      options.shapes_per_image_mean + rng->Gaussian(1.2)));
  count = std::clamp(count, options.min_shapes, options.max_shapes);

  // Grid of cells large enough for `count` disjoint placements.
  const int grid = static_cast<int>(std::ceil(std::sqrt(count)));
  const double cell = options.canvas / grid;
  std::vector<int> cells(grid * grid);
  for (int i = 0; i < grid * grid; ++i) cells[i] = i;
  rng->Shuffle(&cells);

  for (int i = 0; i < count; ++i) {
    const int proto_idx = static_cast<int>(
        rng->UniformInt(0, static_cast<int64_t>(prototypes.size()) - 1));
    Polyline instance = instance_noise > 0.0
                            ? JitterVertices(prototypes[proto_idx],
                                             instance_noise, rng)
                            : prototypes[proto_idx];

    const bool can_relate = !image.shapes.empty();
    const double roll = rng->Uniform(0, 1);
    if (can_relate && roll < options.contain_probability) {
      // Nest inside the previous shape: place at its centroid with a
      // fraction of its extent.
      const Polyline& host = image.shapes.back();
      const geom::BoundingBox hb = host.Bounds();
      const double extent = 0.35 * std::min(hb.Width(), hb.Height());
      Polyline placed = PlaceAt(instance, hb.Center(), extent, rng);
      if (query::TestRelation(query::Relation::kContain, host, placed)) {
        image.planted.push_back(PlantedRelation{
            image.shapes.size() - 1, image.shapes.size(),
            query::Relation::kContain});
        image.prototype.push_back(proto_idx);
        image.shapes.push_back(std::move(placed));
        continue;
      }
      // Placement failed (concave host); fall through to a fresh cell.
    } else if (can_relate && roll < options.contain_probability +
                                        options.overlap_probability) {
      // Overlap the previous shape: place at a point on its boundary.
      const Polyline& host = image.shapes.back();
      const geom::BoundingBox hb = host.Bounds();
      const double extent = 0.8 * std::max(hb.Width(), hb.Height());
      const Point anchor =
          host.AtArcLength(rng->Uniform(0, host.Perimeter()));
      Polyline placed = PlaceAt(instance, anchor, extent, rng);
      if (query::TestRelation(query::Relation::kOverlap, host, placed)) {
        image.planted.push_back(PlantedRelation{
            image.shapes.size() - 1, image.shapes.size(),
            query::Relation::kOverlap});
        image.prototype.push_back(proto_idx);
        image.shapes.push_back(std::move(placed));
        continue;
      }
    }
    // Disjoint placement in a fresh cell.
    const int cell_idx = cells[i % cells.size()];
    const double cx = (cell_idx % grid) * cell;
    const double cy = (cell_idx / grid) * cell;
    image.prototype.push_back(proto_idx);
    image.shapes.push_back(PlaceInCell(instance, cx, cy, cell, rng));
  }
  return image;
}

}  // namespace geosir::workload
