#ifndef GEOSIR_WORKLOAD_POLYGON_GEN_H_
#define GEOSIR_WORKLOAD_POLYGON_GEN_H_

#include "geom/polyline.h"
#include "util/rng.h"

namespace geosir::workload {

/// Parameters of the synthetic shape generator. Defaults match the
/// paper's test base (~20 vertices per shape on average).
struct PolygonGenOptions {
  int min_vertices = 12;
  int max_vertices = 28;
  double min_radius = 0.6;
  double max_radius = 1.4;
  /// Angular jitter of the vertex directions, as a fraction of the
  /// regular spacing (0 = regular polygon).
  double irregularity = 0.5;
  /// Radial jitter of the vertex distances, as a fraction of the radius.
  double spikiness = 0.35;
};

/// A random star-shaped polygon around the origin: vertex directions are
/// jittered but kept sorted, so the polygon never self-intersects.
geom::Polyline RandomStarPolygon(util::Rng* rng,
                                 const PolygonGenOptions& options = {});

/// A random convex polygon: the convex hull of random points on a disk,
/// regenerated until it has at least `min_vertices` corners.
geom::Polyline RandomConvexPolygon(util::Rng* rng, int min_vertices,
                                   double radius);

/// A random open polyline (a "boundary fragment"): a jittered arc of a
/// star polygon. Never self-intersects.
geom::Polyline RandomOpenPolyline(util::Rng* rng,
                                  const PolygonGenOptions& options = {});

}  // namespace geosir::workload

#endif  // GEOSIR_WORKLOAD_POLYGON_GEN_H_
