#ifndef GEOSIR_WORKLOAD_IMAGE_COMPOSER_H_
#define GEOSIR_WORKLOAD_IMAGE_COMPOSER_H_

#include <vector>

#include "geom/polyline.h"
#include "query/topology.h"
#include "util/rng.h"

namespace geosir::workload {

struct ComposeOptions {
  /// Mean shapes per image (the paper's base averages 5.5).
  double shapes_per_image_mean = 5.5;
  int min_shapes = 2;
  int max_shapes = 9;
  /// Probability that a placed shape is nested inside the previous one
  /// (produces a contain relation).
  double contain_probability = 0.2;
  /// Probability that a placed shape overlaps the previous one.
  double overlap_probability = 0.2;
  /// Side length of the image canvas.
  double canvas = 100.0;
};

/// Ground truth of one planted relation.
struct PlantedRelation {
  size_t a = 0;  // Index into ComposedImage::shapes.
  size_t b = 0;
  query::Relation relation = query::Relation::kDisjoint;
};

/// A synthetic image: instantiated prototype shapes placed on a canvas
/// with known pairwise relations.
struct ComposedImage {
  std::vector<geom::Polyline> shapes;
  std::vector<int> prototype;  // Prototype index per shape.
  std::vector<PlantedRelation> planted;
};

/// Places noisy instances of random prototypes on the canvas. Shapes are
/// put in separate cells (disjoint) except for the planted contain /
/// overlap pairs.
ComposedImage ComposeImage(const std::vector<geom::Polyline>& prototypes,
                           double instance_noise, util::Rng* rng,
                           const ComposeOptions& options = {});

}  // namespace geosir::workload

#endif  // GEOSIR_WORKLOAD_IMAGE_COMPOSER_H_
