#ifndef GEOSIR_WORKLOAD_NOISE_H_
#define GEOSIR_WORKLOAD_NOISE_H_

#include "geom/polyline.h"
#include "util/rng.h"

namespace geosir::workload {

/// Gaussian vertex jitter with sigma = `sigma_rel` * diameter. Retries a
/// few times if the result self-intersects; returns the input when no
/// simple jittered copy is found.
geom::Polyline JitterVertices(const geom::Polyline& shape, double sigma_rel,
                              util::Rng* rng);

/// Resamples the boundary at `target_vertices` uniform arc-length
/// positions — same geometry described with a different number of points
/// (the paper's "independent of the number of vertices" claim).
geom::Polyline ResampleBoundary(const geom::Polyline& shape,
                                int target_vertices);

/// Figure 2-style local distortion: splits a random edge and pushes the
/// midpoint outward/inward by `depth_rel` * diameter. All other vertices
/// stay exact, so every pair of original edges survives except one.
geom::Polyline LocalDent(const geom::Polyline& shape, double depth_rel,
                         util::Rng* rng);

}  // namespace geosir::workload

#endif  // GEOSIR_WORKLOAD_NOISE_H_
