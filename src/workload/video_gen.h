#ifndef GEOSIR_WORKLOAD_VIDEO_GEN_H_
#define GEOSIR_WORKLOAD_VIDEO_GEN_H_

#include <vector>

#include "geom/polyline.h"
#include "util/rng.h"

namespace geosir::workload {

/// Synthetic video workload for the video-retrieval extension: each
/// video shows a few prototype objects moving smoothly (drifting,
/// rotating, slowly re-scaling) with per-frame extraction jitter.
struct VideoSpec {
  size_t num_videos = 10;
  size_t frames_per_video = 12;
  size_t objects_per_video = 2;
  /// Per-frame vertex jitter relative to the shape diameter (models
  /// frame-by-frame boundary extraction noise).
  double frame_noise = 0.006;
  /// Per-frame rotation step bounds (radians).
  double max_spin = 0.15;
  /// Per-frame relative scale drift bounds.
  double max_zoom = 0.03;
};

struct GeneratedVideo {
  /// frames[f] = boundaries visible in frame f.
  std::vector<std::vector<geom::Polyline>> frames;
  /// prototype[o] = prototype index of object o (objects keep their slot
  /// order inside every frame).
  std::vector<int> prototypes;
};

/// Generates `spec.num_videos` videos over the given prototypes.
std::vector<GeneratedVideo> GenerateVideos(
    const std::vector<geom::Polyline>& prototypes, const VideoSpec& spec,
    util::Rng* rng);

}  // namespace geosir::workload

#endif  // GEOSIR_WORKLOAD_VIDEO_GEN_H_
