#include "workload/query_set.h"

#include "workload/noise.h"

namespace geosir::workload {

util::Result<GeneratedBase> GenerateImageBase(const ImageBaseSpec& spec) {
  util::Rng rng(spec.seed);
  GeneratedBase out;
  out.images = std::make_unique<query::ImageBase>(spec.base_options);

  out.prototypes.reserve(spec.num_prototypes);
  for (size_t i = 0; i < spec.num_prototypes; ++i) {
    out.prototypes.push_back(RandomStarPolygon(&rng, spec.polygon));
  }

  for (size_t i = 0; i < spec.num_images; ++i) {
    const ComposedImage composed =
        ComposeImage(out.prototypes, spec.instance_noise, &rng, spec.compose);
    size_t skipped = 0;
    GEOSIR_ASSIGN_OR_RETURN(
        core::ImageId id,
        out.images->AddImage(composed.shapes, "", &skipped));
    // Record prototypes for the shapes that were accepted. AddImage skips
    // invalid boundaries, so re-derive the accepted count.
    const query::ImageEntry& entry = out.images->image(id);
    size_t accepted_idx = 0;
    for (size_t s = 0; s < composed.shapes.size() &&
                       accepted_idx < entry.shapes.size();
         ++s) {
      // AddImage preserves order of accepted shapes; a skipped shape
      // simply doesn't advance the entry cursor. We re-validate to know
      // which were accepted.
      if (composed.shapes[s].Validate().ok() &&
          core::NormalizeShape(
              core::Shape{0, 0, composed.shapes[s], ""},
              spec.base_options.normalize)
              .ok()) {
        out.prototype_of_shape.push_back(composed.prototype[s]);
        ++accepted_idx;
      }
    }
  }
  GEOSIR_RETURN_IF_ERROR(out.images->Finalize());
  if (out.prototype_of_shape.size() !=
      out.images->shape_base().NumShapes()) {
    return util::Status::Internal(
        "prototype bookkeeping diverged from accepted shapes");
  }
  return out;
}

std::vector<QueryCase> MakeQuerySet(const std::vector<geom::Polyline>&
                                        prototypes,
                                    size_t count, double noise,
                                    util::Rng* rng) {
  std::vector<QueryCase> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int proto = static_cast<int>(
        rng->UniformInt(0, static_cast<int64_t>(prototypes.size()) - 1));
    QueryCase qc;
    qc.prototype = proto;
    qc.query = noise > 0.0 ? JitterVertices(prototypes[proto], noise, rng)
                           : prototypes[proto];
    out.push_back(std::move(qc));
  }
  return out;
}

}  // namespace geosir::workload
