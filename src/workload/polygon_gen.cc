#include "workload/polygon_gen.h"

#include <algorithm>
#include <cmath>

#include "geom/convex_hull.h"

namespace geosir::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;

std::vector<double> JitteredAngles(util::Rng* rng, int n,
                                   double irregularity) {
  const double spacing = kTwoPi / n;
  std::vector<double> angles(n);
  for (int i = 0; i < n; ++i) {
    angles[i] = i * spacing +
                rng->Uniform(-irregularity, irregularity) * spacing * 0.5;
  }
  std::sort(angles.begin(), angles.end());
  return angles;
}

}  // namespace

geom::Polyline RandomStarPolygon(util::Rng* rng,
                                 const PolygonGenOptions& options) {
  const int n = static_cast<int>(
      rng->UniformInt(options.min_vertices, options.max_vertices));
  const double base_radius =
      rng->Uniform(options.min_radius, options.max_radius);
  const std::vector<double> angles =
      JitteredAngles(rng, n, options.irregularity);
  std::vector<geom::Point> v;
  v.reserve(n);
  for (double a : angles) {
    const double r =
        base_radius *
        (1.0 + rng->Uniform(-options.spikiness, options.spikiness));
    v.push_back({r * std::cos(a), r * std::sin(a)});
  }
  return geom::Polyline::Closed(std::move(v));
}

geom::Polyline RandomConvexPolygon(util::Rng* rng, int min_vertices,
                                   double radius) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<geom::Point> pts;
    const int samples = std::max(3 * min_vertices, 12);
    for (int i = 0; i < samples; ++i) {
      const double a = rng->Uniform(0, kTwoPi);
      const double r = radius * std::sqrt(rng->Uniform(0, 1));
      pts.push_back({r * std::cos(a), r * std::sin(a)});
    }
    std::vector<geom::Point> hull = geom::ConvexHull(std::move(pts));
    if (static_cast<int>(hull.size()) >= min_vertices) {
      return geom::Polyline::Closed(std::move(hull));
    }
  }
  // Fallback: a regular polygon.
  std::vector<geom::Point> v;
  for (int i = 0; i < min_vertices; ++i) {
    const double a = kTwoPi * i / min_vertices;
    v.push_back({radius * std::cos(a), radius * std::sin(a)});
  }
  return geom::Polyline::Closed(std::move(v));
}

geom::Polyline RandomOpenPolyline(util::Rng* rng,
                                  const PolygonGenOptions& options) {
  const geom::Polyline star = RandomStarPolygon(rng, options);
  // Take a contiguous arc covering 40-70% of the vertices.
  const size_t n = star.size();
  const size_t len = std::max<size_t>(
      3, static_cast<size_t>(n * rng->Uniform(0.4, 0.7)));
  const size_t start = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  std::vector<geom::Point> v;
  v.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    v.push_back(star.vertex((start + i) % n));
  }
  return geom::Polyline::Open(std::move(v));
}

}  // namespace geosir::workload
