#ifndef GEOSIR_WORKLOAD_QUERY_SET_H_
#define GEOSIR_WORKLOAD_QUERY_SET_H_

#include <memory>
#include <vector>

#include "query/image_base.h"
#include "util/rng.h"
#include "workload/image_composer.h"
#include "workload/polygon_gen.h"

namespace geosir::workload {

/// Specification of a synthetic image base (the stand-in for the paper's
/// 10,000-image collection).
struct ImageBaseSpec {
  size_t num_images = 200;
  size_t num_prototypes = 40;
  /// Vertex jitter of each instance relative to the prototype diameter.
  double instance_noise = 0.01;
  PolygonGenOptions polygon;
  ComposeOptions compose;
  core::ShapeBaseOptions base_options;
  uint64_t seed = 1;
};

/// A generated image base plus its ground truth.
struct GeneratedBase {
  std::unique_ptr<query::ImageBase> images;
  std::vector<geom::Polyline> prototypes;
  /// Prototype index of every database shape (by ShapeId).
  std::vector<int> prototype_of_shape;
};

/// Builds and finalizes a synthetic image base.
util::Result<GeneratedBase> GenerateImageBase(const ImageBaseSpec& spec);

/// A query workload: noisy copies of random prototypes (the paper's "15
/// representative similarity queries").
struct QueryCase {
  geom::Polyline query;
  int prototype = 0;  // Ground-truth prototype.
};

std::vector<QueryCase> MakeQuerySet(const std::vector<geom::Polyline>&
                                        prototypes,
                                    size_t count, double noise,
                                    util::Rng* rng);

}  // namespace geosir::workload

#endif  // GEOSIR_WORKLOAD_QUERY_SET_H_
