#include "workload/noise.h"

#include <algorithm>
#include <cmath>

#include "geom/diameter.h"

namespace geosir::workload {

namespace {

double DiameterOf(const geom::Polyline& shape) {
  return geom::Diameter(shape.vertices()).distance;
}

}  // namespace

geom::Polyline JitterVertices(const geom::Polyline& shape, double sigma_rel,
                              util::Rng* rng) {
  const double sigma = sigma_rel * DiameterOf(shape);
  for (int attempt = 0; attempt < 8; ++attempt) {
    geom::Polyline jittered = shape;
    for (geom::Point& p : jittered.mutable_vertices()) {
      p += geom::Point{rng->Gaussian(sigma), rng->Gaussian(sigma)};
    }
    if (!jittered.SelfIntersects()) return jittered;
  }
  return shape;
}

geom::Polyline ResampleBoundary(const geom::Polyline& shape,
                                int target_vertices) {
  const double perimeter = shape.Perimeter();
  if (perimeter <= 0.0 || target_vertices < 3) return shape;
  std::vector<geom::Point> v;
  v.reserve(target_vertices);
  // Open polylines must keep their endpoints; closed ones wrap.
  if (shape.closed()) {
    for (int i = 0; i < target_vertices; ++i) {
      v.push_back(shape.AtArcLength(perimeter * i / target_vertices));
    }
  } else {
    for (int i = 0; i < target_vertices; ++i) {
      v.push_back(
          shape.AtArcLength(perimeter * i / (target_vertices - 1)));
    }
  }
  geom::Polyline out(std::move(v), shape.closed());
  return out.SelfIntersects() ? shape : out;
}

geom::Polyline LocalDent(const geom::Polyline& shape, double depth_rel,
                         util::Rng* rng) {
  const size_t num_edges = shape.NumEdges();
  if (num_edges == 0) return shape;
  const double depth = depth_rel * DiameterOf(shape);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const size_t edge = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(num_edges) - 1));
    const geom::Segment e = shape.Edge(edge);
    const geom::Point normal = e.Direction().Perp().Normalized();
    const double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
    const geom::Point dent = e.Midpoint() + normal * (sign * depth);

    std::vector<geom::Point> v;
    v.reserve(shape.size() + 1);
    for (size_t i = 0; i < shape.size(); ++i) {
      v.push_back(shape.vertex(i));
      if (i == edge) v.push_back(dent);
    }
    geom::Polyline out(std::move(v), shape.closed());
    if (!out.SelfIntersects()) return out;
  }
  return shape;
}

}  // namespace geosir::workload
