#include "workload/video_gen.h"

#include <cmath>

#include "geom/transform.h"
#include "workload/noise.h"

namespace geosir::workload {

std::vector<GeneratedVideo> GenerateVideos(
    const std::vector<geom::Polyline>& prototypes, const VideoSpec& spec,
    util::Rng* rng) {
  std::vector<GeneratedVideo> videos;
  videos.reserve(spec.num_videos);
  for (size_t v = 0; v < spec.num_videos; ++v) {
    GeneratedVideo video;
    struct ObjectState {
      int prototype;
      geom::Point position;
      geom::Point velocity;
      double angle;
      double spin;
      double scale;
      double zoom;
    };
    std::vector<ObjectState> objects;
    for (size_t o = 0; o < spec.objects_per_video; ++o) {
      ObjectState state;
      state.prototype = static_cast<int>(
          rng->UniformInt(0, static_cast<int64_t>(prototypes.size()) - 1));
      state.position = {rng->Uniform(-10, 10), rng->Uniform(-10, 10)};
      state.velocity = {rng->Uniform(-0.5, 0.5), rng->Uniform(-0.5, 0.5)};
      state.angle = rng->Uniform(0, 2 * M_PI);
      state.spin = rng->Uniform(-spec.max_spin, spec.max_spin);
      state.scale = rng->Uniform(2.0, 6.0);
      state.zoom = 1.0 + rng->Uniform(-spec.max_zoom, spec.max_zoom);
      video.prototypes.push_back(state.prototype);
      objects.push_back(state);
    }
    for (size_t f = 0; f < spec.frames_per_video; ++f) {
      std::vector<geom::Polyline> frame;
      for (ObjectState& state : objects) {
        const geom::AffineTransform pose =
            geom::AffineTransform::Translation(state.position) *
            geom::AffineTransform::Rotation(state.angle) *
            geom::AffineTransform::Scaling(state.scale);
        geom::Polyline instance =
            prototypes[state.prototype].Transformed(pose);
        if (spec.frame_noise > 0.0) {
          instance = JitterVertices(instance, spec.frame_noise, rng);
        }
        frame.push_back(std::move(instance));
        // Smooth motion update.
        state.position += state.velocity;
        state.angle += state.spin;
        state.scale *= state.zoom;
      }
      video.frames.push_back(std::move(frame));
    }
    videos.push_back(std::move(video));
  }
  return videos;
}

}  // namespace geosir::workload
