#ifndef GEOSIR_REPLICATION_LOG_TRANSPORT_H_
#define GEOSIR_REPLICATION_LOG_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/appendable_file.h"
#include "storage/wal.h"
#include "util/status.h"

namespace geosir::replication {

/// One shipped batch of consecutive WAL records, starting at the LSN the
/// follower asked for (or later, if duplicates were filtered upstream).
struct LogBatch {
  std::vector<storage::WalRecord> records;
  /// The primary's next_lsn at fetch time. Piggybacked so the follower
  /// can compute its lag (primary_next_lsn - applied cursor) without a
  /// second round trip per fetch.
  uint64_t primary_next_lsn = 0;
  /// The primary's epoch (term) at fetch time. A follower that sees this
  /// exceed the epoch of its own mirrored stream runs the divergence
  /// protocol (GetEpochInfo + possible truncation) before applying
  /// anything from the batch.
  uint64_t primary_epoch = 0;
};

/// The primary's term coordinates, for divergence detection on rejoin:
/// records with lsn < epoch_start_lsn are history shared with earlier
/// terms; anything a replica holds at or past it under an older epoch was
/// never replicated and must be truncated, not replayed.
struct EpochInfo {
  uint64_t epoch = 0;
  uint64_t epoch_start_lsn = 0;
  uint64_t next_lsn = 0;
};

/// Checkpoint + WAL-head bundle for full follower resynchronization,
/// used when the follower's cursor points below the primary's retained
/// log (the records were compacted away by a rotation).
struct SnapshotPackage {
  uint64_t generation = 0;
  /// ckpt-<generation>.gsir bytes, verbatim.
  std::vector<uint8_t> checkpoint;
  /// The framed kCompactCommit head of wal-<generation>.log, verbatim.
  /// The follower CRC-validates and decodes it before trusting anything:
  /// the head binds the checkpoint to its id map and carries the LSN the
  /// stream resumes at.
  std::vector<uint8_t> head_frame;
  uint64_t primary_next_lsn = 0;
};

/// Pull-based shipping channel from a primary's WAL to ONE follower.
///
/// Error contract:
///   kUnavailable  transient — retry (injected faults, rotation races).
///   kNotFound     the requested LSN has been rotated out of the
///                 primary's retained log; the follower must
///                 FetchSnapshot and resync.
///   kFailedPrecondition  the source is FENCED: its epoch is older than
///                 one the follower has already accepted (min_epoch).
///                 A zombie primary answers this way; never apply, never
///                 resync from it — re-point at the real primary.
///   kCorruption   the stream itself is damaged; retrying will not help.
///
/// Instances are not thread-safe: each follower owns its transport (the
/// cursor cache inside PrimaryLogSource is per-consumer state).
class LogTransport {
 public:
  virtual ~LogTransport() = default;

  /// Up to `max_records` consecutive records with lsn >= from_lsn
  /// (0 = unlimited). An OK result with an empty `records` means the
  /// follower is caught up (or the committed bound has not reached
  /// from_lsn yet) — poll again later. When from_lsn predates the
  /// retained log (the primary rotated past it), the batch starts at the
  /// new generation's kCompactCommit head instead: a converged follower
  /// rotates in-stream off it, a lagging one fails the commit's
  /// convergence check and resyncs from a snapshot. `min_epoch` is the
  /// follower's fence: a source whose epoch is older answers
  /// kFailedPrecondition instead of records (zombie-primary rejection).
  virtual util::Result<LogBatch> Fetch(uint64_t from_lsn, size_t max_records,
                                       uint64_t min_epoch = 0) = 0;

  /// The primary's current checkpoint generation, for full resync.
  virtual util::Result<SnapshotPackage> FetchSnapshot() = 0;

  /// The primary's current next_lsn (lag probes outside a fetch).
  virtual util::Result<uint64_t> PrimaryNextLsn() = 0;

  /// The primary's term coordinates (epoch, where it began, tail). The
  /// follower calls this when a fetched epoch is newer than its own
  /// stream's to decide between truncating a divergent suffix and a
  /// plain catch-up.
  virtual util::Result<EpochInfo> GetEpochInfo() = 0;

  /// Human-readable transport identity for obs ("in-process",
  /// "socket://10.0.0.1:7421", ...): a flapping follower's metrics name
  /// which channel is flapping without a log dive.
  virtual std::string Describe() const { return "in-process"; }
};

/// In-process transport reading the primary's generation files directly,
/// bounded by the journal's published tail state (WalJournal::tail_state)
/// so fetching is safe while the primary keeps appending and rotating.
/// The stand-in for a network log-shipping channel: everything above it
/// (follower, router, chaos harness) treats it as remote.
class PrimaryLogSource : public LogTransport {
 public:
  /// `journal` must outlive this transport; `env`/`dir` locate the
  /// primary's generation files.
  PrimaryLogSource(storage::Env* env, std::string dir,
                   const storage::WalJournal* journal);

  util::Result<LogBatch> Fetch(uint64_t from_lsn, size_t max_records,
                               uint64_t min_epoch = 0) override;
  util::Result<SnapshotPackage> FetchSnapshot() override;
  util::Result<uint64_t> PrimaryNextLsn() override;
  util::Result<EpochInfo> GetEpochInfo() override;

 private:
  storage::Env* env_;
  std::string dir_;
  const storage::WalJournal* journal_;
  /// Resume state so steady-state tailing does not re-decode the WAL from
  /// byte zero on every fetch.
  storage::WalTailCursor cursor_;
};

}  // namespace geosir::replication

#endif  // GEOSIR_REPLICATION_LOG_TRANSPORT_H_
