#include "replication/follower.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include "obs/metrics.h"
#include "storage/base_io.h"

namespace geosir::replication {

using storage::WalRecord;
using storage::WalRecordType;

/// Per-replica metric series (replica="<index>" label). Cached like
/// WalMetrics: the registry owns the instruments, this table owns the
/// grouping, both live for the process.
struct Follower::Metrics {
  obs::Counter* applied_records;
  obs::Counter* apply_batches;
  obs::Counter* duplicates_skipped;
  obs::Counter* gap_batches;
  obs::Counter* reconnects;
  obs::Counter* resyncs;
  obs::Counter* rotations;
  obs::Counter* local_reopens;
  obs::Counter* queries;
  obs::Counter* fence_rejections;
  obs::Counter* truncated_records;
  obs::Counter* divergence_repairs;
  obs::Counter* promotions;
  obs::Gauge* lag;
  obs::Gauge* applied_lsn;
  obs::Gauge* epoch;
  obs::Gauge* last_fetch_error;
  obs::Histogram* apply_latency;

  static const Metrics* For(uint32_t replica) {
    static std::mutex mutex;
    static std::map<uint32_t, const Metrics*>* table =
        new std::map<uint32_t, const Metrics*>();
    std::lock_guard<std::mutex> lock(mutex);
    auto it = table->find(replica);
    if (it != table->end()) return it->second;
    obs::MetricRegistry& r = obs::MetricRegistry::Default();
    const std::string labels = "replica=\"" + std::to_string(replica) + "\"";
    auto* m = new Metrics();
    m->applied_records = r.GetCounter(
        "geosir_replication_applied_records_total",
        "WAL records applied by a replication follower", labels);
    m->apply_batches =
        r.GetCounter("geosir_replication_apply_batches_total",
                     "Fetch batches that applied at least one record",
                     labels);
    m->duplicates_skipped = r.GetCounter(
        "geosir_replication_duplicate_records_total",
        "Redelivered records skipped by idempotent replay", labels);
    m->gap_batches = r.GetCounter(
        "geosir_replication_gap_batches_total",
        "Batches rejected because a record arrived out of order", labels);
    m->reconnects = r.GetCounter(
        "geosir_replication_reconnects_total",
        "Successful fetches after at least one transport failure", labels);
    m->resyncs = r.GetCounter(
        "geosir_replication_resyncs_total",
        "Full snapshot resyncs (cursor fell behind the retained log)",
        labels);
    m->rotations = r.GetCounter(
        "geosir_replication_rotations_total",
        "Primary checkpoint rotations followed by this replica", labels);
    m->local_reopens = r.GetCounter(
        "geosir_replication_local_reopens_total",
        "Recoveries of the follower's own mirror after a local fault",
        labels);
    m->queries =
        r.GetCounter("geosir_replication_queries_total",
                     "Queries served by this replica's MatchBatch", labels);
    m->fence_rejections = r.GetCounter(
        "geosir_replication_fence_rejections_total",
        "Fetches rejected because the source's term is fenced off", labels);
    m->truncated_records = r.GetCounter(
        "geosir_replication_truncated_records_total",
        "Divergent-suffix records truncated from the mirror on rejoin",
        labels);
    m->divergence_repairs = r.GetCounter(
        "geosir_replication_divergence_repairs_total",
        "Rejoin repairs of an unreplicated divergent suffix", labels);
    m->promotions = r.GetCounter(
        "geosir_replication_promotions_total",
        "Promotions of this replica to primary", labels);
    m->lag = r.GetGauge("geosir_replication_lag_records",
                        "Records behind the last observed primary tail",
                        labels);
    m->applied_lsn =
        r.GetGauge("geosir_replication_applied_lsn",
                   "Exclusive LSN bound of the replica's serving state",
                   labels);
    m->epoch = r.GetGauge(
        "geosir_replication_epoch",
        "Primary term of the replica's current generation head", labels);
    m->last_fetch_error = r.GetGauge(
        "geosir_replication_last_fetch_error_code",
        "StatusCode of the most recent failed transport fetch (0 = none)",
        labels);
    m->apply_latency = r.GetHistogram(
        "geosir_replication_apply_seconds",
        "Wall-clock latency of one fetch-and-apply batch",
        obs::LatencyBucketsSeconds(), labels);
    (*table)[replica] = m;
    return m;
  }
};

Follower::Follower(FollowerOptions options, LogTransport* transport)
    : options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : storage::Env::Posix()),
      transport_(transport),
      admission_(options_.admission),
      metrics_(Metrics::For(options_.replica_index)) {}

util::Result<std::unique_ptr<Follower>> Follower::Open(
    FollowerOptions options, LogTransport* transport) {
  std::unique_ptr<Follower> follower(
      new Follower(std::move(options), transport));
  GEOSIR_RETURN_IF_ERROR(follower->RecoverLocal());
  // Info-style series: the value is always 1, the identity lives in the
  // labels — which channel ("in-process", "socket://host:port", ...)
  // this replica ships over.
  obs::MetricRegistry::Default()
      .GetGauge("geosir_replication_transport_info",
                "Transport identity of a replica (value is always 1)",
                "replica=\"" +
                    std::to_string(follower->options_.replica_index) +
                    "\",transport=\"" + transport->Describe() + "\"")
      ->Set(1);
  return follower;
}

void Follower::RecordFetchError(const util::Status& status) {
  fetch_errors_.fetch_add(1, std::memory_order_relaxed);
  last_fetch_error_code_.store(static_cast<int>(status.code()),
                               std::memory_order_relaxed);
  metrics_->last_fetch_error->Set(static_cast<int64_t>(status.code()));
  // Lazy per-(replica, code) series; the registry dedups by label set, so
  // this is a mutex-guarded lookup only on the (cold) error path.
  obs::MetricRegistry::Default()
      .GetCounter("geosir_replication_fetch_errors_total",
                  "Transport fetches that failed after retries, by code",
                  "replica=\"" + std::to_string(options_.replica_index) +
                      "\",code=\"" + util::StatusCodeName(status.code()) +
                      "\"")
      ->Inc();
}

util::Status Follower::RecoverLocal() {
  GEOSIR_RETURN_IF_ERROR(env_->CreateDir(options_.dir));
  GEOSIR_ASSIGN_OR_RETURN(storage::WalDirListing listing,
                          storage::ListWalDir(env_, options_.dir));
  std::sort(listing.wal_generations.rbegin(), listing.wal_generations.rend());
  for (uint64_t generation : listing.wal_generations) {
    auto bytes = env_->ReadFileBytes(storage::WalPath(options_.dir, generation));
    if (!bytes.ok()) continue;
    storage::WalReadReport read_report;
    std::vector<WalRecord> records =
        storage::ReadWalRecords(*bytes, &read_report);
    if (records.empty() ||
        records.front().type != WalRecordType::kCompactCommit) {
      continue;  // Torn head: the mirror died mid-install. Skip.
    }
    auto commit = storage::DecodeCommit(records.front().payload);
    if (!commit.ok() || commit->generation != generation ||
        commit->next_id > options_.max_recovered_ids) {
      continue;
    }
    auto ckpt_bytes =
        env_->ReadFileBytes(storage::CheckpointPath(options_.dir, generation));
    if (!ckpt_bytes.ok()) continue;
    auto checkpoint =
        storage::LoadShapeBaseFromBytes(*ckpt_bytes, options_.base.base);
    if (!checkpoint.ok()) continue;
    auto fresh = std::make_unique<core::DynamicShapeBase>(options_.base);
    if (!fresh
             ->RestoreCheckpoint(std::move(*checkpoint), commit->live_ids,
                                 commit->next_id)
             .ok()) {
      continue;
    }
    // Replay the tail; a record that fails to apply ends the trusted
    // prefix exactly like a corrupt frame would.
    size_t keep = records.size();
    for (size_t i = 1; i < records.size(); ++i) {
      const WalRecord& record = records[i];
      util::Status applied;
      switch (record.type) {
        case WalRecordType::kInsert: {
          auto payload = storage::DecodeInsert(record.payload);
          applied = payload.ok()
                        ? fresh->ReplayInsert(
                              payload->id,
                              geom::Polyline(std::move(payload->vertices),
                                             payload->closed),
                              payload->image, std::move(payload->label))
                        : payload.status();
          break;
        }
        case WalRecordType::kRemove: {
          auto id = storage::DecodeRemove(record.payload);
          applied = id.ok() ? fresh->ReplayRemove(*id) : id.status();
          break;
        }
        case WalRecordType::kCompactBegin:
          break;  // Advisory marker.
        case WalRecordType::kCompactCommit:
          applied = util::Status::Corruption("compact-commit mid-log");
          break;
      }
      if (!applied.ok()) {
        keep = i;
        break;
      }
    }
    const bool dirty = read_report.truncated_bytes > 0 ||
                       read_report.salvaged || keep < records.size();
    records.resize(keep);
    if (dirty) {
      // Unlike the primary (which rotates to a fresh generation and in
      // doing so consumes an LSN of its own), the follower mirrors the
      // PRIMARY's LSN sequence and must never invent records. Truncate
      // the mirror to its valid prefix instead — atomically, so a crash
      // mid-truncation leaves either the old or the repaired file, and
      // an append never lands after discarded garbage.
      std::vector<uint8_t> prefix;
      for (const WalRecord& record : records) {
        storage::AppendWalFrame(&prefix, record.lsn, record.type,
                                record.payload);
      }
      GEOSIR_RETURN_IF_ERROR(env_->WriteFileAtomic(
          storage::WalPath(options_.dir, generation), prefix));
    }
    GEOSIR_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::AppendableFile> file,
        env_->NewAppendableFile(storage::WalPath(options_.dir, generation),
                                /*truncate=*/false));
    const uint64_t next_lsn = records.back().lsn + 1;
    // synced_upto=0 forces a real barrier: nothing says the bytes a clean
    // process exit left behind were ever fsynced.
    auto wal = std::make_unique<storage::WriteAheadLog>(
        std::move(file), options_.wal, next_lsn, /*synced_upto=*/0);
    GEOSIR_RETURN_IF_ERROR(wal->Sync());
    {
      std::unique_lock<std::shared_mutex> lock(state_mutex_);
      base_ = std::move(fresh);
      wal_ = std::move(wal);
      have_generation_ = true;
      generation_ = generation;
      cursor_ = next_lsn;
      local_epoch_ = commit->epoch;
      local_epoch_start_lsn_ = commit->epoch_start_lsn;
      head_lsn_ = records.front().lsn;
      applied_lsn_.store(next_lsn, std::memory_order_release);
      durable_lsn_.store(wal_->synced_upto(), std::memory_order_release);
    }
    RaiseFence(commit->epoch);
    metrics_->applied_lsn->Set(static_cast<int64_t>(next_lsn));
    metrics_->epoch->Set(static_cast<int64_t>(commit->epoch));
    CleanupOtherGenerations(generation, /*have_keep=*/true);
    return util::Status::OK();
  }
  // Nothing recoverable: start empty and let the stream (or a snapshot)
  // bootstrap us. The follower's directory holds no authoritative data —
  // the primary does — so wiping leftovers is always safe here.
  CleanupOtherGenerations(0, /*have_keep=*/false);
  {
    std::unique_lock<std::shared_mutex> lock(state_mutex_);
    base_ = std::make_unique<core::DynamicShapeBase>(options_.base);
    wal_.reset();
    have_generation_ = false;
    generation_ = 0;
    cursor_ = 0;
    local_epoch_ = 0;
    local_epoch_start_lsn_ = 0;
    head_lsn_ = 0;
    applied_lsn_.store(0, std::memory_order_release);
    durable_lsn_.store(0, std::memory_order_release);
  }
  metrics_->applied_lsn->Set(0);
  return util::Status::OK();
}

void Follower::CleanupOtherGenerations(uint64_t keep, bool have_keep) {
  auto listing = storage::ListWalDir(env_, options_.dir);
  if (!listing.ok()) return;
  for (uint64_t generation : listing->wal_generations) {
    if (have_keep && generation == keep) continue;
    (void)env_->RemoveFile(storage::WalPath(options_.dir, generation));
  }
  for (uint64_t generation : listing->ckpt_generations) {
    if (have_keep && generation == keep) continue;
    (void)env_->RemoveFile(storage::CheckpointPath(options_.dir, generation));
  }
  for (const std::string& name : listing->tmp_names) {
    (void)env_->RemoveFile(options_.dir + "/" + name);
  }
}

util::Status Follower::ReopenLocal() {
  local_reopens_.fetch_add(1, std::memory_order_relaxed);
  metrics_->local_reopens->Inc();
  return RecoverLocal();
}

util::Status Follower::Bootstrap() {
  int attempts = 0;
  auto snapshot = util::RetryWithBackoff(
      options_.reconnect, [&] { return transport_->FetchSnapshot(); },
      &attempts);
  if (!snapshot.ok()) {
    RecordFetchError(snapshot.status());
    if (snapshot.status().code() == util::StatusCode::kUnavailable) {
      connected_.store(false, std::memory_order_relaxed);
    }
    return snapshot.status();
  }
  if (!connected_.exchange(true, std::memory_order_relaxed)) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    metrics_->reconnects->Inc();
  }
  GEOSIR_RETURN_IF_ERROR(InstallSnapshot(*snapshot));
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  metrics_->resyncs->Inc();
  return util::Status::OK();
}

util::Status Follower::InstallSnapshot(const SnapshotPackage& package) {
  // Validate the whole package before touching any local state: the
  // primary is a remote peer, so its head frame gets the same scrutiny a
  // local recovery would apply to a file on disk.
  storage::WalReadReport report;
  const std::vector<WalRecord> head =
      storage::ReadWalRecords(package.head_frame, &report);
  if (head.size() != 1 || report.truncated_bytes != 0 || report.salvaged ||
      head.front().type != WalRecordType::kCompactCommit) {
    return util::Status::Corruption("snapshot head frame is not a valid "
                                    "compact-commit record");
  }
  GEOSIR_ASSIGN_OR_RETURN(const storage::WalCommitPayload commit,
                          storage::DecodeCommit(head.front().payload));
  if (commit.generation != package.generation) {
    return util::Status::Corruption(
        "snapshot head generation does not match the package");
  }
  if (commit.epoch < fence_epoch_.load(std::memory_order_acquire)) {
    // A resync is a full trust transfer, so it gets the same zombie
    // fencing a fetch does: never install state from a deposed term.
    fence_rejections_.fetch_add(1, std::memory_order_relaxed);
    metrics_->fence_rejections->Inc();
    return util::Status::FailedPrecondition(
        "snapshot carries fenced epoch " + std::to_string(commit.epoch) +
        " (this replica is fenced to >= " +
        std::to_string(fence_epoch_.load(std::memory_order_acquire)) + ")");
  }
  if (commit.next_id > options_.max_recovered_ids) {
    return util::Status::Corruption(
        "snapshot head next_id " + std::to_string(commit.next_id) +
        " exceeds max_recovered_ids " +
        std::to_string(options_.max_recovered_ids));
  }
  GEOSIR_ASSIGN_OR_RETURN(
      std::unique_ptr<core::ShapeBase> checkpoint,
      storage::LoadShapeBaseFromBytes(package.checkpoint, options_.base.base));
  auto fresh = std::make_unique<core::DynamicShapeBase>(options_.base);
  GEOSIR_RETURN_IF_ERROR(fresh->RestoreCheckpoint(
      std::move(checkpoint), commit.live_ids, commit.next_id));

  // Persist the new generation pair durably before serving it, so a
  // follower restart resumes from here instead of re-fetching.
  GEOSIR_RETURN_IF_ERROR(env_->WriteFileAtomic(
      storage::CheckpointPath(options_.dir, package.generation),
      package.checkpoint));
  GEOSIR_RETURN_IF_ERROR(
      env_->WriteFileAtomic(storage::WalPath(options_.dir, package.generation),
                            package.head_frame));
  GEOSIR_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::AppendableFile> file,
      env_->NewAppendableFile(storage::WalPath(options_.dir, package.generation),
                              /*truncate=*/false));
  const uint64_t next_lsn = head.front().lsn + 1;
  // WriteFileAtomic is durable by contract: nothing unsynced exists yet.
  auto wal = std::make_unique<storage::WriteAheadLog>(
      std::move(file), options_.wal, next_lsn, /*synced_upto=*/next_lsn);

  const uint64_t old_generation = generation_;
  const bool had_generation = have_generation_;
  {
    std::unique_lock<std::shared_mutex> lock(state_mutex_);
    base_ = std::move(fresh);
    wal_ = std::move(wal);
    have_generation_ = true;
    generation_ = package.generation;
    cursor_ = next_lsn;
    local_epoch_ = commit.epoch;
    local_epoch_start_lsn_ = commit.epoch_start_lsn;
    head_lsn_ = head.front().lsn;
    applied_lsn_.store(next_lsn, std::memory_order_release);
    durable_lsn_.store(next_lsn, std::memory_order_release);
  }
  RaiseFence(commit.epoch);
  primary_next_lsn_.store(package.primary_next_lsn,
                          std::memory_order_release);
  metrics_->applied_lsn->Set(static_cast<int64_t>(next_lsn));
  metrics_->epoch->Set(static_cast<int64_t>(commit.epoch));
  if (had_generation && old_generation != package.generation) {
    (void)env_->RemoveFile(storage::WalPath(options_.dir, old_generation));
    (void)env_->RemoveFile(
        storage::CheckpointPath(options_.dir, old_generation));
  }
  return util::Status::OK();
}

util::Status Follower::ApplyRecord(const WalRecord& record) {
  if (record.type == WalRecordType::kCompactCommit) return Rotate(record);
  if (wal_ == nullptr) {
    return util::Status::FailedPrecondition(
        "mutation record received before any generation head");
  }
  if (wal_->next_lsn() != record.lsn) {
    return util::Status::FailedPrecondition(
        "local wal mirror out of step with the stream");
  }
  // Mirror first, then apply: a crash between the two replays the record
  // from the mirror on restart (idempotent), while the reverse order
  // could serve state the mirror never saw.
  GEOSIR_RETURN_IF_ERROR(wal_->Append(record.type, record.payload).status());
  switch (record.type) {
    case WalRecordType::kInsert: {
      GEOSIR_ASSIGN_OR_RETURN(storage::WalInsertPayload payload,
                              storage::DecodeInsert(record.payload));
      std::unique_lock<std::shared_mutex> lock(state_mutex_);
      GEOSIR_RETURN_IF_ERROR(base_->ReplayInsert(
          payload.id,
          geom::Polyline(std::move(payload.vertices), payload.closed),
          payload.image, std::move(payload.label)));
      cursor_ = record.lsn + 1;
      applied_lsn_.store(cursor_, std::memory_order_release);
      break;
    }
    case WalRecordType::kRemove: {
      GEOSIR_ASSIGN_OR_RETURN(const uint64_t id,
                              storage::DecodeRemove(record.payload));
      std::unique_lock<std::shared_mutex> lock(state_mutex_);
      GEOSIR_RETURN_IF_ERROR(base_->ReplayRemove(id));
      cursor_ = record.lsn + 1;
      applied_lsn_.store(cursor_, std::memory_order_release);
      break;
    }
    case WalRecordType::kCompactBegin: {
      std::unique_lock<std::shared_mutex> lock(state_mutex_);
      cursor_ = record.lsn + 1;
      applied_lsn_.store(cursor_, std::memory_order_release);
      break;
    }
    case WalRecordType::kCompactCommit:
      break;  // Handled above.
  }
  durable_lsn_.store(wal_->synced_upto(), std::memory_order_release);
  return util::Status::OK();
}

util::Status Follower::Rotate(const WalRecord& record) {
  GEOSIR_ASSIGN_OR_RETURN(const storage::WalCommitPayload commit,
                          storage::DecodeCommit(record.payload));
  if (commit.next_id > options_.max_recovered_ids) {
    return util::Status::Corruption(
        "rotation commit next_id exceeds max_recovered_ids");
  }
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  // The commit describes the primary's state after every record below
  // this one; having applied exactly those, we must agree bit for bit —
  // anything else is divergence and the caller heals by resync.
  if (base_->NextId() != commit.next_id ||
      base_->LiveIds() != commit.live_ids) {
    // Either genuine lag (the commit leapt the cursor across records this
    // replica never saw) or divergence; both heal the same way, by
    // snapshot resync. Any state-changing record the replica missed
    // necessarily moves next_id or the live set, so passing this check
    // proves the skipped LSNs (if any) were advisory markers.
    return util::Status::FailedPrecondition(
        "replica state does not match rotation commit; snapshot resync "
        "required");
  }
  // Build this follower's own checkpoint of the converged state. The
  // WAL carries original (un-normalized) boundaries, so the serialized
  // result matches what the primary checkpointed.
  core::ShapeBase snapshot(options_.base.base);
  for (uint64_t id : commit.live_ids) {
    GEOSIR_RETURN_IF_ERROR(
        snapshot.AddShape(base_->boundary(id), base_->image(id),
                          base_->label(id))
            .status());
  }
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> checkpoint,
                          storage::SerializeShapeBase(snapshot));
  GEOSIR_RETURN_IF_ERROR(env_->WriteFileAtomic(
      storage::CheckpointPath(options_.dir, commit.generation), checkpoint));
  GEOSIR_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::AppendableFile> file,
      env_->NewAppendableFile(storage::WalPath(options_.dir, commit.generation),
                              /*truncate=*/true));
  auto wal = std::make_unique<storage::WriteAheadLog>(
      std::move(file), options_.wal, record.lsn, /*synced_upto=*/record.lsn);
  GEOSIR_RETURN_IF_ERROR(
      wal->Append(WalRecordType::kCompactCommit, record.payload).status());
  GEOSIR_RETURN_IF_ERROR(wal->Sync());

  const uint64_t old_generation = generation_;
  const bool had_generation = have_generation_;
  wal_ = std::move(wal);
  have_generation_ = true;
  generation_ = commit.generation;
  cursor_ = record.lsn + 1;
  local_epoch_ = commit.epoch;
  local_epoch_start_lsn_ = commit.epoch_start_lsn;
  head_lsn_ = record.lsn;
  applied_lsn_.store(cursor_, std::memory_order_release);
  durable_lsn_.store(wal_->synced_upto(), std::memory_order_release);
  // Merge the delta into the main base so replica query latency tracks
  // the primary's (which compacted at this exact point in the stream).
  // The follower's base has no journal attached, so this is pure
  // in-memory restructuring — no LSNs are consumed.
  GEOSIR_RETURN_IF_ERROR(base_->Compact());
  lock.unlock();

  if (had_generation && old_generation != commit.generation) {
    (void)env_->RemoveFile(storage::WalPath(options_.dir, old_generation));
    (void)env_->RemoveFile(
        storage::CheckpointPath(options_.dir, old_generation));
  }
  RaiseFence(commit.epoch);
  rotations_.fetch_add(1, std::memory_order_relaxed);
  metrics_->rotations->Inc();
  metrics_->epoch->Set(static_cast<int64_t>(commit.epoch));
  return util::Status::OK();
}

void Follower::RaiseFence(uint64_t epoch) {
  uint64_t current = fence_epoch_.load(std::memory_order_relaxed);
  while (epoch > current &&
         !fence_epoch_.compare_exchange_weak(current, epoch,
                                             std::memory_order_acq_rel)) {
  }
}

void Follower::Fence(uint64_t epoch) { RaiseFence(epoch); }

void Follower::SetTransport(LogTransport* transport) {
  transport_ = transport;
  connected_.store(true, std::memory_order_relaxed);
  obs::MetricRegistry::Default()
      .GetGauge("geosir_replication_transport_info",
                "Transport identity of a replica (value is always 1)",
                "replica=\"" + std::to_string(options_.replica_index) +
                    "\",transport=\"" + transport->Describe() + "\"")
      ->Set(1);
}

util::Status Follower::RepairDivergence(const EpochInfo& info) {
  divergence_repairs_.fetch_add(1, std::memory_order_relaxed);
  metrics_->divergence_repairs->Inc();
  if (!have_generation_ || head_lsn_ >= info.epoch_start_lsn) {
    // The generation head itself lies inside the divergent range (this
    // replica rotated after the new term began elsewhere): the file holds
    // no shared prefix to truncate back to, so heal by full resync.
    return Bootstrap();
  }
  // Close the mirror appender first: TruncateTo atomically rewrites the
  // file and requires exclusive ownership of it.
  wal_.reset();
  GEOSIR_ASSIGN_OR_RETURN(
      const size_t dropped,
      storage::WriteAheadLog::TruncateTo(
          env_, storage::WalPath(options_.dir, generation_),
          info.epoch_start_lsn));
  truncated_records_.fetch_add(dropped, std::memory_order_relaxed);
  metrics_->truncated_records->Inc(dropped);
  // Rebuild the serving state from the repaired mirror: the cursor lands
  // exactly on the term boundary and the stream refills from there.
  return RecoverLocal();
}

util::Result<storage::DurableDynamicBase> Follower::Promote() {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  if (promoted_.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition("follower is already promoted");
  }
  if (!have_generation_ || wal_ == nullptr) {
    return util::Status::FailedPrecondition(
        "cannot promote a follower with no local generation");
  }
  const uint64_t new_epoch =
      std::max(local_epoch_, fence_epoch_.load(std::memory_order_acquire)) +
      1;
  // The mirror WAL becomes the new primary's log: the journal takes over
  // the appender at this replica's cursor, so the first LSN the new term
  // writes is exactly the applied floor — the divergence boundary every
  // rejoining replica truncates to.
  auto journal = std::make_unique<storage::WalJournal>(
      env_, options_.dir, options_.wal, generation_, cursor_,
      std::move(wal_), local_epoch_, local_epoch_start_lsn_);
  GEOSIR_RETURN_IF_ERROR(journal->BeginEpoch(new_epoch));
  storage::DurableDynamicBase primary;
  primary.base = std::move(base_);
  primary.journal = std::move(journal);
  primary.base->SetJournal(primary.journal.get());
  // Seal this follower before anything can fail: a node whose promotion
  // dies half-way must read as dead, never as a live replica.
  promoted_.store(true, std::memory_order_release);
  RaiseFence(new_epoch);
  base_ = std::make_unique<core::DynamicShapeBase>(options_.base);
  have_generation_ = false;
  lock.unlock();
  // One compaction rotates to a generation whose durable head stamps the
  // new term; until it lands every mutation is fenced off, so no record
  // is ever written under the bumped epoch into the old generation.
  GEOSIR_RETURN_IF_ERROR(primary.base->Compact());
  metrics_->promotions->Inc();
  metrics_->epoch->Set(static_cast<int64_t>(new_epoch));
  return primary;
}

util::Result<size_t> Follower::Pump() {
  if (promoted_.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition(
        "follower was promoted to primary; it no longer tails a stream");
  }
  int attempts = 0;
  auto fetched = util::RetryWithBackoff(
      options_.reconnect,
      [&] {
        return transport_->Fetch(cursor_, options_.fetch_batch_records,
                                 fence_epoch_.load(std::memory_order_acquire));
      },
      &attempts);
  if (!fetched.ok()) {
    RecordFetchError(fetched.status());
    switch (fetched.status().code()) {
      case util::StatusCode::kNotFound:
        // Behind the retained log (or talking to a rebuilt primary):
        // stream catch-up is impossible, resync from a snapshot.
        GEOSIR_RETURN_IF_ERROR(Bootstrap());
        return size_t{0};
      case util::StatusCode::kOutOfRange: {
        // The cursor is ahead of the source's tail. Before the blunt
        // resync, check for the rejoin-after-failover shape: a NEWER term
        // that began below our cursor means the suffix we hold past that
        // boundary was written by a deposed primary and never replicated —
        // truncate it and resume the stream, keeping the shared history.
        auto info = transport_->GetEpochInfo();
        if (info.ok() && info->epoch > local_epoch_ &&
            cursor_ > info->epoch_start_lsn) {
          RaiseFence(info->epoch);
          GEOSIR_RETURN_IF_ERROR(RepairDivergence(*info));
          return size_t{0};
        }
        GEOSIR_RETURN_IF_ERROR(Bootstrap());
        return size_t{0};
      }
      case util::StatusCode::kFailedPrecondition:
        // The SOURCE is fenced: its term is older than one this replica
        // has already observed — a zombie primary (or a peer this
        // transport must never speak to, e.g. a protocol mismatch).
        // Never apply from it and never resync from it; surface the
        // error so the control plane re-points the transport.
        fence_rejections_.fetch_add(1, std::memory_order_relaxed);
        metrics_->fence_rejections->Inc();
        return fetched.status();
      case util::StatusCode::kUnavailable:
        connected_.store(false, std::memory_order_relaxed);
        return fetched.status();
      default:
        return fetched.status();
    }
  }
  if (!connected_.exchange(true, std::memory_order_relaxed)) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    metrics_->reconnects->Inc();
  }
  const LogBatch& batch = *fetched;
  primary_next_lsn_.store(batch.primary_next_lsn, std::memory_order_release);
  RaiseFence(batch.primary_epoch);
  if (batch.primary_epoch > local_epoch_) {
    // The source serves a newer term than our generation head. If our
    // cursor extends past where that term began, everything above the
    // boundary is a divergent suffix that the new primary has rewritten
    // under its own term — repair BEFORE applying anything, or the
    // streams would silently interleave.
    auto info = transport_->GetEpochInfo();
    if (!info.ok()) {
      RecordFetchError(info.status());
      return info.status();
    }
    if (cursor_ > info->epoch_start_lsn) {
      GEOSIR_RETURN_IF_ERROR(RepairDivergence(*info));
      return size_t{0};
    }
  }
  if (batch.records.empty()) {
    metrics_->lag->Set(static_cast<int64_t>(lag()));
    return size_t{0};
  }
  const auto start = std::chrono::steady_clock::now();
  size_t applied = 0;
  for (const WalRecord& record : batch.records) {
    if (record.lsn < cursor_) {
      // Redelivery (duplicate batch, or a batch overlapping the cursor):
      // replay is idempotent by simply skipping what is already applied.
      duplicates_skipped_.fetch_add(1, std::memory_order_relaxed);
      metrics_->duplicates_skipped->Inc();
      continue;
    }
    if (record.lsn > cursor_ &&
        record.type != WalRecordType::kCompactCommit) {
      // A gap (reordered delivery): never apply out of order; drop the
      // rest of the batch and refetch from the cursor.
      gap_batches_.fetch_add(1, std::memory_order_relaxed);
      metrics_->gap_batches->Inc();
      break;
    }
    // A rotation commit may leap the cursor: the primary deleted the old
    // generation, so the LSNs in between no longer exist as a log. Rotate
    // accepts the leap only when this replica's state already equals the
    // commit's (the skipped records were advisory markers); otherwise the
    // convergence check fails and the error path below resyncs.
    util::Status status = ApplyRecord(record);
    if (!status.ok()) {
      if (status.code() == util::StatusCode::kUnavailable) {
        // A local mirror fault (injected or real): recover from our own
        // files — the cursor regresses to the durable prefix and the
        // stream refills the difference.
        GEOSIR_RETURN_IF_ERROR(ReopenLocal());
        return status;
      }
      // Divergence/corruption: heal by full resync.
      GEOSIR_RETURN_IF_ERROR(Bootstrap());
      return applied;
    }
    ++applied;
  }
  if (applied > 0) {
    applied_records_.fetch_add(applied, std::memory_order_relaxed);
    apply_batches_.fetch_add(1, std::memory_order_relaxed);
    metrics_->applied_records->Inc(applied);
    metrics_->apply_batches->Inc();
    metrics_->apply_latency->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    metrics_->applied_lsn->Set(static_cast<int64_t>(cursor_));
  }
  metrics_->lag->Set(static_cast<int64_t>(lag()));
  return applied;
}

util::Status Follower::CatchUp(util::Deadline deadline) {
  while (true) {
    auto applied = Pump();
    if (applied.ok() && *applied == 0) {
      const uint64_t head = primary_next_lsn_.load(std::memory_order_acquire);
      if (applied_lsn_.load(std::memory_order_acquire) >= head) {
        return util::Status::OK();
      }
    }
    if (deadline.expired()) {
      return util::Status::DeadlineExceeded(
          "follower did not catch up in time");
    }
  }
}

util::Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
Follower::MatchBatch(const std::vector<geom::Polyline>& queries, size_t k,
                     std::vector<core::MatchStats>* stats,
                     util::Deadline deadline) {
  if (promoted_.load(std::memory_order_acquire)) {
    // Sealed: the serving state moved out with Promote(). kUnavailable
    // reads as "shed" to the router, which tries the next replica.
    return util::Status::Unavailable("replica was promoted to primary");
  }
  GEOSIR_ASSIGN_OR_RETURN(query::AdmissionController::Ticket ticket,
                          admission_.Admit(deadline));
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  // Pinned for the whole batch: the apply path advances applied_lsn_
  // only while holding the lock exclusively, so nothing the batch reads
  // can carry an LSN at or above this bound.
  const uint64_t pinned = applied_lsn_.load(std::memory_order_acquire);
  auto results = base_->MatchBatch(queries, k, stats);
  metrics_->queries->Inc(queries.size());
  if (results.ok() && stats != nullptr) {
    const uint64_t head = primary_next_lsn_.load(std::memory_order_acquire);
    const uint64_t lag = head > pinned ? head - pinned : 0;
    for (core::MatchStats& entry : *stats) {
      entry.replicated = true;
      entry.replica = options_.replica_index;
      entry.replica_lsn = pinned;
      entry.replica_lag = lag;
    }
  }
  return results;
}

util::Result<std::vector<std::pair<uint64_t, double>>> Follower::Match(
    const geom::Polyline& query, size_t k, core::MatchStats* stats,
    util::Deadline deadline) {
  std::vector<core::MatchStats> batch_stats;
  GEOSIR_ASSIGN_OR_RETURN(
      auto results,
      MatchBatch({query}, k, stats != nullptr ? &batch_stats : nullptr,
                 deadline));
  if (stats != nullptr && !batch_stats.empty()) *stats = batch_stats.front();
  return std::move(results.front());
}

uint64_t Follower::lag() const {
  const uint64_t head = primary_next_lsn_.load(std::memory_order_acquire);
  const uint64_t applied = applied_lsn_.load(std::memory_order_acquire);
  return head > applied ? head - applied : 0;
}

FollowerStatus Follower::status() const {
  FollowerStatus status;
  status.applied_lsn = applied_lsn_.load(std::memory_order_acquire);
  status.durable_lsn = durable_lsn_.load(std::memory_order_acquire);
  status.primary_next_lsn =
      primary_next_lsn_.load(std::memory_order_acquire);
  status.lag = lag();
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    status.generation = generation_;
    status.local_epoch = local_epoch_;
  }
  status.fence_epoch = fence_epoch_.load(std::memory_order_acquire);
  status.counters.applied_records =
      applied_records_.load(std::memory_order_relaxed);
  status.counters.apply_batches =
      apply_batches_.load(std::memory_order_relaxed);
  status.counters.duplicates_skipped =
      duplicates_skipped_.load(std::memory_order_relaxed);
  status.counters.gap_batches = gap_batches_.load(std::memory_order_relaxed);
  status.counters.reconnects = reconnects_.load(std::memory_order_relaxed);
  status.counters.resyncs = resyncs_.load(std::memory_order_relaxed);
  status.counters.rotations = rotations_.load(std::memory_order_relaxed);
  status.counters.local_reopens =
      local_reopens_.load(std::memory_order_relaxed);
  status.counters.fetch_errors =
      fetch_errors_.load(std::memory_order_relaxed);
  status.counters.fence_rejections =
      fence_rejections_.load(std::memory_order_relaxed);
  status.counters.truncated_records =
      truncated_records_.load(std::memory_order_relaxed);
  status.counters.divergence_repairs =
      divergence_repairs_.load(std::memory_order_relaxed);
  status.last_fetch_error = static_cast<util::StatusCode>(
      last_fetch_error_code_.load(std::memory_order_relaxed));
  return status;
}

uint64_t Follower::NextId() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return base_->NextId();
}

std::vector<uint64_t> Follower::LiveIds() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return base_->LiveIds();
}

bool Follower::IsLive(uint64_t id) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return base_->IsLive(id);
}

geom::Polyline Follower::boundary(uint64_t id) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return base_->boundary(id);
}

std::string Follower::label(uint64_t id) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return base_->label(id);
}

core::ImageId Follower::image(uint64_t id) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return base_->image(id);
}

uint64_t Follower::generation() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return generation_;
}

}  // namespace geosir::replication
