#include "replication/replicated_shape_base.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "obs/metrics.h"

namespace geosir::replication {

/// Router-level series (unlabeled: one router per process is the common
/// case, and per-replica detail already lives on the follower series).
struct ReplicatedShapeBase::RouterMetrics {
  obs::Counter* batches;
  obs::Counter* redirected;
  obs::Counter* stale_served;
  obs::Counter* shed;
  obs::Counter* exhausted;
  obs::Counter* failovers;
  obs::Counter* writes_drained;

  static const RouterMetrics* Get() {
    static const RouterMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new RouterMetrics();
      m->batches = r.GetCounter("geosir_router_batches_total",
                                "Query batches routed to a serving replica");
      m->redirected = r.GetCounter(
          "geosir_router_redirected_total",
          "Batches redirected away from a staleness-bound violator");
      m->stale_served = r.GetCounter(
          "geosir_router_stale_served_total",
          "Batches served by a stale replica because no fresh one could");
      m->shed = r.GetCounter(
          "geosir_router_shed_total",
          "Per-replica admission rejections seen while routing");
      m->exhausted = r.GetCounter(
          "geosir_router_exhausted_total",
          "Batches rejected because every replica shed them");
      m->failovers = r.GetCounter(
          "geosir_router_failovers_total",
          "Completed primary switchovers on this tier");
      m->writes_drained = r.GetCounter(
          "geosir_router_writes_drained_total",
          "Writes rejected during a failover's admission drain");
      return m;
    }();
    return metrics;
  }
};

ReplicatedShapeBase::ReplicatedShapeBase(ReplicatedOptions options,
                                         storage::DurableDynamicBase primary)
    : options_(std::move(options)),
      primary_(std::move(primary)),
      metrics_(RouterMetrics::Get()) {}

util::Result<std::unique_ptr<ReplicatedShapeBase>> ReplicatedShapeBase::Open(
    const std::string& primary_dir, std::vector<ReplicaSpec> replicas,
    ReplicatedOptions options, storage::RecoveryReport* report) {
  storage::DurabilityOptions durability;
  durability.env = options.env;
  durability.wal = options.primary_wal;
  durability.max_recovered_ids = options.max_recovered_ids;
  GEOSIR_ASSIGN_OR_RETURN(
      storage::DurableDynamicBase primary,
      storage::OpenDurableDynamicBase(primary_dir, options.base, durability,
                                      report));
  storage::Env* primary_env =
      options.env != nullptr ? options.env : storage::Env::Posix();
  std::unique_ptr<ReplicatedShapeBase> replicated(
      new ReplicatedShapeBase(std::move(options), std::move(primary)));
  replicated->primary_env_ = primary_env;
  replicated->primary_dir_ = primary_dir;
  for (size_t i = 0; i < replicas.size(); ++i) {
    ReplicaSpec& spec = replicas[i];
    std::unique_ptr<LogTransport> transport = std::move(spec.transport);
    if (transport == nullptr) {
      transport = std::make_unique<PrimaryLogSource>(
          primary_env, primary_dir, replicated->primary_.journal.get());
    }
    FollowerOptions follower_options;
    follower_options.env = spec.env != nullptr ? spec.env : primary_env;
    follower_options.dir = spec.dir;
    follower_options.base = replicated->options_.base;
    follower_options.wal = replicated->options_.follower_wal;
    follower_options.max_recovered_ids = replicated->options_.max_recovered_ids;
    follower_options.admission = replicated->options_.admission;
    follower_options.reconnect = replicated->options_.reconnect;
    follower_options.fetch_batch_records =
        replicated->options_.fetch_batch_records;
    follower_options.replica_index = static_cast<uint32_t>(i);
    GEOSIR_ASSIGN_OR_RETURN(
        std::unique_ptr<Follower> follower,
        Follower::Open(std::move(follower_options), transport.get()));
    replicated->transports_.push_back(std::move(transport));
    replicated->followers_.push_back(std::move(follower));
  }
  if (replicated->options_.start_replication &&
      !replicated->followers_.empty()) {
    replicated->Start();
  }
  return replicated;
}

ReplicatedShapeBase::~ReplicatedShapeBase() { Stop(); }

namespace {

/// The retriable answer every write gets while a switchover is re-seating
/// the primary: the drain window is bounded, so callers just retry.
util::Status FailoverDrain() {
  return util::Status::Unavailable("primary failover in progress; retry");
}

}  // namespace

util::Result<uint64_t> ReplicatedShapeBase::Insert(geom::Polyline boundary,
                                                   core::ImageId image,
                                                   std::string label) {
  if (failover_in_progress_.load(std::memory_order_acquire)) {
    metrics_->writes_drained->Inc();
    return FailoverDrain();
  }
  std::lock_guard<std::mutex> lock(primary_mutex_);
  return primary_.base->Insert(std::move(boundary), image, std::move(label));
}

util::Status ReplicatedShapeBase::Remove(uint64_t id) {
  if (failover_in_progress_.load(std::memory_order_acquire)) {
    metrics_->writes_drained->Inc();
    return FailoverDrain();
  }
  std::lock_guard<std::mutex> lock(primary_mutex_);
  return primary_.base->Remove(id);
}

util::Status ReplicatedShapeBase::Compact() {
  if (failover_in_progress_.load(std::memory_order_acquire)) {
    metrics_->writes_drained->Inc();
    return FailoverDrain();
  }
  std::lock_guard<std::mutex> lock(primary_mutex_);
  return primary_.base->Compact();
}

util::Status ReplicatedShapeBase::SyncPrimary() {
  if (failover_in_progress_.load(std::memory_order_acquire)) {
    return FailoverDrain();
  }
  std::lock_guard<std::mutex> lock(primary_mutex_);
  return primary_.journal->Sync();
}

storage::WalTailState ReplicatedShapeBase::PrimaryTail() const {
  std::lock_guard<std::mutex> lock(primary_mutex_);
  return primary_.journal->tail_state();
}

util::Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
ReplicatedShapeBase::MatchBatch(const std::vector<geom::Polyline>& queries,
                                size_t k,
                                std::vector<core::MatchStats>* stats,
                                util::Deadline deadline) {
  return RouteBatch(queries, k, stats, deadline);
}

util::Result<std::vector<std::pair<uint64_t, double>>>
ReplicatedShapeBase::Match(const geom::Polyline& query, size_t k,
                           core::MatchStats* stats, util::Deadline deadline) {
  std::vector<core::MatchStats> batch_stats;
  GEOSIR_ASSIGN_OR_RETURN(
      auto results,
      RouteBatch({query}, k, stats != nullptr ? &batch_stats : nullptr,
                 deadline));
  if (stats != nullptr && !batch_stats.empty()) *stats = batch_stats.front();
  return std::move(results.front());
}

util::Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
ReplicatedShapeBase::RouteBatch(const std::vector<geom::Polyline>& queries,
                                size_t k,
                                std::vector<core::MatchStats>* stats,
                                util::Deadline deadline) {
  metrics_->batches->Inc();
  // Shared hold for the whole routed batch: AddFollower grows the
  // follower set under the exclusive side, so the walk below never races
  // a push_back (promotion seals slots in place and never erases them).
  std::shared_lock<std::shared_mutex> topology(topology_mutex_);
  if (followers_.empty()) {
    // No serving tier: the primary answers directly, serialized with
    // writes (reads see lsn == tail, so staleness is trivially 0).
    std::lock_guard<std::mutex> lock(primary_mutex_);
    const uint64_t pinned = primary_.journal->tail_state().next_lsn;
    auto results = primary_.base->MatchBatch(queries, k, stats);
    if (results.ok() && stats != nullptr) {
      for (core::MatchStats& entry : *stats) {
        entry.replicated = false;
        entry.replica_lsn = pinned;
        entry.replica_lag = 0;
      }
    }
    return results;
  }
  // Freshness is judged against the LIVE primary tail, not the follower's
  // possibly stale observation of it — a disconnected follower otherwise
  // reports itself perfectly caught up.
  const uint64_t tail = PrimaryTail().next_lsn;
  const size_t n = followers_.size();
  const size_t start =
      static_cast<size_t>(round_robin_.fetch_add(1, std::memory_order_relaxed)) %
      n;
  auto lag_of = [&](size_t i) {
    const uint64_t applied = followers_[i]->applied_lsn();
    return tail > applied ? tail - applied : 0;
  };
  auto try_serve =
      [&](size_t i) -> util::Result<
                        std::vector<std::vector<std::pair<uint64_t, double>>>> {
    auto results = followers_[i]->MatchBatch(queries, k, stats, deadline);
    if (results.ok() && stats != nullptr) {
      // The follower stamps lag from the head it last OBSERVED, which is
      // exactly what goes stale when it stalls. The router sees the live
      // tail, so raise the stamp to whichever bound is tighter.
      for (core::MatchStats& entry : *stats) {
        const uint64_t router_lag =
            tail > entry.replica_lsn ? tail - entry.replica_lsn : 0;
        if (router_lag > entry.replica_lag) entry.replica_lag = router_lag;
      }
    }
    return results;
  };

  if (options_.stale_policy == StaleRoutePolicy::kServeStale) {
    for (size_t step = 0; step < n; ++step) {
      const size_t i = (start + step) % n;
      auto results = try_serve(i);
      if (results.ok()) return results;
      if (results.status().code() != util::StatusCode::kUnavailable) {
        return results;
      }
      metrics_->shed->Inc();
    }
    metrics_->exhausted->Inc();
    return util::Status::Unavailable("all replicas shed the batch");
  }

  // kRedirectStale, pass 1: fresh replicas in round-robin order.
  bool redirected = false;
  for (size_t step = 0; step < n; ++step) {
    const size_t i = (start + step) % n;
    if (lag_of(i) > options_.max_staleness_records) {
      redirected = true;
      continue;
    }
    auto results = try_serve(i);
    if (results.ok()) {
      if (redirected) metrics_->redirected->Inc();
      return results;
    }
    if (results.status().code() != util::StatusCode::kUnavailable) {
      return results;
    }
    metrics_->shed->Inc();
  }
  // Pass 2: every fresh replica shed (or none is fresh). Degrade to the
  // least stale replica that will admit us rather than failing the
  // query — the staleness is visible to the caller via MatchStats.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return lag_of(a) < lag_of(b); });
  for (size_t i : order) {
    if (lag_of(i) <= options_.max_staleness_records) continue;  // Tried above.
    auto results = try_serve(i);
    if (results.ok()) {
      metrics_->stale_served->Inc();
      return results;
    }
    if (results.status().code() != util::StatusCode::kUnavailable) {
      return results;
    }
    metrics_->shed->Inc();
  }
  metrics_->exhausted->Inc();
  return util::Status::Unavailable("all replicas shed the batch");
}

void ReplicatedShapeBase::Start() {
  StartPumps();
  StartMonitor();
}

void ReplicatedShapeBase::Stop() {
  // Monitor first: it may be mid-failover, in which case it resumes the
  // pump threads before returning — stopping pumps first would leak them.
  StopMonitor();
  StopPumps();
}

void ReplicatedShapeBase::StartPumps() {
  if (running_.exchange(true)) return;
  std::shared_lock<std::shared_mutex> topology(topology_mutex_);
  pump_threads_.reserve(followers_.size());
  for (size_t i = 0; i < followers_.size(); ++i) {
    pump_threads_.emplace_back([this, i] { FollowerLoop(i); });
  }
}

void ReplicatedShapeBase::StopPumps() {
  if (!running_.exchange(false)) return;
  for (std::thread& thread : pump_threads_) {
    if (thread.joinable()) thread.join();
  }
  pump_threads_.clear();
}

void ReplicatedShapeBase::StartMonitor() {
  if (options_.failover_failures_to_trip <= 0) return;
  if (monitor_running_.exchange(true)) return;
  monitor_thread_ = std::thread([this] { MonitorLoop(); });
}

void ReplicatedShapeBase::StopMonitor() {
  if (!monitor_running_.exchange(false)) return;
  if (monitor_thread_.joinable()) monitor_thread_.join();
}

void ReplicatedShapeBase::MonitorLoop() {
  int consecutive = 0;
  while (monitor_running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.failover_probe_interval_ms));
    if (!monitor_running_.load(std::memory_order_relaxed)) break;
    util::Status health;
    if (options_.health_probe) {
      health = options_.health_probe();
    } else if (failover_in_progress_.load(std::memory_order_acquire)) {
      continue;  // A switchover is already under way.
    } else {
      // Default probe: a durability barrier exercises the whole primary
      // write path (append fd, sync, sticky WAL status).
      std::lock_guard<std::mutex> lock(primary_mutex_);
      health = primary_.journal->Sync();
    }
    if (health.ok()) {
      consecutive = 0;
      continue;
    }
    if (++consecutive < options_.failover_failures_to_trip) continue;
    consecutive = 0;
    // Trip: the freshest surviving follower takes over. Losing the race
    // with a manual PromoteFollower is fine — the next probe round sees
    // the new primary.
    size_t best = 0;
    bool found = false;
    {
      std::shared_lock<std::shared_mutex> topology(topology_mutex_);
      uint64_t best_lsn = 0;
      for (size_t j = 0; j < followers_.size(); ++j) {
        if (followers_[j]->promoted()) continue;
        const uint64_t applied = followers_[j]->applied_lsn();
        if (!found || applied > best_lsn) {
          best = j;
          best_lsn = applied;
          found = true;
        }
      }
    }
    if (!found) continue;
    (void)PromoteFollower(best);
  }
}

void ReplicatedShapeBase::FollowerLoop(size_t i) {
  Follower& follower = *followers_[i];
  while (running_.load(std::memory_order_relaxed)) {
    if (follower.promoted()) return;  // Sealed: nothing left to pump.
    auto applied = follower.Pump();
    // Errors here are transient by construction (the retry loop already
    // absorbed reconnectable ones); back off and try again. Progress
    // means more may be pending — pump immediately.
    if (applied.ok() && *applied > 0) continue;
    if (options_.idle_backoff_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.idle_backoff_us));
    }
  }
}

util::Status ReplicatedShapeBase::PromoteFollower(size_t i) {
  std::lock_guard<std::mutex> failover_lock(failover_mutex_);
  if (i >= followers_.size()) {
    return util::Status::InvalidArgument("no replica at index " +
                                         std::to_string(i));
  }
  Follower& target = *followers_[i];
  if (target.promoted()) {
    return util::Status::FailedPrecondition("replica " + std::to_string(i) +
                                            " is already promoted");
  }
  // Phase 1: drain. New writes answer kUnavailable from here until the
  // new primary is seated; pump threads are paused so every follower is
  // quiescent for the transport swap.
  failover_in_progress_.store(true, std::memory_order_release);
  const bool was_running = running_.load(std::memory_order_relaxed);
  StopPumps();
  auto reopen = [&](util::Status status) {
    failover_in_progress_.store(false, std::memory_order_release);
    if (was_running) StartPumps();
    return status;
  };
  // Phase 2: last durability barrier on the old primary (best effort —
  // a dead primary is exactly why we may be here), then give the target
  // a bounded window to drink the remaining acked suffix.
  {
    std::lock_guard<std::mutex> lock(primary_mutex_);
    (void)primary_.journal->Sync();
  }
  const util::Deadline catchup =
      util::Deadline::AfterMillis(options_.promote_catchup_ms);
  while (!catchup.expired()) {
    if (target.applied_lsn() >= PrimaryTail().next_lsn) break;
    auto applied = target.Pump();
    if (!applied.ok()) break;  // Unreachable primary: promote what we have.
  }
  // Phase 3: promotion — the target seals itself and hands back its state
  // as a durable primary under a freshly bumped term.
  auto promoted = target.Promote();
  if (!promoted.ok()) return reopen(promoted.status());
  const uint64_t new_epoch = promoted->journal->tail_state().epoch;
  // Phase 4: seat the new primary. The old journal dies with the swap;
  // the sealed slot's transport still points at it but is never used
  // again (Pump refuses before touching the transport).
  {
    std::lock_guard<std::mutex> lock(primary_mutex_);
    primary_ = std::move(*promoted);
    primary_env_ = target.env();
    primary_dir_ = target.dir();
  }
  // Phase 5: re-point every survivor at the new primary and fence it to
  // the new term, so a zombie of the old primary can never feed it again.
  for (size_t j = 0; j < followers_.size(); ++j) {
    if (j == i || followers_[j]->promoted()) continue;
    auto transport = std::make_unique<PrimaryLogSource>(
        primary_env_, primary_dir_, primary_.journal.get());
    followers_[j]->Fence(new_epoch);
    followers_[j]->SetTransport(transport.get());
    transports_[j] = std::move(transport);
  }
  failovers_.fetch_add(1, std::memory_order_relaxed);
  metrics_->failovers->Inc();
  // Phase 6: reopen writes, resume pumping.
  return reopen(util::Status::OK());
}

util::Status ReplicatedShapeBase::AddFollower(ReplicaSpec spec) {
  std::lock_guard<std::mutex> failover_lock(failover_mutex_);
  const bool was_running = running_.load(std::memory_order_relaxed);
  StopPumps();
  std::unique_ptr<LogTransport> transport = std::move(spec.transport);
  if (transport == nullptr) {
    transport = std::make_unique<PrimaryLogSource>(primary_env_, primary_dir_,
                                                   primary_.journal.get());
  }
  FollowerOptions follower_options;
  follower_options.env = spec.env != nullptr ? spec.env : primary_env_;
  follower_options.dir = spec.dir;
  follower_options.base = options_.base;
  follower_options.wal = options_.follower_wal;
  follower_options.max_recovered_ids = options_.max_recovered_ids;
  follower_options.admission = options_.admission;
  follower_options.reconnect = options_.reconnect;
  follower_options.fetch_batch_records = options_.fetch_batch_records;
  follower_options.replica_index = static_cast<uint32_t>(followers_.size());
  auto follower = Follower::Open(std::move(follower_options), transport.get());
  if (!follower.ok()) {
    if (was_running) StartPumps();
    return follower.status();
  }
  // Fence before the first pump: a joiner must never trust a zombie of a
  // term older than the tier it is joining, and the fence is what routes
  // its divergent local suffix (if any) into repair instead of replay.
  (*follower)->Fence(PrimaryTail().epoch);
  {
    std::unique_lock<std::shared_mutex> topology(topology_mutex_);
    transports_.push_back(std::move(transport));
    followers_.push_back(std::move(*follower));
  }
  if (was_running) StartPumps();
  return util::Status::OK();
}

uint64_t ReplicatedShapeBase::primary_epoch() const {
  return PrimaryTail().epoch;
}

util::Result<size_t> ReplicatedShapeBase::StepFollower(size_t i) {
  return followers_[i]->Pump();
}

util::Status ReplicatedShapeBase::WaitForCatchUp(util::Deadline deadline) {
  while (true) {
    const uint64_t tail = PrimaryTail().next_lsn;
    bool caught_up = true;
    for (auto& follower : followers_) {
      if (follower->promoted()) continue;  // Sealed slots never advance.
      if (follower->applied_lsn() < tail) {
        caught_up = false;
        break;
      }
    }
    if (caught_up) return util::Status::OK();
    if (deadline.expired()) {
      return util::Status::DeadlineExceeded(
          "followers did not catch up in time");
    }
    if (running_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    } else {
      for (auto& follower : followers_) {
        if (follower->promoted()) continue;
        if (follower->applied_lsn() >= tail) continue;
        auto applied = follower->Pump();
        if (!applied.ok() &&
            applied.status().code() != util::StatusCode::kUnavailable) {
          return applied.status();
        }
      }
    }
  }
}

uint64_t ReplicatedShapeBase::primary_next_lsn() const {
  return PrimaryTail().next_lsn;
}

uint64_t ReplicatedShapeBase::primary_generation() const {
  return PrimaryTail().generation;
}

uint64_t ReplicatedShapeBase::PrimaryNextId() const {
  std::lock_guard<std::mutex> lock(primary_mutex_);
  return primary_.base->NextId();
}

std::vector<uint64_t> ReplicatedShapeBase::PrimaryLiveIds() const {
  std::lock_guard<std::mutex> lock(primary_mutex_);
  return primary_.base->LiveIds();
}

}  // namespace geosir::replication
