#ifndef GEOSIR_REPLICATION_WIRE_PROTOCOL_H_
#define GEOSIR_REPLICATION_WIRE_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "net/frame.h"
#include "replication/log_transport.h"
#include "util/status.h"

namespace geosir::replication {

/// Message types carried in the net::Frame type byte. The request/reply
/// pairing is strict (one reply per request, same connection, in order):
/// the transport is a simple pull RPC channel, not a stream multiplexer.
enum class MessageType : uint8_t {
  /// Version handshake, first frame in each direction of a connection.
  kHello = 1,
  kHelloAck = 2,
  kFetch = 3,
  kFetchOk = 4,
  kFetchSnapshot = 5,
  kSnapshotOk = 6,
  kPrimaryNextLsn = 7,
  kNextLsnOk = 8,
  /// Error reply to any request; payload carries a wire StatusCode +
  /// message, decoded back into the util::Status the in-process
  /// transport would have returned.
  kError = 9,
  /// Epoch/term probe: replies with the primary's epoch, the LSN the
  /// epoch began at, and its next_lsn — the coordinates a rejoining
  /// replica needs to locate (and truncate) a divergent suffix.
  kEpochInfo = 10,
  kEpochInfoOk = 11,
};

struct HelloMessage {
  uint8_t protocol_version = net::kProtocolVersion;
};

struct FetchRequest {
  uint64_t from_lsn = 0;
  uint64_t max_records = 0;  // 0 = unlimited.
  /// Fencing bound: the highest epoch the follower has accepted. A
  /// primary whose epoch is older must reply kFailedPrecondition, never
  /// records (zombie rejection).
  uint64_t min_epoch = 0;
};

/// All decoders are total over arbitrary bytes: truncated, oversized or
/// inconsistent payloads return kCorruption (they sit behind a CRC, so
/// damage here means a hostile or buggy peer, not line noise), never
/// crash, and never allocate unboundedly — counts are validated against
/// the bytes actually present before any reserve.

std::vector<uint8_t> EncodeHello(const HelloMessage& hello);
util::Result<HelloMessage> DecodeHello(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodeFetchRequest(const FetchRequest& request);
util::Result<FetchRequest> DecodeFetchRequest(
    const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodeLogBatch(const LogBatch& batch);
util::Result<LogBatch> DecodeLogBatch(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodeSnapshotPackage(const SnapshotPackage& package);
util::Result<SnapshotPackage> DecodeSnapshotPackage(
    const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodeNextLsn(uint64_t next_lsn);
util::Result<uint64_t> DecodeNextLsn(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodeEpochInfo(const EpochInfo& info);
util::Result<EpochInfo> DecodeEpochInfo(const std::vector<uint8_t>& bytes);

/// Status <-> kError payload. The wire code numbering is part of the
/// protocol (stable across releases, independent of the enum's in-memory
/// order); unknown wire codes decode to kInternal so a newer peer's
/// error never turns into a silent success.
std::vector<uint8_t> EncodeError(const util::Status& status);
util::Status DecodeError(const std::vector<uint8_t>& bytes);

uint8_t WireCodeForStatus(util::StatusCode code);
util::StatusCode StatusCodeFromWire(uint8_t wire_code);

}  // namespace geosir::replication

#endif  // GEOSIR_REPLICATION_WIRE_PROTOCOL_H_
