#include "replication/socket_transport.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace geosir::replication {

struct SocketLogTransport::Metrics {
  obs::Counter* connects;
  obs::Counter* reconnects;
  obs::Counter* handshake_failures;
  obs::Counter* frames_in;
  obs::Counter* frames_out;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* timeouts;
  obs::Counter* corrupt_frames;
  obs::Histogram* call_latency;

  static const Metrics* Get() {
    static const Metrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new Metrics();
      m->connects = r.GetCounter("geosir_net_client_connects_total",
                                 "Successful connect+handshake cycles");
      m->reconnects = r.GetCounter(
          "geosir_net_client_reconnects_total",
          "Connects after a previous connection was lost");
      m->handshake_failures =
          r.GetCounter("geosir_net_client_handshake_failures_total",
                       "Connects dropped during the version handshake");
      m->frames_in = r.GetCounter("geosir_net_client_frames_total",
                                  "Wire frames by direction", "dir=\"in\"");
      m->frames_out = r.GetCounter("geosir_net_client_frames_total",
                                   "Wire frames by direction", "dir=\"out\"");
      m->bytes_in = r.GetCounter("geosir_net_client_bytes_total",
                                 "Wire bytes by direction", "dir=\"in\"");
      m->bytes_out = r.GetCounter("geosir_net_client_bytes_total",
                                  "Wire bytes by direction", "dir=\"out\"");
      m->timeouts = r.GetCounter(
          "geosir_net_client_timeouts_total",
          "RPC attempts that hit their deadline mid-I/O");
      m->corrupt_frames = r.GetCounter(
          "geosir_net_client_corrupt_frames_total",
          "Replies dropped for framing/CRC/protocol violations");
      m->call_latency = r.GetHistogram(
          "geosir_net_client_call_seconds",
          "Whole-RPC latency including reconnects and backoff",
          obs::LatencyBucketsSeconds());
      return m;
    }();
    return metrics;
  }
};

SocketLogTransport::SocketLogTransport(SocketTransportOptions options)
    : options_(std::move(options)), metrics_(Metrics::Get()) {}

SocketLogTransport::~SocketLogTransport() { Disconnect(); }

std::string SocketLogTransport::Describe() const {
  return "socket://" + options_.host + ":" + std::to_string(options_.port);
}

void SocketLogTransport::Disconnect() {
  if (!connected_) return;
  socket_.Shutdown();
  socket_ = net::Socket();
  connected_ = false;
}

util::Status SocketLogTransport::EnsureConnected(util::Deadline deadline) {
  if (connected_) return util::Status::OK();
  const bool was_ever_connected = generation_ > 0;
  const util::Deadline connect_deadline = util::Deadline::Earliest(
      deadline, util::Deadline::AfterMillis(options_.connect_timeout_ms));
  GEOSIR_ASSIGN_OR_RETURN(
      socket_,
      net::Socket::Connect(options_.host, options_.port, connect_deadline));
  // Version handshake before the connection carries anything else: an
  // incompatible or confused peer is rejected here, not discovered later
  // as mysterious decode failures.
  size_t wire = 0;
  util::Status sent = net::WriteFrame(
      &socket_, static_cast<uint8_t>(MessageType::kHello),
      EncodeHello(HelloMessage{net::kProtocolVersion}), connect_deadline,
      &wire);
  if (!sent.ok()) {
    metrics_->handshake_failures->Inc();
    socket_ = net::Socket();
    return sent;
  }
  metrics_->frames_out->Inc();
  metrics_->bytes_out->Inc(wire);
  auto ack = net::ReadFrame(&socket_, options_.max_frame_payload,
                            connect_deadline, &wire);
  if (!ack.ok()) {
    metrics_->handshake_failures->Inc();
    socket_ = net::Socket();
    return ack.status();
  }
  metrics_->frames_in->Inc();
  metrics_->bytes_in->Inc(wire);
  if (ack->type == static_cast<uint8_t>(MessageType::kError)) {
    metrics_->handshake_failures->Inc();
    socket_ = net::Socket();
    util::Status rejected = DecodeError(ack->payload);
    // A version-mismatch rejection is terminal for this transport: no
    // amount of reconnecting makes the peers speak the same protocol, so
    // it must NOT enter the kUnavailable retry/backoff loop. Newer
    // servers already say kFailedPrecondition; map an older server's
    // kNotSupported onto the same terminal code.
    if (rejected.code() == util::StatusCode::kNotSupported) {
      rejected = util::Status::FailedPrecondition(rejected.message());
    }
    return rejected;
  }
  if (ack->type != static_cast<uint8_t>(MessageType::kHelloAck)) {
    metrics_->handshake_failures->Inc();
    socket_ = net::Socket();
    return util::Status::Corruption("handshake reply is not a hello-ack");
  }
  connected_ = true;
  ++generation_;
  metrics_->connects->Inc();
  if (was_ever_connected) metrics_->reconnects->Inc();
  return util::Status::OK();
}

util::Result<net::Frame> SocketLogTransport::Exchange(
    MessageType request, const std::vector<uint8_t>& payload,
    util::Deadline deadline) {
  GEOSIR_RETURN_IF_ERROR(EnsureConnected(deadline));
  size_t wire = 0;
  util::Status sent =
      net::WriteFrame(&socket_, static_cast<uint8_t>(request), payload,
                      deadline, &wire);
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  metrics_->frames_out->Inc();
  metrics_->bytes_out->Inc(wire);
  auto reply =
      net::ReadFrame(&socket_, options_.max_frame_payload, deadline, &wire);
  if (!reply.ok()) {
    // Whatever went wrong — timeout, close, torn or corrupt frame — the
    // request/reply pairing on this connection is now ambiguous. Drop it;
    // pulls are idempotent, so the retry path just re-asks.
    Disconnect();
    return reply;
  }
  metrics_->frames_in->Inc();
  metrics_->bytes_in->Inc(wire);
  return reply;
}

util::Result<std::vector<uint8_t>> SocketLogTransport::Call(
    MessageType request, const std::vector<uint8_t>& payload,
    MessageType expected_reply) {
  const auto start = std::chrono::steady_clock::now();
  const util::Deadline deadline =
      util::Deadline::AfterMillis(options_.call_timeout_ms);
  const int max_attempts =
      options_.reconnect.max_attempts < 1 ? 1 : options_.reconnect.max_attempts;
  int64_t prev_backoff_us = 0;
  util::Result<net::Frame> reply =
      util::Status::Internal("rpc never attempted");
  // The reconnect loop lives here instead of RetryWithBackoff because
  // the sleeps must clamp to the CALL deadline: backing off is part of
  // the call's budget, never an extension of it.
  for (int attempt = 1;; ++attempt) {
    reply = Exchange(request, payload, deadline);
    if (reply.ok() ||
        !util::IsRetriable(reply.status().code()) ||
        attempt >= max_attempts || deadline.expired()) {
      break;
    }
    const int64_t backoff_us =
        util::NextBackoffUs(options_.reconnect, attempt, prev_backoff_us);
    const int64_t sleep_us =
        std::min(backoff_us, deadline.remaining_micros());
    if (sleep_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      prev_backoff_us = backoff_us;
    }
  }
  metrics_->call_latency->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (!reply.ok()) {
    if (reply.status().code() == util::StatusCode::kDeadlineExceeded) {
      // Boundary mapping: a timeout is retriable-later, exactly like a
      // severed link (the LogTransport contract has no deadline code).
      metrics_->timeouts->Inc();
      return util::Status::Unavailable("rpc deadline exceeded: " +
                                       reply.status().message());
    }
    if (reply.status().code() == util::StatusCode::kCorruption) {
      metrics_->corrupt_frames->Inc();
    }
    return reply.status();
  }
  if (reply->type == static_cast<uint8_t>(MessageType::kError)) {
    return DecodeError(reply->payload);
  }
  if (reply->type != static_cast<uint8_t>(expected_reply)) {
    metrics_->corrupt_frames->Inc();
    Disconnect();
    return util::Status::Corruption(
        "unexpected reply type " + std::to_string(reply->type));
  }
  return std::move(reply->payload);
}

util::Result<LogBatch> SocketLogTransport::Fetch(uint64_t from_lsn,
                                                 size_t max_records,
                                                 uint64_t min_epoch) {
  FetchRequest request;
  request.from_lsn = from_lsn;
  request.max_records = max_records;
  request.min_epoch = min_epoch;
  GEOSIR_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> reply,
      Call(MessageType::kFetch, EncodeFetchRequest(request),
           MessageType::kFetchOk));
  auto batch = DecodeLogBatch(reply);
  if (!batch.ok()) {
    metrics_->corrupt_frames->Inc();
    Disconnect();
  }
  return batch;
}

util::Result<SnapshotPackage> SocketLogTransport::FetchSnapshot() {
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> reply,
                          Call(MessageType::kFetchSnapshot, {},
                               MessageType::kSnapshotOk));
  auto package = DecodeSnapshotPackage(reply);
  if (!package.ok()) {
    metrics_->corrupt_frames->Inc();
    Disconnect();
  }
  return package;
}

util::Result<uint64_t> SocketLogTransport::PrimaryNextLsn() {
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> reply,
                          Call(MessageType::kPrimaryNextLsn, {},
                               MessageType::kNextLsnOk));
  auto next_lsn = DecodeNextLsn(reply);
  if (!next_lsn.ok()) {
    metrics_->corrupt_frames->Inc();
    Disconnect();
  }
  return next_lsn;
}

util::Result<EpochInfo> SocketLogTransport::GetEpochInfo() {
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> reply,
                          Call(MessageType::kEpochInfo, {},
                               MessageType::kEpochInfoOk));
  auto info = DecodeEpochInfo(reply);
  if (!info.ok()) {
    metrics_->corrupt_frames->Inc();
    Disconnect();
  }
  return info;
}

}  // namespace geosir::replication
