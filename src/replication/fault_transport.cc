#include "replication/fault_transport.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace geosir::replication {

namespace {

/// SplitMix64 finalizer: a well-mixed pure function of the inputs (the
/// same determinism idiom as storage/fault_injection.cc — a plan replays
/// identically regardless of unrelated draws).
uint64_t Mix(uint64_t seed, uint64_t salt, uint64_t x) {
  uint64_t z = seed ^ salt;
  z += 0x9E3779B97F4A7C15ull * (x + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool Draw(uint64_t seed, uint64_t salt, uint64_t x, double rate) {
  return rate > 0.0 && ToUnit(Mix(seed, salt, x)) < rate;
}

constexpr uint64_t kSaltDrop = 0x51;
constexpr uint64_t kSaltDelay = 0x52;
constexpr uint64_t kSaltDuplicate = 0x53;
constexpr uint64_t kSaltReorder = 0x54;
constexpr uint64_t kSaltDisconnect = 0x55;

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<LogTransport> inner, TransportFaultPlan plan,
    storage::CrashClock* clock)
    : inner_(std::move(inner)), plan_(std::move(plan)), clock_(clock) {}

TransportFault FaultInjectingTransport::FaultFor(uint64_t op) const {
  for (const ScheduledTransportFault& fault : plan_.schedule) {
    if (fault.op_index == op) return fault.kind;
  }
  if (Draw(plan_.seed, kSaltDrop, op, plan_.drop_rate)) {
    return TransportFault::kDrop;
  }
  if (Draw(plan_.seed, kSaltDisconnect, op, plan_.disconnect_rate)) {
    return TransportFault::kDisconnect;
  }
  if (Draw(plan_.seed, kSaltDelay, op, plan_.delay_rate)) {
    return TransportFault::kDelay;
  }
  if (Draw(plan_.seed, kSaltDuplicate, op, plan_.duplicate_rate)) {
    return TransportFault::kDuplicate;
  }
  if (Draw(plan_.seed, kSaltReorder, op, plan_.reorder_rate)) {
    return TransportFault::kReorder;
  }
  return TransportFault::kNone;
}

TransportFault FaultInjectingTransport::Admit(bool* failed) {
  const uint64_t op = ops_++;
  *failed = false;
  if (clock_ != nullptr && !clock_->Tick()) {
    // The simulated process died mid-ship: every further operation on
    // this channel fails until the harness builds a new follower.
    *failed = true;
    return TransportFault::kNone;
  }
  if (op < disconnected_until_) {
    *failed = true;
    return TransportFault::kNone;
  }
  const TransportFault fault = FaultFor(op);
  switch (fault) {
    case TransportFault::kDrop:
      ++drops_;
      *failed = true;
      return TransportFault::kNone;
    case TransportFault::kDisconnect:
      ++disconnects_;
      disconnected_until_ = op + std::max<uint64_t>(1, plan_.disconnect_ops);
      *failed = true;
      return TransportFault::kNone;
    case TransportFault::kDelay:
      ++delays_;
      if (plan_.delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_us));
      }
      return TransportFault::kNone;
    default:
      return fault;
  }
}

util::Result<LogBatch> FaultInjectingTransport::Fetch(uint64_t from_lsn,
                                                      size_t max_records,
                                                      uint64_t min_epoch) {
  bool failed = false;
  const TransportFault fault = Admit(&failed);
  if (failed) return util::Status::Unavailable("injected transport fault");
  if (fault == TransportFault::kDuplicate && last_batch_.has_value()) {
    ++duplicates_;
    return *last_batch_;
  }
  GEOSIR_ASSIGN_OR_RETURN(LogBatch batch,
                          inner_->Fetch(from_lsn, max_records, min_epoch));
  if (fault == TransportFault::kReorder && batch.records.size() >= 2) {
    ++reorders_;
    std::swap(batch.records[0], batch.records[1]);
  } else {
    // Only faithful deliveries are worth redelivering: a duplicated
    // reorder would conflate two fault kinds in one op.
    last_batch_ = batch;
  }
  return batch;
}

util::Result<SnapshotPackage> FaultInjectingTransport::FetchSnapshot() {
  bool failed = false;
  (void)Admit(&failed);
  if (failed) return util::Status::Unavailable("injected transport fault");
  return inner_->FetchSnapshot();
}

util::Result<uint64_t> FaultInjectingTransport::PrimaryNextLsn() {
  bool failed = false;
  (void)Admit(&failed);
  if (failed) return util::Status::Unavailable("injected transport fault");
  return inner_->PrimaryNextLsn();
}

util::Result<EpochInfo> FaultInjectingTransport::GetEpochInfo() {
  bool failed = false;
  (void)Admit(&failed);
  if (failed) return util::Status::Unavailable("injected transport fault");
  return inner_->GetEpochInfo();
}

}  // namespace geosir::replication
