#ifndef GEOSIR_REPLICATION_FOLLOWER_H_
#define GEOSIR_REPLICATION_FOLLOWER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/dynamic_shape_base.h"
#include "query/admission.h"
#include "replication/log_transport.h"
#include "storage/wal.h"
#include "util/deadline.h"
#include "util/retry.h"
#include "util/status.h"

namespace geosir::replication {

struct FollowerOptions {
  /// Filesystem for the follower's own durable mirror; nullptr means
  /// Env::Posix(). Chaos tests pass a MemEnv wired to a CrashClock.
  storage::Env* env = nullptr;
  std::string dir;
  core::DynamicShapeBase::Options base;
  storage::WalOptions wal;
  /// Same id-space cap as DurabilityOptions::max_recovered_ids, applied
  /// to every WAL head the follower is asked to trust — the primary is a
  /// remote peer, so its head gets the same validation a local recovery
  /// would apply.
  uint64_t max_recovered_ids = uint64_t{1} << 24;
  query::AdmissionOptions admission;
  /// Reconnect policy for transport fetches (kUnavailable only).
  util::RetryPolicy reconnect{/*max_attempts=*/5, /*base_backoff_us=*/200,
                              /*multiplier=*/2.0};
  /// Records per fetch; bounds memory and the time the apply loop holds
  /// the write lock per pump.
  size_t fetch_batch_records = 256;
  /// Label for this replica's metric series and MatchStats::replica.
  uint32_t replica_index = 0;
};

/// Monotonic per-follower event counters (one snapshot, plain values).
struct FollowerCounters {
  uint64_t applied_records = 0;
  uint64_t apply_batches = 0;
  uint64_t duplicates_skipped = 0;
  uint64_t gap_batches = 0;
  uint64_t reconnects = 0;
  uint64_t resyncs = 0;
  uint64_t rotations = 0;
  uint64_t local_reopens = 0;
  /// Transport fetches that failed after retries (any status code).
  uint64_t fetch_errors = 0;
  /// Fetches rejected with kFailedPrecondition: the source's term is
  /// older than one this replica has observed (a zombie primary).
  uint64_t fence_rejections = 0;
  /// Divergent-suffix records truncated from the local mirror on rejoin.
  uint64_t truncated_records = 0;
  /// Rejoin repairs run (truncation, or resync when the generation head
  /// itself was divergent).
  uint64_t divergence_repairs = 0;
};

struct FollowerStatus {
  /// Exclusive apply cursor: every record with lsn < applied_lsn is in
  /// the serving state.
  uint64_t applied_lsn = 0;
  /// Exclusive local durability bound (what a follower crash keeps).
  uint64_t durable_lsn = 0;
  /// The primary's next_lsn as of the last successful fetch.
  uint64_t primary_next_lsn = 0;
  /// Records behind that observation (primary_next_lsn - applied_lsn).
  uint64_t lag = 0;
  uint64_t generation = 0;
  /// Primary term of the replica's current generation head.
  uint64_t local_epoch = 0;
  /// Highest term ever observed (sent as min_epoch on every fetch).
  uint64_t fence_epoch = 0;
  /// Code of the most recent failed transport fetch (kOk = none yet, or
  /// healthy since): a flapping socket shows up here and in the
  /// geosir_replication_last_fetch_error_code gauge without a log dive.
  util::StatusCode last_fetch_error = util::StatusCode::kOk;
  FollowerCounters counters;
};

/// One read-only replica: replays the primary's WAL stream into its own
/// DynamicShapeBase (mirrored durably into its own generation files, so a
/// restart resumes from local state instead of re-shipping everything)
/// and serves Match/MatchBatch behind an AdmissionController.
///
/// Threading: one pump thread calls Pump()/CatchUp(); any number of
/// query threads call MatchBatch()/Match()/status(). The serving state is
/// swapped or mutated only under the exclusive state lock, queries take
/// it shared — a query admitted at applied LSN L never observes a record
/// with lsn >= L (the snapshot-consistency contract, reported through
/// MatchStats::replica_lsn).
class Follower {
 public:
  /// Recovers local state from options.dir (valid prefix of the mirrored
  /// WAL; a dirty tail is truncated to the last complete trusted frame)
  /// and attaches to `transport`. An empty or unrecoverable directory
  /// starts empty and bootstraps from the stream or a snapshot. The
  /// transport must outlive the follower.
  static util::Result<std::unique_ptr<Follower>> Open(FollowerOptions options,
                                                      LogTransport* transport);

  /// One fetch-and-apply round. Returns the number of records applied
  /// (0 = caught up). kUnavailable after the reconnect retries are
  /// exhausted; a cursor below the primary's retained log triggers a
  /// snapshot resync internally.
  util::Result<size_t> Pump();

  /// Pumps until lag reaches 0 or the deadline expires.
  util::Status CatchUp(util::Deadline deadline);

  /// Failover promotion: seals this follower and turns its local mirror
  /// into a new durable PRIMARY under a fresh term. The returned pair is
  /// exactly what OpenDurableDynamicBase yields — the caller owns it and
  /// serves writes through it. Sequence: the serving state and mirror WAL
  /// are taken over by a new journal, the epoch is bumped to
  /// max(local, fenced) + 1, and one compaction rotates to a generation
  /// whose durable head stamps the new term (epoch_start_lsn = this
  /// replica's applied floor — the divergence boundary every rejoining
  /// replica truncates to). After promotion this follower answers queries
  /// with kUnavailable and Pump() with kFailedPrecondition; on failure it
  /// is equally sealed (a node that cannot write its term head is dead).
  /// Caller must guarantee the pump thread is quiescent.
  util::Result<storage::DurableDynamicBase> Promote();

  /// Raises the fence: this replica will never again fetch from (or
  /// resync off) a source whose term is below `epoch`. Idempotent,
  /// monotonic, thread-safe.
  void Fence(uint64_t epoch);

  /// Re-points the replica at a different primary (after a failover).
  /// Caller must guarantee the pump thread is quiescent; the new
  /// transport must outlive the follower.
  void SetTransport(LogTransport* transport);

  /// Admission-controlled batch match over the replica's current state,
  /// pinned to one applied LSN for the whole batch. Stats entries carry
  /// replicated/replica/replica_lsn/replica_lag.
  util::Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
  MatchBatch(const std::vector<geom::Polyline>& queries, size_t k = 1,
             std::vector<core::MatchStats>* stats = nullptr,
             util::Deadline deadline = {});

  /// Single-query convenience; routed through MatchBatch because the
  /// underlying single-query path shares matcher scratch across calls.
  util::Result<std::vector<std::pair<uint64_t, double>>> Match(
      const geom::Polyline& query, size_t k = 1,
      core::MatchStats* stats = nullptr, util::Deadline deadline = {});

  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  /// Records behind the last observed primary tail (grows stale while
  /// disconnected; the router recomputes against the live tail).
  uint64_t lag() const;
  FollowerStatus status() const;
  uint32_t replica_index() const { return options_.replica_index; }
  query::AdmissionController& admission() { return admission_; }
  uint64_t fence_epoch() const {
    return fence_epoch_.load(std::memory_order_acquire);
  }
  bool promoted() const {
    return promoted_.load(std::memory_order_acquire);
  }
  /// The replica's filesystem and mirror directory (what a promotion
  /// turns into the new primary's env/dir).
  storage::Env* env() const { return env_; }
  const std::string& dir() const { return options_.dir; }

  // Locked read-only state access (test introspection).
  uint64_t NextId() const;
  std::vector<uint64_t> LiveIds() const;
  bool IsLive(uint64_t id) const;
  geom::Polyline boundary(uint64_t id) const;
  std::string label(uint64_t id) const;
  core::ImageId image(uint64_t id) const;
  uint64_t generation() const;

 private:
  struct Metrics;

  Follower(FollowerOptions options, LogTransport* transport);

  /// Rebuilds base_/wal_ from the follower's own generation files; a
  /// dirty WAL tail is durably truncated to its valid prefix (atomic
  /// rewrite) rather than rotated — the follower's LSNs mirror the
  /// primary's, so it must never invent records of its own.
  util::Status RecoverLocal();
  /// Full resync: FetchSnapshot, validate, install, wipe older state.
  util::Status Bootstrap();
  util::Status InstallSnapshot(const SnapshotPackage& package);
  /// Applies one record at the cursor (mirror-append, then replay).
  util::Status ApplyRecord(const storage::WalRecord& record);
  /// Handles a received kCompactCommit: verify convergence, write the
  /// follower's own checkpoint for the new generation, swap WAL files,
  /// merge the delta locally.
  util::Status Rotate(const storage::WalRecord& record);
  /// Drops every generation file except `keep` (plus orphan temps).
  void CleanupOtherGenerations(uint64_t keep, bool have_keep);
  util::Status ReopenLocal();
  /// Books a failed transport fetch: counters, last-error gauge, and the
  /// per-code geosir_replication_fetch_errors_total series.
  void RecordFetchError(const util::Status& status);
  /// Rejoin repair against a primary serving a newer term whose start sits
  /// below this replica's cursor: the suffix [epoch_start_lsn, cursor_)
  /// was written by a deposed primary and never replicated — truncate it
  /// from the mirror (atomic rewrite) and rebuild the serving state, or
  /// fall back to a snapshot resync when the generation head itself lies
  /// inside the divergent range.
  util::Status RepairDivergence(const EpochInfo& info);
  /// Monotonic raise of fence_epoch_.
  void RaiseFence(uint64_t epoch);

  FollowerOptions options_;
  storage::Env* env_;
  LogTransport* transport_;
  query::AdmissionController admission_;
  const Metrics* metrics_;

  /// Guards base_ (and the generation bookkeeping) between the pump
  /// thread (exclusive) and query threads (shared).
  mutable std::shared_mutex state_mutex_;
  std::unique_ptr<core::DynamicShapeBase> base_;
  /// Pump-thread-only: the local WAL mirror of the current generation.
  std::unique_ptr<storage::WriteAheadLog> wal_;
  bool have_generation_ = false;
  uint64_t generation_ = 0;
  /// Pump-thread cursor; == applied_lsn_ except mid-apply.
  uint64_t cursor_ = 0;
  /// Pump-thread epoch view of the current generation head: the term it
  /// was written under, where that term began, and the head's own LSN
  /// (the truncation floor — TruncateTo must never drop the head).
  uint64_t local_epoch_ = 0;
  uint64_t local_epoch_start_lsn_ = 0;
  uint64_t head_lsn_ = 0;

  std::atomic<uint64_t> applied_lsn_{0};
  /// Highest term ever observed (head commits, fetch replies, explicit
  /// Fence calls); sent as min_epoch so zombie primaries reject us.
  std::atomic<uint64_t> fence_epoch_{0};
  std::atomic<bool> promoted_{false};
  std::atomic<uint64_t> durable_lsn_{0};
  std::atomic<uint64_t> primary_next_lsn_{0};
  std::atomic<bool> connected_{true};

  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> apply_batches_{0};
  std::atomic<uint64_t> duplicates_skipped_{0};
  std::atomic<uint64_t> gap_batches_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> rotations_{0};
  std::atomic<uint64_t> local_reopens_{0};
  std::atomic<uint64_t> fetch_errors_{0};
  std::atomic<uint64_t> fence_rejections_{0};
  std::atomic<uint64_t> truncated_records_{0};
  std::atomic<uint64_t> divergence_repairs_{0};
  std::atomic<int> last_fetch_error_code_{0};
};

}  // namespace geosir::replication

#endif  // GEOSIR_REPLICATION_FOLLOWER_H_
