#include "replication/wire_protocol.h"

#include <algorithm>
#include <string>

namespace geosir::replication {

using net::ByteReader;
using net::PutU32;
using net::PutU64;
using net::PutU8;

namespace {

util::Status Truncated(const char* what) {
  return util::Status::Corruption(std::string("truncated ") + what +
                                  " payload");
}

/// Per-record wire overhead in a LogBatch: u64 lsn + u8 type + u32 len.
constexpr size_t kRecordHeaderBytes = 13;

}  // namespace

std::vector<uint8_t> EncodeHello(const HelloMessage& hello) {
  std::vector<uint8_t> out;
  PutU8(&out, hello.protocol_version);
  return out;
}

util::Result<HelloMessage> DecodeHello(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  HelloMessage hello;
  if (!reader.ReadU8(&hello.protocol_version)) return Truncated("hello");
  return hello;
}

std::vector<uint8_t> EncodeFetchRequest(const FetchRequest& request) {
  std::vector<uint8_t> out;
  PutU64(&out, request.from_lsn);
  PutU64(&out, request.max_records);
  PutU64(&out, request.min_epoch);
  return out;
}

util::Result<FetchRequest> DecodeFetchRequest(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  FetchRequest request;
  if (!reader.ReadU64(&request.from_lsn) ||
      !reader.ReadU64(&request.max_records) ||
      !reader.ReadU64(&request.min_epoch)) {
    return Truncated("fetch request");
  }
  return request;
}

std::vector<uint8_t> EncodeLogBatch(const LogBatch& batch) {
  std::vector<uint8_t> out;
  PutU64(&out, batch.primary_next_lsn);
  PutU64(&out, batch.primary_epoch);
  PutU32(&out, static_cast<uint32_t>(batch.records.size()));
  for (const storage::WalRecord& record : batch.records) {
    PutU64(&out, record.lsn);
    PutU8(&out, static_cast<uint8_t>(record.type));
    PutU32(&out, static_cast<uint32_t>(record.payload.size()));
    out.insert(out.end(), record.payload.begin(), record.payload.end());
  }
  return out;
}

util::Result<LogBatch> DecodeLogBatch(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  LogBatch batch;
  uint32_t count = 0;
  if (!reader.ReadU64(&batch.primary_next_lsn) ||
      !reader.ReadU64(&batch.primary_epoch) || !reader.ReadU32(&count)) {
    return Truncated("log batch");
  }
  // Every record costs at least its header, so a count the remaining
  // bytes cannot possibly hold is rejected before reserving anything — a
  // forged count cannot OOM the follower.
  if (static_cast<uint64_t>(count) * kRecordHeaderBytes >
      reader.remaining()) {
    return util::Status::Corruption("log batch record count " +
                                    std::to_string(count) +
                                    " exceeds payload bytes");
  }
  batch.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    storage::WalRecord record;
    uint8_t type = 0;
    uint32_t payload_len = 0;
    if (!reader.ReadU64(&record.lsn) || !reader.ReadU8(&type) ||
        !reader.ReadU32(&payload_len) ||
        !reader.ReadBytes(&record.payload, payload_len)) {
      return Truncated("log batch record");
    }
    record.type = static_cast<storage::WalRecordType>(type);
    batch.records.push_back(std::move(record));
  }
  if (reader.remaining() != 0) {
    return util::Status::Corruption("trailing bytes after log batch");
  }
  return batch;
}

std::vector<uint8_t> EncodeSnapshotPackage(const SnapshotPackage& package) {
  std::vector<uint8_t> out;
  PutU64(&out, package.generation);
  PutU64(&out, package.primary_next_lsn);
  PutU32(&out, static_cast<uint32_t>(package.checkpoint.size()));
  out.insert(out.end(), package.checkpoint.begin(), package.checkpoint.end());
  PutU32(&out, static_cast<uint32_t>(package.head_frame.size()));
  out.insert(out.end(), package.head_frame.begin(),
             package.head_frame.end());
  return out;
}

util::Result<SnapshotPackage> DecodeSnapshotPackage(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  SnapshotPackage package;
  uint32_t checkpoint_len = 0;
  uint32_t head_len = 0;
  if (!reader.ReadU64(&package.generation) ||
      !reader.ReadU64(&package.primary_next_lsn) ||
      !reader.ReadU32(&checkpoint_len) ||
      !reader.ReadBytes(&package.checkpoint, checkpoint_len) ||
      !reader.ReadU32(&head_len) ||
      !reader.ReadBytes(&package.head_frame, head_len)) {
    return Truncated("snapshot package");
  }
  if (reader.remaining() != 0) {
    return util::Status::Corruption("trailing bytes after snapshot package");
  }
  return package;
}

std::vector<uint8_t> EncodeNextLsn(uint64_t next_lsn) {
  std::vector<uint8_t> out;
  PutU64(&out, next_lsn);
  return out;
}

util::Result<uint64_t> DecodeNextLsn(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint64_t next_lsn = 0;
  if (!reader.ReadU64(&next_lsn) || reader.remaining() != 0) {
    return Truncated("next-lsn");
  }
  return next_lsn;
}

std::vector<uint8_t> EncodeEpochInfo(const EpochInfo& info) {
  std::vector<uint8_t> out;
  PutU64(&out, info.epoch);
  PutU64(&out, info.epoch_start_lsn);
  PutU64(&out, info.next_lsn);
  return out;
}

util::Result<EpochInfo> DecodeEpochInfo(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  EpochInfo info;
  if (!reader.ReadU64(&info.epoch) || !reader.ReadU64(&info.epoch_start_lsn) ||
      !reader.ReadU64(&info.next_lsn) || reader.remaining() != 0) {
    return Truncated("epoch info");
  }
  return info;
}

uint8_t WireCodeForStatus(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk: return 0;
    case util::StatusCode::kInvalidArgument: return 1;
    case util::StatusCode::kNotFound: return 2;
    case util::StatusCode::kOutOfRange: return 3;
    case util::StatusCode::kFailedPrecondition: return 4;
    case util::StatusCode::kCorruption: return 5;
    case util::StatusCode::kNotSupported: return 6;
    case util::StatusCode::kInternal: return 7;
    case util::StatusCode::kUnavailable: return 8;
    case util::StatusCode::kDeadlineExceeded: return 9;
    case util::StatusCode::kCancelled: return 10;
    case util::StatusCode::kResourceExhausted: return 11;
  }
  return 7;  // kInternal.
}

util::StatusCode StatusCodeFromWire(uint8_t wire_code) {
  switch (wire_code) {
    case 0: return util::StatusCode::kOk;
    case 1: return util::StatusCode::kInvalidArgument;
    case 2: return util::StatusCode::kNotFound;
    case 3: return util::StatusCode::kOutOfRange;
    case 4: return util::StatusCode::kFailedPrecondition;
    case 5: return util::StatusCode::kCorruption;
    case 6: return util::StatusCode::kNotSupported;
    case 7: return util::StatusCode::kInternal;
    case 8: return util::StatusCode::kUnavailable;
    case 9: return util::StatusCode::kDeadlineExceeded;
    case 10: return util::StatusCode::kCancelled;
    case 11: return util::StatusCode::kResourceExhausted;
    default: return util::StatusCode::kInternal;
  }
}

std::vector<uint8_t> EncodeError(const util::Status& status) {
  std::vector<uint8_t> out;
  PutU8(&out, WireCodeForStatus(status.code()));
  // Bound the shipped message: diagnostics, not a data channel.
  const std::string& message = status.message();
  const uint32_t len =
      static_cast<uint32_t>(std::min<size_t>(message.size(), 1024));
  PutU32(&out, len);
  out.insert(out.end(), message.begin(), message.begin() + len);
  return out;
}

util::Status DecodeError(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint8_t wire_code = 0;
  uint32_t len = 0;
  std::string message;
  if (!reader.ReadU8(&wire_code) || !reader.ReadU32(&len) ||
      !reader.ReadString(&message, len)) {
    return util::Status::Corruption("truncated error payload");
  }
  const util::StatusCode code = StatusCodeFromWire(wire_code);
  if (code == util::StatusCode::kOk) {
    // An "error" reply claiming OK is a protocol violation.
    return util::Status::Corruption("error frame with OK status");
  }
  return util::Status(code, "remote: " + message);
}

}  // namespace geosir::replication
