#include "replication/replication_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "replication/wire_protocol.h"
#include "util/deadline.h"

namespace geosir::replication {

struct ReplicationServer::Connection {
  net::Socket socket;
  std::thread worker;
  std::atomic<bool> done{false};
  /// True while a request is between read and reply: the drain in Stop()
  /// lets such connections finish instead of shutting their socket.
  std::atomic<bool> busy{false};
};

/// Process-wide server instrumentation (one server per process in
/// practice; two servers share the series, which still tells the
/// operator what the machine is doing).
struct ReplicationServer::Metrics {
  obs::Counter* accepts;
  obs::Counter* rejects;
  obs::Counter* handshake_failures;
  obs::Counter* frames_in;
  obs::Counter* frames_out;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* timeouts;
  obs::Counter* errors;
  obs::Gauge* active;
  obs::Histogram* request_latency;

  static const Metrics* Get() {
    static const Metrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new Metrics();
      m->accepts = r.GetCounter("geosir_net_server_connections_total",
                                "Follower connections accepted");
      m->rejects = r.GetCounter(
          "geosir_net_server_rejected_total",
          "Connections refused at the max_connections bound");
      m->handshake_failures =
          r.GetCounter("geosir_net_server_handshake_failures_total",
                       "Connections dropped during the version handshake");
      m->frames_in = r.GetCounter("geosir_net_server_frames_total",
                                  "Wire frames by direction",
                                  "dir=\"in\"");
      m->frames_out = r.GetCounter("geosir_net_server_frames_total",
                                   "Wire frames by direction",
                                   "dir=\"out\"");
      m->bytes_in = r.GetCounter("geosir_net_server_bytes_total",
                                 "Wire bytes by direction", "dir=\"in\"");
      m->bytes_out = r.GetCounter("geosir_net_server_bytes_total",
                                  "Wire bytes by direction", "dir=\"out\"");
      m->timeouts = r.GetCounter(
          "geosir_net_server_timeouts_total",
          "Connections reaped by the idle/write deadline");
      m->errors = r.GetCounter("geosir_net_server_request_errors_total",
                               "Requests answered with an error frame");
      m->active = r.GetGauge("geosir_net_server_active_connections",
                             "Currently connected followers");
      m->request_latency = r.GetHistogram(
          "geosir_net_server_request_seconds",
          "Service time of one replication request (read to reply)",
          obs::LatencyBucketsSeconds());
      return m;
    }();
    return metrics;
  }
};

ReplicationServer::ReplicationServer(ReplicationServerOptions options)
    : options_(std::move(options)), metrics_(Metrics::Get()) {}

util::Result<std::unique_ptr<ReplicationServer>> ReplicationServer::Start(
    ReplicationServerOptions options) {
  if (options.env == nullptr || options.journal == nullptr) {
    return util::Status::InvalidArgument(
        "replication server needs the primary's env and journal");
  }
  std::unique_ptr<ReplicationServer> server(
      new ReplicationServer(std::move(options)));
  GEOSIR_ASSIGN_OR_RETURN(
      server->listener_,
      net::Listener::Bind(server->options_.host, server->options_.port));
  server->accept_thread_ =
      std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

ReplicationServer::~ReplicationServer() { Stop(); }

void ReplicationServer::Stop() {
  if (stop_requested_.exchange(true, std::memory_order_relaxed)) return;
  // Phase 1 — drain. Workers whose connection is idle are unblocked now
  // (Shutdown, not Close, so the fd is never raced out from under a
  // poll); workers mid-request keep their socket and finish the reply.
  // The accept loop keeps running so that a follower connecting during
  // the drain gets a retriable kUnavailable error frame, not a slammed
  // socket.
  draining_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (!connection->busy.load(std::memory_order_acquire)) {
        connection->socket.Shutdown();
      }
    }
  }
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(0, options_.drain_timeout_ms));
  for (;;) {
    bool any_busy = false;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (auto& connection : connections_) {
        if (connection->busy.load(std::memory_order_acquire)) {
          any_busy = true;
          break;
        }
      }
    }
    if (!any_busy || std::chrono::steady_clock::now() >= drain_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 2 — hard stop: anything still open (a reply that overran the
  // drain budget, half-open peers) is shut down and joined.
  stopping_.store(true, std::memory_order_release);
  listener_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) connection->socket.Shutdown();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->worker.joinable()) connection->worker.join();
  }
}

void ReplicationServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kCancelled ||
          stopping_.load(std::memory_order_relaxed)) {
        return;
      }
      continue;
    }
    if (draining_.load(std::memory_order_acquire)) {
      // Stop() is draining in-flight replies: answer with a retriable
      // error so the follower backs off and retries elsewhere, instead
      // of seeing a connection slammed mid-handshake.
      metrics_->rejects->Inc();
      net::Socket refused = std::move(accepted).value();
      (void)net::WriteFrame(
          &refused, static_cast<uint8_t>(MessageType::kError),
          EncodeError(util::Status::Unavailable("server draining for stop")),
          util::Deadline::AfterMillis(options_.write_timeout_ms));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      // Reap finished workers inline so a follower that reconnects many
      // times does not accumulate joinable threads.
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->worker.joinable()) (*it)->worker.join();
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
      if (connections_.size() >= options_.max_connections) {
        metrics_->rejects->Inc();
        net::Socket refused = std::move(accepted).value();
        (void)net::WriteFrame(
            &refused, static_cast<uint8_t>(MessageType::kError),
            EncodeError(util::Status::Unavailable(
                "server at connection capacity")),
            util::Deadline::AfterMillis(options_.write_timeout_ms));
        continue;  // Dropping the socket closes it.
      }
      auto connection = std::make_shared<Connection>();
      connection->socket = std::move(accepted).value();
      connections_.push_back(connection);
      metrics_->accepts->Inc();
      active_.fetch_add(1, std::memory_order_relaxed);
      metrics_->active->Add(1);
      connection->worker = std::thread(
          [this, connection] { Serve(connection); });
    }
  }
}

void ReplicationServer::Serve(std::shared_ptr<Connection> connection) {
  // Handshake: the follower leads with kHello; anything else (garbage,
  // a stray HTTP probe, a future incompatible client) is answered with
  // an error frame where possible and dropped.
  const util::Deadline handshake_deadline =
      util::Deadline::AfterMillis(options_.handshake_timeout_ms);
  size_t wire = 0;
  auto hello = net::ReadFrame(&connection->socket, options_.max_frame_payload,
                              handshake_deadline, &wire);
  bool handshaken = false;
  if (hello.ok()) {
    metrics_->frames_in->Inc();
    metrics_->bytes_in->Inc(wire);
    auto message = hello->type == static_cast<uint8_t>(MessageType::kHello)
                       ? DecodeHello(hello->payload)
                       : util::Result<HelloMessage>(util::Status::Corruption(
                             "first frame is not a hello"));
    if (message.ok() &&
        message->protocol_version == options_.protocol_version) {
      handshaken =
          WriteReply(connection.get(), MessageType::kHelloAck,
                     EncodeHello(HelloMessage{options_.protocol_version}))
              .ok();
    } else if (message.ok()) {
      // A version mismatch is terminal, not transient: retrying the same
      // binary can never succeed, so the client must surface it as
      // kFailedPrecondition instead of cycling its backoff loop.
      (void)WriteReply(
          connection.get(), MessageType::kError,
          EncodeError(util::Status::FailedPrecondition(
              "protocol version " +
              std::to_string(message->protocol_version) +
              " not supported (server speaks " +
              std::to_string(options_.protocol_version) + ")")));
    }
  }
  if (!handshaken) {
    metrics_->handshake_failures->Inc();
  } else {
    // Per-connection log source: the follower's cursor state lives and
    // dies with its connection, so a reconnect naturally restarts the
    // decode position (the connection-generation contract).
    PrimaryLogSource source(options_.env, options_.dir, options_.journal);
    while (!stopping_.load(std::memory_order_relaxed) &&
           !draining_.load(std::memory_order_relaxed)) {
      if (!ServeOne(connection.get(), &source)) break;
    }
  }
  connection->socket.Shutdown();
  active_.fetch_sub(1, std::memory_order_relaxed);
  metrics_->active->Add(-1);
  connection->done.store(true, std::memory_order_release);
}

bool ReplicationServer::ServeOne(Connection* connection,
                                 PrimaryLogSource* source) {
  size_t wire = 0;
  auto request = net::ReadFrame(
      &connection->socket, options_.max_frame_payload,
      util::Deadline::AfterMillis(options_.idle_timeout_ms), &wire);
  if (!request.ok()) {
    if (request.status().code() == util::StatusCode::kDeadlineExceeded) {
      metrics_->timeouts->Inc();  // Idle reap.
    }
    return false;
  }
  metrics_->frames_in->Inc();
  metrics_->bytes_in->Inc(wire);
  // Busy window: from here until the reply is written, Stop()'s drain
  // waits for this connection instead of shutting its socket.
  connection->busy.store(true, std::memory_order_release);
  const auto start = std::chrono::steady_clock::now();

  MessageType reply_type = MessageType::kError;
  std::vector<uint8_t> reply;
  switch (static_cast<MessageType>(request->type)) {
    case MessageType::kFetch: {
      auto decoded = DecodeFetchRequest(request->payload);
      if (!decoded.ok()) {
        reply = EncodeError(decoded.status());
        break;
      }
      auto batch = source->Fetch(decoded->from_lsn,
                                 static_cast<size_t>(decoded->max_records),
                                 decoded->min_epoch);
      if (batch.ok()) {
        reply_type = MessageType::kFetchOk;
        reply = EncodeLogBatch(*batch);
      } else {
        reply = EncodeError(batch.status());
      }
      break;
    }
    case MessageType::kFetchSnapshot: {
      auto snapshot = source->FetchSnapshot();
      if (snapshot.ok()) {
        reply_type = MessageType::kSnapshotOk;
        reply = EncodeSnapshotPackage(*snapshot);
      } else {
        reply = EncodeError(snapshot.status());
      }
      break;
    }
    case MessageType::kPrimaryNextLsn: {
      auto next_lsn = source->PrimaryNextLsn();
      if (next_lsn.ok()) {
        reply_type = MessageType::kNextLsnOk;
        reply = EncodeNextLsn(*next_lsn);
      } else {
        reply = EncodeError(next_lsn.status());
      }
      break;
    }
    case MessageType::kEpochInfo: {
      auto info = source->GetEpochInfo();
      if (info.ok()) {
        reply_type = MessageType::kEpochInfoOk;
        reply = EncodeEpochInfo(*info);
      } else {
        reply = EncodeError(info.status());
      }
      break;
    }
    default:
      reply = EncodeError(util::Status::InvalidArgument(
          "unknown message type " + std::to_string(request->type)));
      break;
  }
  if (reply_type == MessageType::kError) metrics_->errors->Inc();
  const bool sent = WriteReply(connection, reply_type, reply).ok();
  connection->busy.store(false, std::memory_order_release);
  metrics_->request_latency->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return sent;
}

util::Status ReplicationServer::WriteReply(
    Connection* connection, MessageType type,
    const std::vector<uint8_t>& payload) {
  size_t wire = 0;
  util::Status written = net::WriteFrame(
      &connection->socket, static_cast<uint8_t>(type), payload,
      util::Deadline::AfterMillis(options_.write_timeout_ms), &wire);
  if (written.ok()) {
    metrics_->frames_out->Inc();
    metrics_->bytes_out->Inc(wire);
  } else if (written.code() == util::StatusCode::kDeadlineExceeded) {
    metrics_->timeouts->Inc();
  }
  return written;
}

}  // namespace geosir::replication
