#ifndef GEOSIR_REPLICATION_FAULT_TRANSPORT_H_
#define GEOSIR_REPLICATION_FAULT_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "replication/log_transport.h"
#include "storage/fault_injection.h"

namespace geosir::replication {

/// The failure modes a shipping channel can exhibit. Matching the crash
/// harness, every probabilistic decision is a pure hash of (seed,
/// operation index): a given plan injects exactly the same faults on
/// every run.
enum class TransportFault : uint8_t {
  kNone = 0,
  /// The request is lost: kUnavailable, nothing delivered.
  kDrop,
  /// The response is late: a fixed busy-wait-free sleep, then delivered.
  kDelay,
  /// The previous fetch's batch is delivered again instead of fresh
  /// records — the at-least-once delivery case idempotent replay must
  /// absorb.
  kDuplicate,
  /// The first two records of the batch arrive swapped — a gap the
  /// follower must reject and refetch, never apply out of order.
  kReorder,
  /// The link goes down: this and the next `disconnect_ops - 1`
  /// operations fail with kUnavailable, then the link heals.
  kDisconnect,
};

/// Exact-operation fault, applied in addition to the rates.
struct ScheduledTransportFault {
  uint64_t op_index = 0;
  TransportFault kind = TransportFault::kNone;
};

struct TransportFaultPlan {
  uint64_t seed = 1;
  double drop_rate = 0.0;
  double delay_rate = 0.0;
  int delay_us = 100;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double disconnect_rate = 0.0;
  uint64_t disconnect_ops = 4;
  std::vector<ScheduledTransportFault> schedule;
};

/// Decorator injecting deterministic transport faults between a follower
/// and its log source — FaultInjectingDevice's sibling for the shipping
/// channel. Optionally wired to the crash harness's CrashClock: every
/// transport operation is a ship boundary the chaos matrix can kill at
/// (a dead clock fails every operation with kUnavailable, exactly like a
/// follower whose process died mid-fetch).
class FaultInjectingTransport : public LogTransport {
 public:
  FaultInjectingTransport(std::unique_ptr<LogTransport> inner,
                          TransportFaultPlan plan,
                          storage::CrashClock* clock = nullptr);

  util::Result<LogBatch> Fetch(uint64_t from_lsn, size_t max_records,
                               uint64_t min_epoch = 0) override;
  util::Result<SnapshotPackage> FetchSnapshot() override;
  util::Result<uint64_t> PrimaryNextLsn() override;
  util::Result<EpochInfo> GetEpochInfo() override;
  std::string Describe() const override {
    return "fault(" + inner_->Describe() + ")";
  }

  uint64_t ops() const { return ops_; }
  uint64_t injected_drops() const { return drops_; }
  uint64_t injected_delays() const { return delays_; }
  uint64_t injected_duplicates() const { return duplicates_; }
  uint64_t injected_reorders() const { return reorders_; }
  uint64_t injected_disconnects() const { return disconnects_; }

 private:
  /// Draws the fault for operation `op` (schedule first, then rates in a
  /// fixed precedence order so one op maps to one fault).
  TransportFault FaultFor(uint64_t op) const;
  /// Shared pre-flight for every operation: clock tick, disconnect
  /// window, drop/delay/disconnect draws. Returns the fault the caller
  /// still has to act on (kDuplicate / kReorder) or kNone; sets `failed`
  /// when the operation must return kUnavailable.
  TransportFault Admit(bool* failed);

  std::unique_ptr<LogTransport> inner_;
  TransportFaultPlan plan_;
  storage::CrashClock* clock_;
  uint64_t ops_ = 0;
  uint64_t drops_ = 0;
  uint64_t delays_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t reorders_ = 0;
  uint64_t disconnects_ = 0;
  uint64_t disconnected_until_ = 0;
  /// Last successfully delivered batch, redelivered on kDuplicate.
  std::optional<LogBatch> last_batch_;
};

}  // namespace geosir::replication

#endif  // GEOSIR_REPLICATION_FAULT_TRANSPORT_H_
