#ifndef GEOSIR_REPLICATION_REPLICATED_SHAPE_BASE_H_
#define GEOSIR_REPLICATION_REPLICATED_SHAPE_BASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/dynamic_shape_base.h"
#include "query/admission.h"
#include "replication/follower.h"
#include "replication/log_transport.h"
#include "storage/wal.h"
#include "util/deadline.h"
#include "util/retry.h"
#include "util/status.h"

namespace geosir::replication {

/// What the router does with a follower whose staleness exceeds
/// ReplicatedOptions::max_staleness_records.
enum class StaleRoutePolicy : uint8_t {
  /// Skip stale followers while a fresh one can take the query; fall back
  /// to the LEAST stale follower when every replica is beyond the bound —
  /// degradation shows up as staleness in MatchStats, never as an error.
  kRedirectStale,
  /// Ignore staleness entirely (pure round-robin). For workloads that
  /// prefer spread over freshness.
  kServeStale,
};

/// One follower slot of a ReplicatedShapeBase.
struct ReplicaSpec {
  /// Filesystem for this follower's durable mirror; nullptr means the
  /// primary's env (chaos tests give each follower its own MemEnv so a
  /// follower crash-image does not disturb the primary).
  storage::Env* env = nullptr;
  /// Directory for the follower's own generation files. Must differ from
  /// the primary's and from every other replica's.
  std::string dir;
  /// The shipping channel; nullptr means a direct in-process
  /// PrimaryLogSource (tests wrap one in a FaultInjectingTransport).
  std::unique_ptr<LogTransport> transport;
};

struct ReplicatedOptions {
  core::DynamicShapeBase::Options base;
  /// Primary filesystem; nullptr means Env::Posix().
  storage::Env* env = nullptr;
  storage::WalOptions primary_wal;
  storage::WalOptions follower_wal;
  uint64_t max_recovered_ids = uint64_t{1} << 24;
  /// Per-follower admission control (each replica gets its own
  /// controller, so shedding one does not starve the others).
  query::AdmissionOptions admission;
  util::RetryPolicy reconnect{/*max_attempts=*/5, /*base_backoff_us=*/200,
                              /*multiplier=*/2.0};
  size_t fetch_batch_records = 256;
  StaleRoutePolicy stale_policy = StaleRoutePolicy::kRedirectStale;
  /// Staleness bound for kRedirectStale, in records behind the primary
  /// tail at routing time.
  uint64_t max_staleness_records = 4096;
  /// Spawn one pump thread per follower in Open(). Tests that drive
  /// replication deterministically pass false and call StepFollower().
  bool start_replication = true;
  /// Pump-thread sleep between rounds that applied nothing.
  int idle_backoff_us = 200;
  /// Catch-up budget PromoteFollower grants the target before sealing it
  /// (the old primary may be dead, so this is an upper bound on effort,
  /// not a promise of zero lag).
  int promote_catchup_ms = 2000;
  /// Auto-failover policy: consecutive failed primary health probes
  /// before the monitor promotes the freshest surviving follower.
  /// 0 disables the monitor thread entirely.
  int failover_failures_to_trip = 0;
  int failover_probe_interval_ms = 20;
  /// Health probe override; the default probes a journal Sync under the
  /// write mutex. Tests flip this to trip the monitor on demand.
  std::function<util::Status()> health_probe;
};

/// A serving tier: one durable primary DynamicShapeBase accepting writes,
/// N read-only followers tailing its WAL, and a lag-aware router spreading
/// MatchBatch across them.
///
/// Threading: writes (Insert/Remove/Compact/SyncPrimary) serialize on an
/// internal mutex; MatchBatch/Match may run concurrently from any number
/// of threads (each lands on one follower, whose own state lock provides
/// the snapshot-consistency guarantee). With zero replicas the primary
/// serves reads itself, under the write mutex.
class ReplicatedShapeBase {
 public:
  /// Opens (recovering if needed) the primary in `primary_dir` and one
  /// follower per spec, then starts the pump threads unless
  /// options.start_replication is false. `report`, when non-null,
  /// receives the primary's recovery report.
  static util::Result<std::unique_ptr<ReplicatedShapeBase>> Open(
      const std::string& primary_dir, std::vector<ReplicaSpec> replicas,
      ReplicatedOptions options, storage::RecoveryReport* report = nullptr);

  ~ReplicatedShapeBase();

  ReplicatedShapeBase(const ReplicatedShapeBase&) = delete;
  ReplicatedShapeBase& operator=(const ReplicatedShapeBase&) = delete;

  // --- Writes (primary only) ---
  util::Result<uint64_t> Insert(geom::Polyline boundary,
                                core::ImageId image = core::kNoImage,
                                std::string label = "");
  util::Status Remove(uint64_t id);
  util::Status Compact();
  /// Durability barrier on the primary WAL (acked-write guarantee).
  util::Status SyncPrimary();

  // --- Reads (routed) ---
  /// Routes the whole batch to one replica chosen by freshness and
  /// admission (see StaleRoutePolicy). kUnavailable only when every
  /// replica's admission controller shed the batch — staleness alone
  /// never produces an error.
  util::Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
  MatchBatch(const std::vector<geom::Polyline>& queries, size_t k = 1,
             std::vector<core::MatchStats>* stats = nullptr,
             util::Deadline deadline = {});
  util::Result<std::vector<std::pair<uint64_t, double>>> Match(
      const geom::Polyline& query, size_t k = 1,
      core::MatchStats* stats = nullptr, util::Deadline deadline = {});

  // --- Replication control ---
  void Start();
  void Stop();
  /// One synchronous pump on follower `i` (threads must not be running).
  util::Result<size_t> StepFollower(size_t i);
  /// Blocks until every (non-promoted) follower reaches the primary's
  /// current tail. Pumps inline when the threads are stopped, polls
  /// otherwise.
  util::Status WaitForCatchUp(util::Deadline deadline = {});

  // --- Failover ---
  /// Controlled switchover to follower `i`: drains primary admissions
  /// (writes answer kUnavailable for the window), grants the target a
  /// bounded catch-up, promotes it under a new epoch, swaps it in as the
  /// serving primary, and re-points + fences every surviving follower at
  /// the new term. The deposed follower slot stays in place, sealed (the
  /// router sheds it); indices are stable. Safe to call whether or not
  /// the pump threads are running — they are paused and resumed around
  /// the switchover.
  util::Status PromoteFollower(size_t i);
  /// Adds one follower to a live tier (the rejoin path for a demoted or
  /// restarted old primary). A null spec.transport gets an in-process
  /// source over the CURRENT primary; the follower is fenced to the
  /// current term before it serves, so a divergent local suffix is
  /// repaired on its first pump rather than replayed.
  util::Status AddFollower(ReplicaSpec spec);
  /// Current primary term (0 until the first promotion on stores created
  /// before epochs existed).
  uint64_t primary_epoch() const;
  /// Completed failovers on this tier.
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }

  // --- Introspection ---
  uint64_t primary_next_lsn() const;
  uint64_t primary_generation() const;
  size_t replica_count() const { return followers_.size(); }
  Follower& follower(size_t i) { return *followers_[i]; }
  /// Primary state reads for tests (taken under the write mutex).
  uint64_t PrimaryNextId() const;
  std::vector<uint64_t> PrimaryLiveIds() const;

 private:
  struct RouterMetrics;

  ReplicatedShapeBase(ReplicatedOptions options,
                      storage::DurableDynamicBase primary);

  /// The routed read path shared by Match and MatchBatch.
  util::Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
  RouteBatch(const std::vector<geom::Polyline>& queries, size_t k,
             std::vector<core::MatchStats>* stats, util::Deadline deadline);
  void FollowerLoop(size_t i);
  void StartPumps();
  void StopPumps();
  void StartMonitor();
  void StopMonitor();
  void MonitorLoop();
  /// Coherent primary tail under the write mutex (the journal pointer is
  /// swapped during a failover, so unlocked reads would race the swap).
  storage::WalTailState PrimaryTail() const;

  ReplicatedOptions options_;
  /// Serializes every primary mutation (and primary-served reads).
  mutable std::mutex primary_mutex_;
  storage::DurableDynamicBase primary_;
  /// The serving primary's filesystem and directory (follower-owned after
  /// a failover; needed to build transports for survivors and joiners).
  storage::Env* primary_env_ = nullptr;
  std::string primary_dir_;
  const RouterMetrics* metrics_;

  /// Serializes PromoteFollower/AddFollower against each other (and the
  /// monitor's automatic promotions).
  std::mutex failover_mutex_;
  /// Taken shared by the router while it walks followers_, exclusively by
  /// AddFollower's push_back. PromoteFollower never erases slots, so
  /// indices are stable for the tier's lifetime.
  mutable std::shared_mutex topology_mutex_;
  /// Write drain: Insert/Remove/Compact/SyncPrimary answer kUnavailable
  /// while a switchover is re-seating the primary.
  std::atomic<bool> failover_in_progress_{false};
  std::atomic<uint64_t> failovers_{0};

  std::vector<std::unique_ptr<LogTransport>> transports_;
  std::vector<std::unique_ptr<Follower>> followers_;

  std::vector<std::thread> pump_threads_;
  std::atomic<bool> running_{false};
  std::thread monitor_thread_;
  std::atomic<bool> monitor_running_{false};
  std::atomic<uint64_t> round_robin_{0};
};

}  // namespace geosir::replication

#endif  // GEOSIR_REPLICATION_REPLICATED_SHAPE_BASE_H_
