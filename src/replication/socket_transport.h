#ifndef GEOSIR_REPLICATION_SOCKET_TRANSPORT_H_
#define GEOSIR_REPLICATION_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "replication/log_transport.h"
#include "replication/wire_protocol.h"
#include "util/deadline.h"
#include "util/retry.h"
#include "util/status.h"

namespace geosir::replication {

/// Reconnect policy suited to a real link: capped so a long outage does
/// not snowball the sleep, jittered so a fleet of followers severed at
/// the same instant does not reconnect in lockstep.
inline util::RetryPolicy DefaultReconnectPolicy(uint64_t jitter_seed = 1) {
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_us = 2000;
  policy.multiplier = 2.0;
  policy.max_backoff_us = 100000;
  policy.decorrelated_jitter = true;
  policy.jitter_seed = jitter_seed;
  return policy;
}

struct SocketTransportOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Budget for one TCP connect + Hello handshake.
  int connect_timeout_ms = 2000;
  /// Whole-RPC budget (including any reconnect attempts and their
  /// backoff sleeps): no transport call blocks its caller for longer.
  int call_timeout_ms = 10000;
  /// In-call reconnect/backoff schedule. Only kUnavailable outcomes are
  /// retried; sleeps are clamped to the call deadline's remaining time.
  util::RetryPolicy reconnect = DefaultReconnectPolicy();
  size_t max_frame_payload = net::kDefaultMaxFramePayload;
};

/// LogTransport over a real TCP connection to a ReplicationServer.
///
/// Connection discipline: lazy connect on first use; every RPC runs
/// under one call deadline; any wire-level failure (timeout, peer gone,
/// torn or corrupt frame) drops the connection, and the next attempt —
/// in the same call for retriable failures, or the next call otherwise —
/// reconnects and re-runs the handshake. Requests are idempotent pulls
/// keyed by from_lsn, so re-running one after an ambiguous failure is
/// always safe.
///
/// Error mapping at the RPC boundary, aligned with the Follower's
/// retry/resync semantics: deadline expiry and every connection-level
/// failure surface as kUnavailable (retry later); a frame that decodes
/// but is invalid is kCorruption; error replies from the server carry
/// their original StatusCode (kNotFound still means "snapshot resync").
///
/// Not thread-safe (one follower, one transport — the LogTransport
/// contract).
class SocketLogTransport : public LogTransport {
 public:
  explicit SocketLogTransport(SocketTransportOptions options);
  ~SocketLogTransport() override;

  util::Result<LogBatch> Fetch(uint64_t from_lsn, size_t max_records,
                               uint64_t min_epoch = 0) override;
  util::Result<SnapshotPackage> FetchSnapshot() override;
  util::Result<uint64_t> PrimaryNextLsn() override;
  util::Result<EpochInfo> GetEpochInfo() override;
  std::string Describe() const override;

  /// Bumped every time a fresh connection finishes its handshake. A
  /// reconnect invalidates all connection-scoped state on the server (its
  /// per-connection PrimaryLogSource cursor); callers watching this
  /// counter can tell "same session" from "new session".
  uint64_t connection_generation() const { return generation_; }
  bool connected() const { return connected_; }

  /// Drops the current connection (test hook; the next call reconnects).
  void Disconnect();

 private:
  struct Metrics;

  /// Connects + handshakes if not connected. kUnavailable /
  /// kDeadlineExceeded bubble out per the socket layer's split.
  util::Status EnsureConnected(util::Deadline deadline);
  /// One request/reply exchange under `deadline` on the current
  /// connection (connecting first if needed). Any failure drops the
  /// connection before returning.
  util::Result<net::Frame> Exchange(MessageType request,
                                    const std::vector<uint8_t>& payload,
                                    util::Deadline deadline);
  /// Full RPC: Exchange with reconnect/backoff on kUnavailable, reply
  /// type checking, kError decoding, and the boundary error mapping.
  util::Result<std::vector<uint8_t>> Call(MessageType request,
                                          const std::vector<uint8_t>& payload,
                                          MessageType expected_reply);

  SocketTransportOptions options_;
  const Metrics* metrics_;
  net::Socket socket_;
  bool connected_ = false;
  uint64_t generation_ = 0;
};

}  // namespace geosir::replication

#endif  // GEOSIR_REPLICATION_SOCKET_TRANSPORT_H_
