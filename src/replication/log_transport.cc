#include "replication/log_transport.h"

#include <utility>

namespace geosir::replication {

PrimaryLogSource::PrimaryLogSource(storage::Env* env, std::string dir,
                                   const storage::WalJournal* journal)
    : env_(env), dir_(std::move(dir)), journal_(journal) {}

util::Result<LogBatch> PrimaryLogSource::Fetch(uint64_t from_lsn,
                                               size_t max_records,
                                               uint64_t min_epoch) {
  const storage::WalTailState tail = journal_->tail_state();
  LogBatch batch;
  batch.primary_next_lsn = tail.next_lsn;
  batch.primary_epoch = tail.epoch;
  if (tail.epoch < min_epoch) {
    // The follower has already accepted a newer term: this primary is a
    // zombie and must never feed it another record (fence rejection).
    return util::Status::FailedPrecondition(
        "stale epoch " + std::to_string(tail.epoch) +
        ": follower is fenced to epoch >= " + std::to_string(min_epoch));
  }
  if (from_lsn > tail.next_lsn) {
    return util::Status::OutOfRange(
        "follower cursor " + std::to_string(from_lsn) +
        " is ahead of the primary tail " + std::to_string(tail.next_lsn));
  }
  if (from_lsn == tail.next_lsn || tail.detached) {
    // Caught up (a detached journal has nothing shippable until its next
    // rotation publishes a fresh generation).
    return batch;
  }
  storage::WalReadReport report;
  auto records = storage::ReadWalRecordsSince(
      env_, dir_, tail.generation, from_lsn, tail.committed_bytes, max_records,
      &report, &cursor_);
  if (!records.ok()) {
    if (records.status().code() == util::StatusCode::kNotFound) {
      // The generation rotated away between tail_state() and the read;
      // the next fetch sees the new one.
      return util::Status::Unavailable(
          "wal generation rotated during fetch; retry");
    }
    return records.status();
  }
  // When from_lsn predates the retained log's head (the generation
  // rotated past the cursor), the batch simply starts at the head
  // commit. The follower decides what that means: a converged replica
  // rotates in-stream off the commit (the skipped LSNs were advisory
  // markers), a lagging one fails the commit's convergence check and
  // falls back to a snapshot resync.
  if (records->empty() && report.salvaged) {
    // Corruption strictly below the committed bound is real damage, not
    // a torn tail; retrying cannot help.
    return util::Status::Corruption("primary wal corrupt mid-stream");
  }
  batch.records = *std::move(records);
  return batch;
}

util::Result<SnapshotPackage> PrimaryLogSource::FetchSnapshot() {
  const storage::WalTailState tail = journal_->tail_state();
  // Both reads are keyed by the same generation; its files are never
  // modified once written (appends extend the WAL but the head frame is
  // fixed), so if both succeed they form a consistent pair. A rotation
  // deleting them mid-read surfaces as kUnavailable and the caller
  // retries against the new generation.
  auto checkpoint =
      env_->ReadFileBytes(storage::CheckpointPath(dir_, tail.generation));
  if (!checkpoint.ok()) {
    return util::Status::Unavailable(
        "checkpoint unreadable (rotation in progress?): " +
        checkpoint.status().message());
  }
  storage::WalReadReport report;
  storage::WalTailCursor head_cursor;
  auto head = storage::ReadWalRecordsSince(env_, dir_, tail.generation,
                                           /*from_lsn=*/0,
                                           tail.committed_bytes,
                                           /*max_records=*/1, &report,
                                           &head_cursor);
  if (!head.ok() || head->empty()) {
    return util::Status::Unavailable(
        "wal head unreadable (rotation in progress?)");
  }
  const storage::WalRecord& record = head->front();
  if (record.type != storage::WalRecordType::kCompactCommit) {
    return util::Status::Corruption(
        "primary wal does not begin with a compact-commit head");
  }
  SnapshotPackage package;
  package.generation = tail.generation;
  package.checkpoint = *std::move(checkpoint);
  package.primary_next_lsn = tail.next_lsn;
  storage::AppendWalFrame(&package.head_frame, record.lsn, record.type,
                          record.payload);
  return package;
}

util::Result<uint64_t> PrimaryLogSource::PrimaryNextLsn() {
  return journal_->tail_state().next_lsn;
}

util::Result<EpochInfo> PrimaryLogSource::GetEpochInfo() {
  const storage::WalTailState tail = journal_->tail_state();
  EpochInfo info;
  info.epoch = tail.epoch;
  info.epoch_start_lsn = tail.epoch_start_lsn;
  info.next_lsn = tail.next_lsn;
  return info;
}

}  // namespace geosir::replication
