#ifndef GEOSIR_REPLICATION_REPLICATION_SERVER_H_
#define GEOSIR_REPLICATION_REPLICATION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "replication/log_transport.h"
#include "replication/wire_protocol.h"
#include "storage/wal.h"
#include "util/status.h"

namespace geosir::replication {

struct ReplicationServerOptions {
  /// The primary's filesystem + WAL directory + journal, exactly what an
  /// in-process PrimaryLogSource takes. Each accepted connection gets
  /// its OWN PrimaryLogSource (the tail cursor is per-consumer state),
  /// so followers never share decode position.
  storage::Env* env = nullptr;
  std::string dir;
  const storage::WalJournal* journal = nullptr;

  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; see ReplicationServer::port().

  /// Beyond this many live connections a new one is sent an kError
  /// (kUnavailable) and closed: a reconnect storm degrades into backoff,
  /// not fd exhaustion.
  size_t max_connections = 64;
  /// Per-request reply write budget.
  int write_timeout_ms = 5000;
  /// Idle reaping: a connection that sends no request for this long is
  /// closed. Half-open peers (died without FIN) stop holding a worker
  /// and an fd after at most this window.
  int idle_timeout_ms = 30000;
  /// Handshake must complete within this budget.
  int handshake_timeout_ms = 2000;
  size_t max_frame_payload = net::kDefaultMaxFramePayload;
  /// Stop() drain bound: how long to wait for in-flight requests to
  /// finish their reply before the remaining sockets are shut down hard.
  int drain_timeout_ms = 2000;
  /// Wire protocol version this server speaks. The default is the real
  /// one; tests override it to exercise the handshake-mismatch path
  /// without forking the protocol.
  uint8_t protocol_version = net::kProtocolVersion;
};

/// The primary-side socket endpoint of the replication tier: accepts
/// follower connections, runs the version handshake, then serves the
/// Fetch / FetchSnapshot / PrimaryNextLsn request/reply protocol over
/// CRC-framed messages, each connection on its own worker thread over
/// its own PrimaryLogSource.
///
/// Stop() (and the destructor) is a graceful, bounded drain: requests
/// already being processed complete their reply (up to drain_timeout_ms),
/// idle connections are unblocked immediately, and new connections during
/// the drain are answered with a retriable kUnavailable error frame
/// instead of a slammed socket — a follower mid-fetch sees a complete
/// reply or a clean connection close, never a torn frame. After the
/// drain the listener and every remaining socket are shut down and all
/// workers are joined.
class ReplicationServer {
 public:
  static util::Result<std::unique_ptr<ReplicationServer>> Start(
      ReplicationServerOptions options);

  ~ReplicationServer();
  ReplicationServer(const ReplicationServer&) = delete;
  ReplicationServer& operator=(const ReplicationServer&) = delete;

  /// The bound port (resolves an ephemeral bind).
  uint16_t port() const { return listener_.port(); }

  void Stop();

  /// Live connection count (tests; the gauge mirrors it).
  size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  struct Metrics;

  explicit ReplicationServer(ReplicationServerOptions options);

  void AcceptLoop();
  void Serve(std::shared_ptr<Connection> connection);
  /// One request/reply exchange; false ends the connection.
  bool ServeOne(Connection* connection, PrimaryLogSource* source);
  util::Status WriteReply(Connection* connection, MessageType type,
                          const std::vector<uint8_t>& payload);

  ReplicationServerOptions options_;
  net::Listener listener_;
  std::thread accept_thread_;
  /// Idempotency guard for Stop() (set first, before the drain begins).
  std::atomic<bool> stop_requested_{false};
  /// Drain phase: workers finish their in-flight reply and exit; new
  /// connections are answered kUnavailable.
  std::atomic<bool> draining_{false};
  /// Hard-stop phase: listener and remaining sockets shut down.
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> active_{0};
  const Metrics* metrics_;

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace geosir::replication

#endif  // GEOSIR_REPLICATION_REPLICATION_SERVER_H_
