#include "video/video_base.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "core/similarity.h"

namespace geosir::video {

VideoBase::VideoBase(VideoBaseOptions options)
    : options_(std::move(options)), base_(options_.base) {}

uint32_t VideoBase::AddVideo(std::string name) {
  VideoEntry entry;
  entry.id = static_cast<uint32_t>(videos_.size());
  entry.name = std::move(name);
  videos_.push_back(std::move(entry));
  return videos_.back().id;
}

util::Result<uint32_t> VideoBase::AddFrame(
    uint32_t video, const std::vector<geom::Polyline>& shapes) {
  if (video >= videos_.size()) {
    return util::Status::OutOfRange("unknown video id");
  }
  if (finalized()) {
    return util::Status::FailedPrecondition("VideoBase is finalized");
  }
  const uint32_t frame = static_cast<uint32_t>(videos_[video].num_frames);
  for (const geom::Polyline& boundary : shapes) {
    auto id = base_.AddShape(boundary, /*image=*/core::kNoImage);
    if (!id.ok()) continue;  // Invalid boundaries are skipped.
    shape_video_.resize(*id + 1, 0);
    shape_frame_.resize(*id + 1, 0);
    shape_video_[*id] = video;
    shape_frame_[*id] = frame;
  }
  ++videos_[video].num_frames;
  return frame;
}

namespace {

/// Distance between two database shapes via their first normalized
/// copies (both true-diameter orientations of `b` against `a`).
double ShapeDistance(const core::ShapeBase& base, core::ShapeId a,
                     core::ShapeId b) {
  const auto& copies_a = base.CopiesOfShape(a);
  const auto& copies_b = base.CopiesOfShape(b);
  double best = std::numeric_limits<double>::infinity();
  const geom::Polyline& pa = base.copy(copies_a[0]).shape;
  for (size_t i = 0; i < copies_b.size() && i < 2; ++i) {
    const geom::Polyline& pb = base.copy(copies_b[i]).shape;
    best = std::min(best,
                    std::max(core::DiscreteAvgMinDistance(pa, pb),
                             core::DiscreteAvgMinDistance(pb, pa)));
  }
  return best;
}

}  // namespace

util::Status VideoBase::Finalize() {
  GEOSIR_RETURN_IF_ERROR(base_.Finalize());
  matcher_ = std::make_unique<core::EnvelopeMatcher>(&base_);

  // Group shapes by (video, frame).
  std::vector<std::vector<std::vector<core::ShapeId>>> frames(videos_.size());
  for (uint32_t v = 0; v < videos_.size(); ++v) {
    frames[v].resize(videos_[v].num_frames);
  }
  for (core::ShapeId s = 0; s < base_.NumShapes(); ++s) {
    frames[shape_video_[s]][shape_frame_[s]].push_back(s);
  }

  // Track linking: greedy best-first matching between consecutive
  // frames under the threshold.
  shape_track_.assign(base_.NumShapes(), -1);
  for (uint32_t v = 0; v < videos_.size(); ++v) {
    for (size_t f = 0; f + 1 < frames[v].size(); ++f) {
      const auto& cur = frames[v][f];
      const auto& nxt = frames[v][f + 1];
      struct Pair {
        double d;
        core::ShapeId a;
        core::ShapeId b;
      };
      std::vector<Pair> pairs;
      for (core::ShapeId a : cur) {
        for (core::ShapeId b : nxt) {
          const double d = ShapeDistance(base_, a, b);
          if (d <= options_.track_threshold) pairs.push_back(Pair{d, a, b});
        }
      }
      std::sort(pairs.begin(), pairs.end(),
                [](const Pair& x, const Pair& y) { return x.d < y.d; });
      std::unordered_map<core::ShapeId, bool> used_a, used_b;
      for (const Pair& pair : pairs) {
        if (used_a[pair.a] || used_b[pair.b]) continue;
        used_a[pair.a] = used_b[pair.b] = true;
        long track = shape_track_[pair.a];
        if (track < 0) {
          track = static_cast<long>(tracks_.size());
          ShapeTrack t;
          t.video = v;
          t.instances.push_back(
              FrameShapeRef{static_cast<uint32_t>(f), pair.a});
          tracks_.push_back(std::move(t));
          shape_track_[pair.a] = track;
        }
        tracks_[track].instances.push_back(
            FrameShapeRef{static_cast<uint32_t>(f + 1), pair.b});
        tracks_[track].mean_step_distance += pair.d;
        shape_track_[pair.b] = track;
      }
    }
  }
  // Singleton tracks for unlinked shapes, and step-distance averaging.
  for (core::ShapeId s = 0; s < base_.NumShapes(); ++s) {
    if (shape_track_[s] >= 0) continue;
    ShapeTrack t;
    t.video = shape_video_[s];
    t.instances.push_back(FrameShapeRef{shape_frame_[s], s});
    shape_track_[s] = static_cast<long>(tracks_.size());
    tracks_.push_back(std::move(t));
  }
  for (ShapeTrack& t : tracks_) {
    if (t.instances.size() > 1) {
      t.mean_step_distance /=
          static_cast<double>(t.instances.size() - 1);
    }
  }
  return util::Status::OK();
}

util::Result<std::vector<VideoMatch>> VideoBase::Query(
    const geom::Polyline& query, size_t k) {
  if (!finalized()) {
    return util::Status::FailedPrecondition("VideoBase not finalized");
  }
  core::MatchOptions options;
  options.k = std::max<size_t>(4 * k, 16);  // Shapes, before video dedupe.
  GEOSIR_ASSIGN_OR_RETURN(std::vector<core::MatchResult> shapes,
                          matcher_->Match(query, options));
  std::unordered_map<uint32_t, VideoMatch> best;
  for (const core::MatchResult& m : shapes) {
    const long track = shape_track_[m.shape_id];
    if (track < 0) continue;
    const ShapeTrack& t = tracks_[track];
    auto [it, inserted] = best.try_emplace(
        t.video, VideoMatch{t.video, static_cast<uint32_t>(track),
                            m.distance, t.length()});
    if (!inserted && m.distance < it->second.distance) {
      it->second = VideoMatch{t.video, static_cast<uint32_t>(track),
                              m.distance, t.length()};
    }
  }
  std::vector<VideoMatch> results;
  results.reserve(best.size());
  for (const auto& [id, match] : best) results.push_back(match);
  std::sort(results.begin(), results.end(),
            [](const VideoMatch& a, const VideoMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.video < b.video;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace geosir::video
