#ifndef GEOSIR_VIDEO_VIDEO_BASE_H_
#define GEOSIR_VIDEO_VIDEO_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "util/status.h"

namespace geosir::video {

/// EXTENSION (the paper's stated future work, Section 7: "We are
/// currently incorporating our method in a video retrieval system").
/// A video base stores shapes extracted frame by frame, links instances
/// of the same object across consecutive frames into *tracks* using the
/// geometric-similarity measure, and answers shape queries with videos
/// ranked by their best-matching track.

/// One shape occurrence inside a video.
struct FrameShapeRef {
  uint32_t frame = 0;           // Frame index within the video.
  core::ShapeId shape = 0;      // Shape id in the underlying ShapeBase.
};

/// A tracked object: the same boundary followed through consecutive
/// frames.
struct ShapeTrack {
  uint32_t video = 0;
  std::vector<FrameShapeRef> instances;  // Ordered by frame.
  /// Mean similarity distance between consecutive instances — a
  /// stability score (0 = rigidly repeated boundary).
  double mean_step_distance = 0.0;

  size_t length() const { return instances.size(); }
};

struct VideoEntry {
  uint32_t id = 0;
  std::string name;
  size_t num_frames = 0;
};

struct VideoMatch {
  uint32_t video = 0;
  uint32_t track = 0;     // Index into tracks().
  double distance = 0.0;  // Best instance distance to the query.
  size_t track_length = 0;
};

struct VideoBaseOptions {
  core::ShapeBaseOptions base;
  /// Two shapes in consecutive frames are linked into the same track
  /// when their symmetric average distance (on normalized copies) is at
  /// most this.
  double track_threshold = 0.05;
};

/// Build-then-query video store.
class VideoBase {
 public:
  explicit VideoBase(VideoBaseOptions options = {});

  /// Registers a new (empty) video; frames are appended in order.
  uint32_t AddVideo(std::string name = "");

  /// Appends a frame to `video` with the object boundaries visible in
  /// it. Returns the frame index. Invalid shapes are skipped.
  util::Result<uint32_t> AddFrame(uint32_t video,
                                  const std::vector<geom::Polyline>& shapes);

  /// Finalizes the shape base and links tracks.
  util::Status Finalize();
  bool finalized() const { return base_.finalized(); }

  /// k best videos for the query shape: each video is ranked by its best
  /// matching track instance; one result per video.
  util::Result<std::vector<VideoMatch>> Query(const geom::Polyline& query,
                                              size_t k = 1);

  const core::ShapeBase& shape_base() const { return base_; }
  size_t NumVideos() const { return videos_.size(); }
  const VideoEntry& video(uint32_t id) const { return videos_[id]; }
  const std::vector<ShapeTrack>& tracks() const { return tracks_; }
  /// Track that contains `shape`, or -1.
  long TrackOfShape(core::ShapeId shape) const {
    return shape_track_[shape];
  }

 private:
  VideoBaseOptions options_;
  core::ShapeBase base_;
  std::vector<VideoEntry> videos_;
  /// Per shape: (video, frame).
  std::vector<uint32_t> shape_video_;
  std::vector<uint32_t> shape_frame_;
  std::vector<ShapeTrack> tracks_;
  std::vector<long> shape_track_;
  std::unique_ptr<core::EnvelopeMatcher> matcher_;
};

}  // namespace geosir::video

#endif  // GEOSIR_VIDEO_VIDEO_BASE_H_
