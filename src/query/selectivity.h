#ifndef GEOSIR_QUERY_SELECTIVITY_H_
#define GEOSIR_QUERY_SELECTIVITY_H_

#include "geom/polyline.h"

namespace geosir::query {

/// The number of "significant" vertices of a query shape (Section 5.2):
///
///   V_S(Q) = 1/2 * sum_i [ (pi - a_i) a_i 4/pi^2
///                          + (l_{(i-1) mod V} + l_i) / 2 ]
///
/// where a_i in [0, pi] is the angle at vertex i and l_i the length of
/// the i-th edge of the shape *normalized about its diameter* (so edge
/// lengths are in diameter units). Each vertex contributes a term in
/// [0, 1]: 1 is attained at a right angle with diameter-length edges;
/// degenerate vertices (angle 0 or pi, or vanishing edges) contribute
/// little. Open polylines treat the missing edge at each endpoint as
/// length 0 and the endpoint angle as pi (degenerate).
///
/// The shape is normalized internally; callers pass original coordinates.
double SignificantVertices(const geom::Polyline& query);

/// The hyperbolic selectivity law of Section 5.2:
///   |shape_similar(Q)| ~= c / V_S(Q),
/// with c adapted statistically every time a query executes.
class SelectivityModel {
 public:
  /// `initial_c` seeds the constant before any observation.
  explicit SelectivityModel(double initial_c = 1.0)
      : c_(initial_c) {}

  /// Estimated result size for a query with significant-vertex count vs.
  double Estimate(double vs) const { return c_ / std::max(vs, 1e-9); }

  /// Records an executed query: its vs and the actual result size. The
  /// constant is updated as a running mean of result_size * vs.
  void Observe(double vs, size_t result_size);

  double c() const { return c_; }
  size_t observations() const { return observations_; }

 private:
  double c_;
  size_t observations_ = 0;
};

}  // namespace geosir::query

#endif  // GEOSIR_QUERY_SELECTIVITY_H_
