#include "query/parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace geosir::query {

namespace {

class Parser {
 public:
  Parser(const std::string& text,
         const std::map<std::string, geom::Polyline>& shapes)
      : text_(text), shapes_(shapes) {}

  util::Result<QueryPtr> Parse() {
    GEOSIR_ASSIGN_OR_RETURN(QueryPtr root, ParseUnion());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing characters");
    }
    return root;
  }

 private:
  util::Status Err(const std::string& what) const {
    return util::Status::InvalidArgument("query parse error at position " +
                                         std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ReadIdentifier() {
    SkipSpace();
    std::string id;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      id.push_back(text_[pos_++]);
    }
    return id;
  }

  util::Result<QueryPtr> ParseUnion() {
    GEOSIR_ASSIGN_OR_RETURN(QueryPtr left, ParseIntersection());
    while (Consume('|')) {
      GEOSIR_ASSIGN_OR_RETURN(QueryPtr right, ParseIntersection());
      left = Union(std::move(left), std::move(right));
    }
    return left;
  }

  util::Result<QueryPtr> ParseIntersection() {
    GEOSIR_ASSIGN_OR_RETURN(QueryPtr left, ParseFactor());
    while (Consume('&')) {
      GEOSIR_ASSIGN_OR_RETURN(QueryPtr right, ParseFactor());
      left = Intersect(std::move(left), std::move(right));
    }
    return left;
  }

  util::Result<QueryPtr> ParseFactor() {
    if (Consume('~')) {
      GEOSIR_ASSIGN_OR_RETURN(QueryPtr inner, ParseFactor());
      return Complement(std::move(inner));
    }
    if (Consume('(')) {
      GEOSIR_ASSIGN_OR_RETURN(QueryPtr inner, ParseUnion());
      if (!Consume(')')) return Err("expected ')'");
      return inner;
    }
    return ParseOperator();
  }

  util::Result<geom::Polyline> LookupShape() {
    const std::string name = ReadIdentifier();
    if (name.empty()) return Err("expected shape name");
    const auto it = shapes_.find(name);
    if (it == shapes_.end()) {
      return util::Status::NotFound("unknown shape name: " + name);
    }
    return it->second;
  }

  util::Result<QueryPtr> ParseOperator() {
    const std::string op = ReadIdentifier();
    if (op.empty()) return Err("expected operator");
    if (!Consume('(')) return Err("expected '(' after operator");
    if (op == "similar") {
      GEOSIR_ASSIGN_OR_RETURN(geom::Polyline q, LookupShape());
      if (!Consume(')')) return Err("expected ')'");
      return Similar(std::move(q));
    }
    Relation relation;
    if (op == "contain") {
      relation = Relation::kContain;
    } else if (op == "overlap") {
      relation = Relation::kOverlap;
    } else if (op == "disjoint") {
      relation = Relation::kDisjoint;
    } else {
      return Err("unknown operator: " + op);
    }
    GEOSIR_ASSIGN_OR_RETURN(geom::Polyline q1, LookupShape());
    if (!Consume(',')) return Err("expected ','");
    GEOSIR_ASSIGN_OR_RETURN(geom::Polyline q2, LookupShape());
    std::optional<double> theta;
    if (Consume(',')) {
      SkipSpace();
      if (text_.compare(pos_, 3, "any") == 0) {
        pos_ += 3;
      } else {
        char* end = nullptr;
        const double value = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_) return Err("expected angle or 'any'");
        // strtod happily parses "inf"/"nan"; a non-finite angle would
        // poison every circular comparison downstream.
        if (!std::isfinite(value)) return Err("angle must be finite");
        pos_ = static_cast<size_t>(end - text_.c_str());
        theta = value;
      }
    }
    if (!Consume(')')) return Err("expected ')'");
    return Topological(relation, std::move(q1), std::move(q2), theta);
  }

  const std::string& text_;
  const std::map<std::string, geom::Polyline>& shapes_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<QueryPtr> ParseQuery(
    const std::string& text,
    const std::map<std::string, geom::Polyline>& shapes) {
  return Parser(text, shapes).Parse();
}

}  // namespace geosir::query
