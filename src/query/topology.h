#ifndef GEOSIR_QUERY_TOPOLOGY_H_
#define GEOSIR_QUERY_TOPOLOGY_H_

#include <vector>

#include "core/shape.h"

namespace geosir::query {

/// Pairwise shape relations of Section 5. Disjoint pairs carry no edge in
/// the per-image graph; `kDisjoint` exists for operator specs.
enum class Relation {
  kContain,
  kOverlap,
  kDisjoint,
};

const char* RelationName(Relation r);

/// A labeled edge of the per-image graph G_I: `from` relates to `to`
/// under `label`, and `angle` is the signed angle (radians, in (-pi, pi])
/// between the two shapes' diameters — the theta of the topological
/// predicates g_r(S1, S2, theta).
struct TopologyEdge {
  core::ShapeId from = 0;
  core::ShapeId to = 0;
  Relation label = Relation::kOverlap;
  double angle = 0.0;
};

/// The directed graph G_I = (V_I, E_I) of one image: contain edges point
/// from container to contained; overlap edges are stored in both
/// directions (the relation is symmetric).
class TopologyGraph {
 public:
  /// Builds the graph for the given shapes (all from the same image).
  /// `boundaries[i]` is the original-coordinate geometry of `ids[i]`.
  static TopologyGraph Build(const std::vector<core::ShapeId>& ids,
                             const std::vector<const geom::Polyline*>&
                                 boundaries);

  const std::vector<TopologyEdge>& edges() const { return edges_; }
  /// Edges leaving `from`.
  std::vector<TopologyEdge> EdgesFrom(core::ShapeId from) const;
  /// The relation between an ordered pair (computed edges only; returns
  /// kDisjoint when no edge connects them).
  Relation RelationBetween(core::ShapeId from, core::ShapeId to) const;

 private:
  std::vector<TopologyEdge> edges_;
};

/// Direction of a shape's diameter in original coordinates (unit vector
/// from the first diameter endpoint to the second). This equals applying
/// the inverse normalization transform to the vector ((0,0),(1,0)) as
/// Section 5.3 prescribes.
geom::Point DiameterDirection(const geom::Polyline& boundary);

/// Signed angle in (-pi, pi] between the diameters of two shapes.
double DiameterAngle(const geom::Polyline& a, const geom::Polyline& b);

/// Whether two shapes (closed or open) satisfy `r`; `kContain` means `a`
/// contains `b`. Open polylines can overlap (boundary intersection) and
/// be contained in closed polygons, but cannot contain anything.
bool TestRelation(Relation r, const geom::Polyline& a,
                  const geom::Polyline& b);

}  // namespace geosir::query

#endif  // GEOSIR_QUERY_TOPOLOGY_H_
