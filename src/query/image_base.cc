#include "query/image_base.h"

namespace geosir::query {

ImageBase::ImageBase(core::ShapeBaseOptions options)
    : base_(std::move(options)) {}

util::Result<core::ImageId> ImageBase::AddImage(
    const std::vector<geom::Polyline>& boundaries, std::string name,
    size_t* skipped) {
  if (finalized()) {
    return util::Status::FailedPrecondition("ImageBase is finalized");
  }
  ImageEntry entry;
  entry.id = static_cast<core::ImageId>(images_.size());
  entry.name = std::move(name);
  size_t failures = 0;
  for (const geom::Polyline& boundary : boundaries) {
    auto id = base_.AddShape(boundary, entry.id);
    if (!id.ok()) {
      ++failures;
      continue;
    }
    entry.shapes.push_back(*id);
  }
  if (skipped != nullptr) *skipped = failures;
  images_.push_back(std::move(entry));
  return images_.back().id;
}

util::Status ImageBase::Finalize() {
  GEOSIR_RETURN_IF_ERROR(base_.Finalize());
  graphs_.reserve(images_.size());
  for (const ImageEntry& entry : images_) {
    std::vector<const geom::Polyline*> boundaries;
    boundaries.reserve(entry.shapes.size());
    for (core::ShapeId id : entry.shapes) {
      boundaries.push_back(&base_.shape(id).boundary);
    }
    graphs_.push_back(TopologyGraph::Build(entry.shapes, boundaries));
  }
  return util::Status::OK();
}

}  // namespace geosir::query
