#include "query/operators.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/normalize.h"
#include "core/similarity.h"
#include "util/query_control.h"

namespace geosir::query {

namespace {

ImageSet SortedUnique(ImageSet set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

}  // namespace

ImageSet SetUnion(const ImageSet& a, const ImageSet& b) {
  ImageSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

ImageSet SetIntersection(const ImageSet& a, const ImageSet& b) {
  ImageSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

ImageSet SetDifference(const ImageSet& a, const ImageSet& b) {
  ImageSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

QueryContext::QueryContext(const ImageBase* base, QueryContextOptions options)
    : base_(base),
      options_(std::move(options)),
      matcher_(&base->shape_base()) {}

uint64_t QueryContext::HashPolyline(const geom::Polyline& q) {
  uint64_t h = q.closed() ? 0x9e3779b97f4a7c15ull : 0x517cc1b727220a95ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (geom::Point p : q.vertices()) {
    uint64_t bits;
    std::memcpy(&bits, &p.x, sizeof(bits));
    mix(bits);
    std::memcpy(&bits, &p.y, sizeof(bits));
    mix(bits);
  }
  return h;
}

util::Status QueryContext::CheckLifecycle() const {
  return util::QueryControl{options_.match.deadline,
                            options_.match.cancel_token}
      .Check();
}

util::Result<std::vector<core::MatchResult>> QueryContext::ShapeSimilar(
    const geom::Polyline& q) {
  const uint64_t key = HashPolyline(q);
  auto it = similar_cache_.find(key);
  if (it != similar_cache_.end()) {
    ++stats_.similar_cache_hits;
    return it->second.shapes;
  }
  GEOSIR_RETURN_IF_ERROR(CheckLifecycle());
  ++stats_.similar_evaluations;
  core::MatchOptions opts = options_.match;
  opts.collect_threshold = options_.similar_threshold;
  core::MatchStats match_stats;
  // Tiered retrieval: with a prefilter configured, collect-threshold
  // scoring runs over its candidate set only; recall becomes the
  // source's. Without one, the exact envelope search stands.
  auto matched =
      options_.prefilter != nullptr
          ? matcher_.MatchCandidates(q, options_.prefilter, opts, &match_stats)
          : matcher_.Match(q, opts, &match_stats);
  if (options_.prefilter != nullptr) {
    stats_.prefilter_candidates += match_stats.candidates_evaluated +
                                   match_stats.candidates_skipped;
  }
  if (!matched.ok()) return matched.status();
  if (match_stats.partial) {
    // An incomplete shape_similar set would poison the cache and silently
    // shrink every operator built on it: surface the stop instead.
    return match_stats.termination;
  }
  std::vector<core::MatchResult> shapes = *std::move(matched);

  CachedSimilar cached;
  cached.shapes = shapes;
  cached.member.assign(base_->shape_base().NumShapes(), 0);
  for (const core::MatchResult& r : shapes) {
    cached.member[r.shape_id] = 1;
    const core::ImageId image = base_->shape_base().shape(r.shape_id).image;
    if (image != core::kNoImage) cached.images.push_back(image);
  }
  cached.images = SortedUnique(std::move(cached.images));
  // Feed the adaptive selectivity model (Section 5.2).
  selectivity_.Observe(SignificantVertices(q), shapes.size());
  similar_cache_.emplace(key, std::move(cached));
  return shapes;
}

util::Result<ImageSet> QueryContext::EvalSimilar(const geom::Polyline& q) {
  GEOSIR_ASSIGN_OR_RETURN(std::vector<core::MatchResult> shapes,
                          ShapeSimilar(q));
  (void)shapes;
  return similar_cache_.at(HashPolyline(q)).images;
}

bool QueryContext::GSimilar(core::ShapeId shape,
                            const core::NormalizedCopy& qnorm) {
  ++stats_.pair_checks;
  const core::ShapeBase& base = base_->shape_base();
  // Best over all of the shape's normalized copies — the same per-shape
  // minimum the matcher reports, so both execution strategies apply the
  // same g_similar predicate.
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t copy_idx : base.CopiesOfShape(shape)) {
    best = std::min(best, core::AvgMinDistanceSymmetric(
                              base.copy(copy_idx).shape, qnorm.shape,
                              options_.match.similarity));
    if (best <= options_.similar_threshold) return true;
  }
  return best <= options_.similar_threshold;
}

bool QueryContext::AngleMatches(double angle,
                                std::optional<double> theta) const {
  if (!theta.has_value()) return true;
  // Compare on the circle; diameters are undirected so a pi flip also
  // counts.
  const auto circ_diff = [](double a, double b) {
    double d = std::fabs(a - b);
    while (d > 2 * M_PI) d -= 2 * M_PI;
    return std::min(d, 2 * M_PI - d);
  };
  const double d1 = circ_diff(angle, *theta);
  const double d2 = circ_diff(angle + M_PI, *theta);
  return std::min(d1, d2) <= options_.angle_tolerance;
}

util::Result<ImageSet> QueryContext::EvalTopological(
    Relation r, const geom::Polyline& q1, const geom::Polyline& q2,
    std::optional<double> theta, TopoStrategy strategy) {
  if (strategy == TopoStrategy::kAuto) strategy = options_.strategy;
  if (strategy == TopoStrategy::kAuto) {
    // Strategy 1 wins when one side is clearly more selective; strategy 2
    // amortizes when both sets are needed anyway (e.g. both cached).
    const double est1 = selectivity_.Estimate(SignificantVertices(q1));
    const double est2 = selectivity_.Estimate(SignificantVertices(q2));
    strategy = (std::min(est1, est2) * 4.0 < std::max(est1, est2))
                   ? TopoStrategy::kDriveSmaller
                   : TopoStrategy::kIntersectImages;
  }

  // Orient so Q2 denotes the more selective side (paper's convention:
  // drive from the smaller set).
  const bool swap =
      selectivity_.Estimate(SignificantVertices(q2)) >
      selectivity_.Estimate(SignificantVertices(q1));
  const geom::Polyline& drive_q = swap ? q1 : q2;
  const geom::Polyline& other_q = swap ? q2 : q1;
  // With swapped queries the edge direction to test also flips: we need
  // g_r(S1, S2) where S1 ~ q1 and S2 ~ q2.

  ImageSet result;
  if (strategy == TopoStrategy::kDriveSmaller) {
    GEOSIR_ASSIGN_OR_RETURN(std::vector<core::MatchResult> driven,
                            ShapeSimilar(drive_q));
    GEOSIR_ASSIGN_OR_RETURN(core::NormalizedCopy other_norm,
                            core::NormalizeQuery(other_q));
    for (const core::MatchResult& m : driven) {
      // Per-driven-shape checkpoint: each iteration may scan an image's
      // edges and run direct g_similar integrals.
      GEOSIR_RETURN_IF_ERROR(CheckLifecycle());
      const core::ImageId image = base_->shape_base().shape(m.shape_id).image;
      if (image == core::kNoImage) continue;
      const ImageEntry& entry = base_->image(image);
      if (r == Relation::kDisjoint) {
        // No edges exist for disjoint pairs: scan the image's shapes and
        // test non-adjacency plus the angle.
        const TopologyGraph& graph = base_->topology(image);
        for (core::ShapeId other : entry.shapes) {
          if (other == m.shape_id) continue;
          ++stats_.edges_scanned;
          if (graph.RelationBetween(m.shape_id, other) !=
                  Relation::kDisjoint ||
              graph.RelationBetween(other, m.shape_id) !=
                  Relation::kDisjoint) {
            continue;
          }
          const double angle = DiameterAngle(
              base_->shape_base().shape(swap ? m.shape_id : other).boundary,
              base_->shape_base().shape(swap ? other : m.shape_id).boundary);
          if (!AngleMatches(angle, theta)) continue;
          if (GSimilar(other, other_norm)) {
            result.push_back(image);
            break;
          }
        }
        continue;
      }
      // Contain/overlap: the driven shape plays S2 (or S1 when swapped).
      for (const TopologyEdge& e : base_->topology(image).edges()) {
        ++stats_.edges_scanned;
        if (e.label != r) continue;
        // Need S1 -r-> S2 with S_drive matching the driven side.
        const core::ShapeId s1 = e.from;
        const core::ShapeId s2 = e.to;
        const core::ShapeId drive_role = swap ? s1 : s2;
        const core::ShapeId other_role = swap ? s2 : s1;
        if (drive_role != m.shape_id) continue;
        if (!AngleMatches(e.angle, theta)) continue;
        if (GSimilar(other_role, other_norm)) {
          result.push_back(image);
          break;
        }
      }
    }
    return SortedUnique(std::move(result));
  }

  // Strategy 2: both sets, image intersection, then edge membership.
  GEOSIR_ASSIGN_OR_RETURN(std::vector<core::MatchResult> sim1,
                          ShapeSimilar(q1));
  GEOSIR_ASSIGN_OR_RETURN(std::vector<core::MatchResult> sim2,
                          ShapeSimilar(q2));
  const CachedSimilar& c1 = similar_cache_.at(HashPolyline(q1));
  const CachedSimilar& c2 = similar_cache_.at(HashPolyline(q2));
  const ImageSet both = SetIntersection(c1.images, c2.images);
  (void)sim2;

  for (const core::MatchResult& m : sim1) {
    GEOSIR_RETURN_IF_ERROR(CheckLifecycle());
    const core::ImageId image = base_->shape_base().shape(m.shape_id).image;
    if (image == core::kNoImage ||
        !std::binary_search(both.begin(), both.end(), image)) {
      continue;
    }
    const ImageEntry& entry = base_->image(image);
    const TopologyGraph& graph = base_->topology(image);
    if (r == Relation::kDisjoint) {
      for (core::ShapeId other : entry.shapes) {
        if (other == m.shape_id) continue;
        ++stats_.edges_scanned;
        if (!c2.member[other]) continue;
        if (graph.RelationBetween(m.shape_id, other) != Relation::kDisjoint ||
            graph.RelationBetween(other, m.shape_id) != Relation::kDisjoint) {
          continue;
        }
        ++stats_.pair_checks;
        const double angle =
            DiameterAngle(base_->shape_base().shape(m.shape_id).boundary,
                          base_->shape_base().shape(other).boundary);
        if (AngleMatches(angle, theta)) {
          result.push_back(image);
          break;
        }
      }
      continue;
    }
    for (const TopologyEdge& e : graph.edges()) {
      ++stats_.edges_scanned;
      if (e.label != r || e.from != m.shape_id) continue;
      if (!c2.member[e.to]) continue;
      if (AngleMatches(e.angle, theta)) {
        result.push_back(image);
        break;
      }
    }
  }
  return SortedUnique(std::move(result));
}

ImageSet QueryContext::AllImages() const {
  ImageSet all;
  all.reserve(base_->NumImages());
  for (const ImageEntry& entry : base_->images()) all.push_back(entry.id);
  return all;
}

}  // namespace geosir::query
