#include "query/planner.h"

#include <algorithm>
#include <sstream>

#include "query/selectivity.h"

namespace geosir::query {

namespace {

/// Estimated result size of a leaf operator. Complemented factors are
/// assigned the complement's size, which pushes them to the end of the
/// evaluation order.
double EstimateFactor(const DnfFactor& factor, QueryContext* context) {
  const QueryNode& op = *factor.op;
  double estimate;
  if (op.kind == NodeKind::kSimilar) {
    estimate = context->selectivity()->Estimate(SignificantVertices(op.q1));
  } else {
    // min of the two sides (Section 5.4).
    estimate = std::min(
        context->selectivity()->Estimate(SignificantVertices(op.q1)),
        context->selectivity()->Estimate(SignificantVertices(op.q2)));
  }
  if (factor.complemented) {
    const double total =
        static_cast<double>(context->image_base().NumImages());
    estimate = std::max(0.0, total - estimate);
  }
  return estimate;
}

util::Result<ImageSet> EvaluateFactorSet(const DnfFactor& factor,
                                         QueryContext* context) {
  const QueryNode& op = *factor.op;
  ImageSet set;
  if (op.kind == NodeKind::kSimilar) {
    GEOSIR_ASSIGN_OR_RETURN(set, context->EvalSimilar(op.q1));
  } else {
    GEOSIR_ASSIGN_OR_RETURN(
        set, context->EvalTopological(op.relation, op.q1, op.q2, op.theta));
  }
  if (factor.complemented) {
    return SetDifference(context->AllImages(), set);
  }
  return set;
}

}  // namespace

util::Result<ImageSet> ExecuteQuery(const QueryNode& root,
                                    QueryContext* context,
                                    const PlanOptions& options,
                                    PlanExplanation* explanation) {
  GEOSIR_ASSIGN_OR_RETURN(Dnf dnf, ToDnf(root));

  std::ostringstream plan_text;
  size_t num_factors = 0;

  ImageSet result;
  for (size_t t = 0; t < dnf.terms.size(); ++t) {
    DnfTerm& term = dnf.terms[t];
    num_factors += term.factors.size();
    if (options.order_by_selectivity) {
      std::stable_sort(term.factors.begin(), term.factors.end(),
                       [context](const DnfFactor& a, const DnfFactor& b) {
                         return EstimateFactor(a, context) <
                                EstimateFactor(b, context);
                       });
    }
    if (explanation != nullptr) {
      plan_text << "term " << t << ":";
      for (const DnfFactor& f : term.factors) {
        plan_text << " " << (f.complemented ? "~" : "") << ToString(*f.op);
      }
      plan_text << "\n";
    }

    ImageSet term_result;
    bool first = true;
    for (const DnfFactor& factor : term.factors) {
      // Lifecycle checkpoint between factors: a query past its deadline
      // (or cancelled) fails with the stop status rather than returning a
      // silently incomplete image set — DNF results are exact or absent.
      GEOSIR_RETURN_IF_ERROR(context->CheckLifecycle());
      GEOSIR_ASSIGN_OR_RETURN(ImageSet factor_set,
                              EvaluateFactorSet(factor, context));
      if (first) {
        term_result = std::move(factor_set);
        first = false;
      } else {
        term_result = SetIntersection(term_result, factor_set);
      }
      if (term_result.empty()) break;  // Short-circuit.
    }
    result = SetUnion(result, term_result);
  }

  if (explanation != nullptr) {
    explanation->text = plan_text.str();
    explanation->num_terms = dnf.terms.size();
    explanation->num_factors = num_factors;
  }
  return result;
}

}  // namespace geosir::query
