#include "query/ast.h"

#include <sstream>

namespace geosir::query {

QueryPtr QueryNode::Clone() const {
  auto node = std::make_unique<QueryNode>();
  node->kind = kind;
  node->q1 = q1;
  node->q2 = q2;
  node->relation = relation;
  node->theta = theta;
  node->children.reserve(children.size());
  for (const QueryPtr& child : children) {
    node->children.push_back(child->Clone());
  }
  return node;
}

QueryPtr Similar(geom::Polyline q) {
  auto node = std::make_unique<QueryNode>();
  node->kind = NodeKind::kSimilar;
  node->q1 = std::move(q);
  return node;
}

QueryPtr Topological(Relation r, geom::Polyline q1, geom::Polyline q2,
                     std::optional<double> theta) {
  auto node = std::make_unique<QueryNode>();
  node->kind = NodeKind::kTopological;
  node->relation = r;
  node->q1 = std::move(q1);
  node->q2 = std::move(q2);
  node->theta = theta;
  return node;
}

namespace {

QueryPtr Combine(NodeKind kind, QueryPtr a, QueryPtr b) {
  auto node = std::make_unique<QueryNode>();
  node->kind = kind;
  // Flatten nested nodes of the same kind for readability.
  const auto absorb = [&node, kind](QueryPtr src) {
    if (src->kind == kind) {
      for (QueryPtr& child : src->children) {
        node->children.push_back(std::move(child));
      }
    } else {
      node->children.push_back(std::move(src));
    }
  };
  absorb(std::move(a));
  absorb(std::move(b));
  return node;
}

}  // namespace

QueryPtr Union(QueryPtr a, QueryPtr b) {
  return Combine(NodeKind::kUnion, std::move(a), std::move(b));
}

QueryPtr Intersect(QueryPtr a, QueryPtr b) {
  return Combine(NodeKind::kIntersection, std::move(a), std::move(b));
}

QueryPtr Complement(QueryPtr a) {
  auto node = std::make_unique<QueryNode>();
  node->kind = NodeKind::kComplement;
  node->children.push_back(std::move(a));
  return node;
}

namespace {

void Render(const QueryNode& node, std::ostringstream* out) {
  switch (node.kind) {
    case NodeKind::kSimilar:
      *out << "similar(#" << node.q1.size() << "v)";
      return;
    case NodeKind::kTopological:
      *out << RelationName(node.relation) << "(#" << node.q1.size() << "v, #"
           << node.q2.size() << "v, ";
      if (node.theta.has_value()) {
        *out << *node.theta;
      } else {
        *out << "any";
      }
      *out << ")";
      return;
    case NodeKind::kComplement:
      *out << "~";
      Render(*node.children[0], out);
      return;
    case NodeKind::kUnion:
    case NodeKind::kIntersection: {
      const char* sep = node.kind == NodeKind::kUnion ? " | " : " & ";
      *out << "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) *out << sep;
        Render(*node.children[i], out);
      }
      *out << ")";
      return;
    }
  }
}

}  // namespace

std::string ToString(const QueryNode& node) {
  std::ostringstream out;
  Render(node, &out);
  return out.str();
}

namespace {

util::Status BuildDnf(const QueryNode& node, bool negated, Dnf* dnf,
                      std::vector<DnfTerm>* out) {
  switch (node.kind) {
    case NodeKind::kSimilar:
    case NodeKind::kTopological: {
      dnf->leaf_storage.push_back(node.Clone());
      DnfTerm term;
      term.factors.push_back(
          DnfFactor{negated, dnf->leaf_storage.back().get()});
      out->push_back(std::move(term));
      return util::Status::OK();
    }
    case NodeKind::kComplement:
      if (node.children.size() != 1) {
        return util::Status::InvalidArgument(
            "complement must have exactly one child");
      }
      return BuildDnf(*node.children[0], !negated, dnf, out);
    case NodeKind::kUnion:
    case NodeKind::kIntersection: {
      if (node.children.empty()) {
        return util::Status::InvalidArgument("empty union/intersection");
      }
      // Under negation, union and intersection swap (De Morgan).
      const bool acts_as_union =
          (node.kind == NodeKind::kUnion) != negated;
      if (acts_as_union) {
        for (const QueryPtr& child : node.children) {
          GEOSIR_RETURN_IF_ERROR(BuildDnf(*child, negated, dnf, out));
        }
        return util::Status::OK();
      }
      // Intersection: cross-product of the children's term lists.
      std::vector<DnfTerm> acc{DnfTerm{}};
      for (const QueryPtr& child : node.children) {
        std::vector<DnfTerm> child_terms;
        GEOSIR_RETURN_IF_ERROR(BuildDnf(*child, negated, dnf, &child_terms));
        std::vector<DnfTerm> next;
        next.reserve(acc.size() * child_terms.size());
        for (const DnfTerm& left : acc) {
          for (const DnfTerm& right : child_terms) {
            DnfTerm merged = left;
            merged.factors.insert(merged.factors.end(),
                                  right.factors.begin(),
                                  right.factors.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      for (DnfTerm& term : acc) out->push_back(std::move(term));
      return util::Status::OK();
    }
  }
  return util::Status::Internal("unknown node kind");
}

}  // namespace

util::Result<Dnf> ToDnf(const QueryNode& root) {
  Dnf dnf;
  GEOSIR_RETURN_IF_ERROR(BuildDnf(root, /*negated=*/false, &dnf, &dnf.terms));
  return dnf;
}

}  // namespace geosir::query
