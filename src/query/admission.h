#ifndef GEOSIR_QUERY_ADMISSION_H_
#define GEOSIR_QUERY_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/envelope_matcher.h"
#include "util/deadline.h"
#include "util/status.h"

namespace geosir::query {

/// Overload policy for the admission controller.
struct AdmissionOptions {
  /// Queries allowed to run concurrently (the semaphore width). Each
  /// admitted MatchBatch may itself fan out over a thread pool, so this
  /// bounds *batches in flight*, not threads.
  size_t max_concurrent = 4;
  /// Callers allowed to wait beyond that; arrivals past the bound are
  /// shed immediately with kUnavailable (retriable — the standard
  /// try-again-later signal, see util::IsRetriable).
  size_t max_queued = 16;
  /// Longest a caller may sit in the queue before being shed with
  /// kUnavailable; <= 0 waits indefinitely (the caller's own deadline
  /// still applies). Shedding waiters instead of letting them pile up is
  /// what keeps tail latency bounded under sustained overload.
  int64_t queue_timeout_ms = 1000;
};

/// Counters (monotonic except the two gauges).
struct AdmissionStats {
  size_t admitted = 0;
  size_t shed_queue_full = 0;   // Rejected at arrival, queue at capacity.
  size_t shed_timeout = 0;      // Gave up after queue_timeout_ms.
  size_t shed_expired = 0;      // Caller's own deadline expired waiting.
  size_t inflight = 0;          // Gauge: tickets currently held.
  size_t queued = 0;            // Gauge: callers currently waiting.
  size_t peak_queued = 0;
};

/// A counting-semaphore admission controller with a bounded FIFO wait
/// queue and queue-timeout shedding: the overload valve in front of
/// MatchBatch. Under a burst, max_concurrent batches run, max_queued
/// callers wait (strictly first-come-first-served — no barging), and
/// everyone else is turned away *fast* with a retriable error instead of
/// stacking up behind a convoy. Thread-safe; the controller must outlive
/// its tickets.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Move-only RAII admission slot: releasing (destruction) wakes the
  /// next waiter. An empty ticket (default-constructed or moved-from)
  /// releases nothing.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool valid() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    void Release();
    AdmissionController* controller_ = nullptr;
  };

  /// Blocks until a slot is free (FIFO order), then returns the ticket.
  /// Fails with:
  ///  * kUnavailable    — queue full on arrival, or queue_timeout_ms
  ///                      elapsed while waiting (both retriable);
  ///  * kDeadlineExceeded — `deadline` expired before admission (on
  ///                      arrival or in the queue). Pass the query's own
  ///                      deadline so a caller never queues past the
  ///                      point where running has become pointless.
  util::Result<Ticket> Admit(util::Deadline deadline = {});

  /// Consistent snapshot of the counters.
  AdmissionStats stats() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  void Release();

  const AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  uint64_t next_waiter_ = 0;
  std::deque<uint64_t> waiters_;  // FIFO of waiting callers' ids.
  AdmissionStats stats_;
};

/// MatchBatch behind the admission valve: admits under `controller` (using
/// options.deadline as the queue deadline), runs core::MatchBatch, and
/// releases the slot when the batch finishes. Shed or expired calls
/// return the admission error without touching the base; per-query
/// lifecycle behavior inside an admitted batch is core::MatchBatch's
/// (partial results + stats[i].termination).
util::Result<std::vector<std::vector<core::MatchResult>>> AdmittedMatchBatch(
    AdmissionController* controller, const core::ShapeBase& base,
    const std::vector<geom::Polyline>& queries,
    const core::MatchOptions& options = {},
    std::vector<core::MatchStats>* stats = nullptr);

}  // namespace geosir::query

#endif  // GEOSIR_QUERY_ADMISSION_H_
