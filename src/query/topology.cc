#include "query/topology.h"

#include <cmath>

#include "geom/diameter.h"
#include "geom/predicates.h"

namespace geosir::query {

using geom::Polyline;

const char* RelationName(Relation r) {
  switch (r) {
    case Relation::kContain:
      return "contain";
    case Relation::kOverlap:
      return "overlap";
    case Relation::kDisjoint:
      return "disjoint";
  }
  return "unknown";
}

geom::Point DiameterDirection(const Polyline& boundary) {
  const geom::VertexPair d = geom::Diameter(boundary.vertices());
  return (boundary.vertex(d.j) - boundary.vertex(d.i)).Normalized();
}

double DiameterAngle(const Polyline& a, const Polyline& b) {
  const geom::Point da = DiameterDirection(a);
  const geom::Point db = DiameterDirection(b);
  return std::atan2(da.Cross(db), da.Dot(db));
}

namespace {

bool BoundariesIntersect(const Polyline& a, const Polyline& b) {
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  for (size_t i = 0; i < a.NumEdges(); ++i) {
    for (size_t j = 0; j < b.NumEdges(); ++j) {
      if (geom::SegmentsIntersect(a.Edge(i), b.Edge(j))) return true;
    }
  }
  return false;
}

/// Contains for possibly-open inner shapes: every vertex of `inner`
/// inside the closed polygon `outer` and no proper boundary crossing.
bool Contains(const Polyline& outer, const Polyline& inner) {
  if (!outer.closed() || outer.size() < 3 || inner.empty()) return false;
  for (geom::Point p : inner.vertices()) {
    if (!geom::PolygonContainsPoint(outer, p)) return false;
  }
  for (size_t i = 0; i < outer.NumEdges(); ++i) {
    for (size_t j = 0; j < inner.NumEdges(); ++j) {
      if (geom::SegmentsCrossProperly(outer.Edge(i), inner.Edge(j))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool TestRelation(Relation r, const Polyline& a, const Polyline& b) {
  switch (r) {
    case Relation::kContain:
      return Contains(a, b);
    case Relation::kOverlap: {
      if (Contains(a, b) || Contains(b, a)) return false;
      return BoundariesIntersect(a, b) ||
             (a.closed() && !b.empty() &&
              geom::PolygonContainsPoint(a, b.vertex(0))) ||
             (b.closed() && !a.empty() &&
              geom::PolygonContainsPoint(b, a.vertex(0)));
    }
    case Relation::kDisjoint: {
      if (BoundariesIntersect(a, b)) return false;
      if (a.closed() && !b.empty() &&
          geom::PolygonContainsPoint(a, b.vertex(0))) {
        return false;
      }
      if (b.closed() && !a.empty() &&
          geom::PolygonContainsPoint(b, a.vertex(0))) {
        return false;
      }
      return true;
    }
  }
  return false;
}

TopologyGraph TopologyGraph::Build(
    const std::vector<core::ShapeId>& ids,
    const std::vector<const Polyline*>& boundaries) {
  TopologyGraph graph;
  const size_t n = ids.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const Polyline& a = *boundaries[i];
      const Polyline& b = *boundaries[j];
      const double angle_ab = DiameterAngle(a, b);
      const double angle_ba = DiameterAngle(b, a);
      if (TestRelation(Relation::kContain, a, b)) {
        graph.edges_.push_back(
            TopologyEdge{ids[i], ids[j], Relation::kContain, angle_ab});
      } else if (TestRelation(Relation::kContain, b, a)) {
        graph.edges_.push_back(
            TopologyEdge{ids[j], ids[i], Relation::kContain, angle_ba});
      } else if (TestRelation(Relation::kOverlap, a, b)) {
        graph.edges_.push_back(
            TopologyEdge{ids[i], ids[j], Relation::kOverlap, angle_ab});
        graph.edges_.push_back(
            TopologyEdge{ids[j], ids[i], Relation::kOverlap, angle_ba});
      }
      // Disjoint pairs: no edge.
    }
  }
  return graph;
}

std::vector<TopologyEdge> TopologyGraph::EdgesFrom(core::ShapeId from) const {
  std::vector<TopologyEdge> out;
  for (const TopologyEdge& e : edges_) {
    if (e.from == from) out.push_back(e);
  }
  return out;
}

Relation TopologyGraph::RelationBetween(core::ShapeId from,
                                        core::ShapeId to) const {
  for (const TopologyEdge& e : edges_) {
    if (e.from == from && e.to == to) return e.label;
  }
  return Relation::kDisjoint;
}

}  // namespace geosir::query
