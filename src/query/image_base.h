#ifndef GEOSIR_QUERY_IMAGE_BASE_H_
#define GEOSIR_QUERY_IMAGE_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "query/topology.h"
#include "util/status.h"

namespace geosir::query {

/// One image: the shapes extracted from it plus its topology graph.
struct ImageEntry {
  core::ImageId id = 0;
  std::string name;
  std::vector<core::ShapeId> shapes;
};

/// The image database of Section 5: a ShapeBase plus per-image topology
/// graphs. Same build-then-query lifecycle as ShapeBase.
class ImageBase {
 public:
  explicit ImageBase(core::ShapeBaseOptions options = {});

  /// Adds an image with its object boundaries. Shapes that fail
  /// validation are skipped (a count is reported via `skipped`, which may
  /// be null); an image with no valid shapes is still recorded.
  util::Result<core::ImageId> AddImage(
      const std::vector<geom::Polyline>& boundaries, std::string name = "",
      size_t* skipped = nullptr);

  /// Finalizes the shape base and builds every image's topology graph.
  util::Status Finalize();
  bool finalized() const { return base_.finalized(); }

  const core::ShapeBase& shape_base() const { return base_; }
  size_t NumImages() const { return images_.size(); }
  const ImageEntry& image(core::ImageId id) const { return images_[id]; }
  const std::vector<ImageEntry>& images() const { return images_; }
  const TopologyGraph& topology(core::ImageId id) const {
    return graphs_[id];
  }

 private:
  core::ShapeBase base_;
  std::vector<ImageEntry> images_;
  std::vector<TopologyGraph> graphs_;
};

}  // namespace geosir::query

#endif  // GEOSIR_QUERY_IMAGE_BASE_H_
