#ifndef GEOSIR_QUERY_OPERATORS_H_
#define GEOSIR_QUERY_OPERATORS_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/envelope_matcher.h"
#include "query/image_base.h"
#include "query/selectivity.h"

namespace geosir::query {

/// Sorted vector of image ids (the result type of every operator).
using ImageSet = std::vector<core::ImageId>;

ImageSet SetUnion(const ImageSet& a, const ImageSet& b);
ImageSet SetIntersection(const ImageSet& a, const ImageSet& b);
ImageSet SetDifference(const ImageSet& a, const ImageSet& b);

/// Execution strategy for a topological operator (Section 5.3).
enum class TopoStrategy {
  /// Pick based on selectivity estimates.
  kAuto,
  /// Strategy 1: compute shape_similar for the more selective side only,
  /// then test the other endpoint of each graph edge directly.
  kDriveSmaller,
  /// Strategy 2: compute both shape_similar sets, intersect the image
  /// sets, then scan edges checking set membership.
  kIntersectImages,
};

struct QueryContextOptions {
  /// g_similar(S, Q) holds when the match distance is <= this threshold
  /// (normalized-diameter units). 0.025 separates instances of the same
  /// prototype (jitter ~1-2%) from unrelated shapes in the synthetic
  /// workloads; real deployments tune it per corpus.
  double similar_threshold = 0.025;
  /// Tolerance when comparing diameter angles against theta (radians).
  double angle_tolerance = 0.15;
  TopoStrategy strategy = TopoStrategy::kAuto;
  core::MatchOptions match;
  /// EXTENSION (tiered retrieval, DESIGN.md section 14): approximate
  /// pre-filter in front of shape_similar(Q). When set, candidates come
  /// from this source (LSH, hash curves) and only they are exactly
  /// scored, trading recall for latency per query budget — the DNF
  /// machinery above is unchanged, it just sees the (possibly smaller)
  /// shape_similar sets. Null keeps the exact envelope search; a
  /// core::ExactEnumerationSource keeps exact semantics while exercising
  /// the tiered path. Not owned; must outlive the context.
  core::CandidateSource* prefilter = nullptr;
};

/// Per-context execution counters (benchmark instrumentation).
struct QueryContextStats {
  size_t similar_evaluations = 0;   // Matcher runs (cache misses).
  size_t similar_cache_hits = 0;
  size_t edges_scanned = 0;
  size_t pair_checks = 0;           // Direct g_similar / angle tests.
  /// Candidates emitted by the prefilter across ShapeSimilar calls
  /// (0 when no prefilter is configured).
  size_t prefilter_candidates = 0;
};

/// Evaluates the operators of Section 5 against an ImageBase: caches
/// shape_similar sets, maintains the adaptive selectivity model, and
/// implements both topological execution strategies.
class QueryContext {
 public:
  /// `base` must be finalized and outlive the context.
  QueryContext(const ImageBase* base, QueryContextOptions options = {});

  /// shape_similar(Q): all database shapes within the threshold.
  util::Result<std::vector<core::MatchResult>> ShapeSimilar(
      const geom::Polyline& q);

  /// similar(Q): images containing a shape similar to Q (Section 5.1).
  util::Result<ImageSet> EvalSimilar(const geom::Polyline& q);

  /// r(Q1, Q2, theta): images containing S1 ~ Q1 and S2 ~ Q2 with
  /// g_r(S1, S2, theta). `theta` == nullopt means "any".
  util::Result<ImageSet> EvalTopological(Relation r, const geom::Polyline& q1,
                                         const geom::Polyline& q2,
                                         std::optional<double> theta,
                                         TopoStrategy strategy =
                                             TopoStrategy::kAuto);

  /// All images (for COMPLEMENT).
  ImageSet AllImages() const;

  /// Lifecycle checkpoint against options().match.deadline / cancel_token.
  /// The query layer keeps DNF semantics exact: a deadline or cancel stop
  /// propagates as an error (kDeadlineExceeded / kCancelled) instead of a
  /// silently smaller image set, and a partial shape_similar ranking is
  /// never cached. The planner polls this between factors; the operators
  /// poll it per driven shape inside their edge scans.
  util::Status CheckLifecycle() const;

  const ImageBase& image_base() const { return *base_; }
  SelectivityModel* selectivity() { return &selectivity_; }
  const QueryContextStats& stats() const { return stats_; }
  void ResetStats() { stats_ = QueryContextStats{}; }
  const QueryContextOptions& options() const { return options_; }

 private:
  /// Cache key: bit-exact hash of the polyline.
  static uint64_t HashPolyline(const geom::Polyline& q);

  /// Direct pairwise similarity test g_similar(S, Q) without computing
  /// the full shape_similar set (strategy 1's inner check).
  bool GSimilar(core::ShapeId shape, const core::NormalizedCopy& qnorm);

  bool AngleMatches(double angle, std::optional<double> theta) const;

  const ImageBase* base_;
  QueryContextOptions options_;
  core::EnvelopeMatcher matcher_;
  SelectivityModel selectivity_;
  QueryContextStats stats_;
  struct CachedSimilar {
    std::vector<core::MatchResult> shapes;
    std::vector<uint8_t> member;  // Indexed by ShapeId.
    ImageSet images;
  };
  std::unordered_map<uint64_t, CachedSimilar> similar_cache_;
};

}  // namespace geosir::query

#endif  // GEOSIR_QUERY_OPERATORS_H_
