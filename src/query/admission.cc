#include "query/admission.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace geosir::query {

namespace {

/// Process-wide admission metric families (aggregated over controllers;
/// per-instance figures stay on AdmissionController::stats()).
struct AdmissionMetrics {
  obs::Counter* admitted;
  obs::Counter* shed_queue_full;
  obs::Counter* shed_timeout;
  obs::Counter* shed_expired;
  obs::Gauge* inflight;
  obs::Gauge* queue_depth;
  obs::Histogram* wait;

  static const AdmissionMetrics& Get() {
    static const AdmissionMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new AdmissionMetrics();
      m->admitted = r.GetCounter("geosir_admission_admitted_total",
                                 "Callers granted an admission ticket");
      const char* shed_name = "geosir_admission_shed_total";
      const char* shed_help = "Callers turned away, by reason";
      m->shed_queue_full =
          r.GetCounter(shed_name, shed_help, "reason=\"queue_full\"");
      m->shed_timeout =
          r.GetCounter(shed_name, shed_help, "reason=\"timeout\"");
      m->shed_expired =
          r.GetCounter(shed_name, shed_help, "reason=\"expired\"");
      m->inflight = r.GetGauge("geosir_admission_inflight",
                               "Admission tickets currently held");
      m->queue_depth = r.GetGauge("geosir_admission_queue_depth",
                                  "Callers currently waiting for admission");
      m->wait = r.GetHistogram("geosir_admission_wait_seconds",
                               "Time from Admit() entry to ticket grant",
                               obs::LatencyBucketsSeconds());
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
  }
  AdmissionMetrics::Get().inflight->Add(-1);
  // notify_all, not _one: only the FIFO front may take the slot, and the
  // front may itself be about to time out — waking everyone lets the true
  // front claim it while the others re-arm their timeouts.
  cv_.notify_all();
}

util::Result<AdmissionController::Ticket> AdmissionController::Admit(
    util::Deadline deadline) {
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  const auto admit_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  if (deadline.expired()) {
    ++stats_.shed_expired;
    metrics.shed_expired->Inc();
    return util::Status::DeadlineExceeded("deadline expired before admission");
  }
  // Fast path: free slot and nobody queued ahead (FIFO — no barging).
  if (inflight_ < options_.max_concurrent && waiters_.empty()) {
    ++inflight_;
    ++stats_.admitted;
    stats_.inflight = inflight_;
    metrics.admitted->Inc();
    metrics.inflight->Add(1);
    metrics.wait->Observe(0.0);
    return Ticket(this);
  }
  if (waiters_.size() >= options_.max_queued) {
    ++stats_.shed_queue_full;
    metrics.shed_queue_full->Inc();
    return util::Status::Unavailable("admission queue full");
  }
  const uint64_t id = next_waiter_++;
  waiters_.push_back(id);
  stats_.queued = waiters_.size();
  stats_.peak_queued = std::max(stats_.peak_queued, waiters_.size());
  metrics.queue_depth->Set(static_cast<int64_t>(waiters_.size()));

  const util::Deadline queue_limit =
      options_.queue_timeout_ms > 0
          ? util::Deadline::AfterMillis(options_.queue_timeout_ms)
          : util::Deadline::Infinite();
  const util::Deadline limit = util::Deadline::Earliest(queue_limit, deadline);

  const auto ready = [&] {
    return inflight_ < options_.max_concurrent && !waiters_.empty() &&
           waiters_.front() == id;
  };
  bool admitted;
  if (limit.infinite()) {
    cv_.wait(lock, ready);
    admitted = true;
  } else {
    admitted = cv_.wait_until(lock, limit.time_point(), ready);
  }
  if (!admitted) {
    // Shed: leave the queue (we may or may not have reached the front).
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), id));
    stats_.queued = waiters_.size();
    metrics.queue_depth->Set(static_cast<int64_t>(waiters_.size()));
    const bool expired = deadline.expired();
    if (expired) {
      ++stats_.shed_expired;
      metrics.shed_expired->Inc();
    } else {
      ++stats_.shed_timeout;
      metrics.shed_timeout->Inc();
    }
    lock.unlock();
    // Our departure may have promoted a new front that is admittable now.
    cv_.notify_all();
    if (expired) {
      return util::Status::DeadlineExceeded(
          "deadline expired while queued for admission");
    }
    return util::Status::Unavailable("timed out in admission queue");
  }
  waiters_.pop_front();
  ++inflight_;
  ++stats_.admitted;
  stats_.inflight = inflight_;
  stats_.queued = waiters_.size();
  metrics.admitted->Inc();
  metrics.inflight->Add(1);
  metrics.queue_depth->Set(static_cast<int64_t>(waiters_.size()));
  metrics.wait->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    admit_start)
          .count());
  lock.unlock();
  // The next waiter may be admittable too (multiple slots / releases).
  cv_.notify_all();
  return Ticket(this);
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats out = stats_;
  out.inflight = inflight_;
  out.queued = waiters_.size();
  return out;
}

util::Result<std::vector<std::vector<core::MatchResult>>> AdmittedMatchBatch(
    AdmissionController* controller, const core::ShapeBase& base,
    const std::vector<geom::Polyline>& queries,
    const core::MatchOptions& options, std::vector<core::MatchStats>* stats) {
  GEOSIR_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          controller->Admit(options.deadline));
  (void)ticket;  // Held for the duration of the batch.
  return core::MatchBatch(base, queries, options, stats);
}

}  // namespace geosir::query
