#include "query/admission.h"

#include <algorithm>

namespace geosir::query {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
  }
  // notify_all, not _one: only the FIFO front may take the slot, and the
  // front may itself be about to time out — waking everyone lets the true
  // front claim it while the others re-arm their timeouts.
  cv_.notify_all();
}

util::Result<AdmissionController::Ticket> AdmissionController::Admit(
    util::Deadline deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (deadline.expired()) {
    ++stats_.shed_expired;
    return util::Status::DeadlineExceeded("deadline expired before admission");
  }
  // Fast path: free slot and nobody queued ahead (FIFO — no barging).
  if (inflight_ < options_.max_concurrent && waiters_.empty()) {
    ++inflight_;
    ++stats_.admitted;
    stats_.inflight = inflight_;
    return Ticket(this);
  }
  if (waiters_.size() >= options_.max_queued) {
    ++stats_.shed_queue_full;
    return util::Status::Unavailable("admission queue full");
  }
  const uint64_t id = next_waiter_++;
  waiters_.push_back(id);
  stats_.queued = waiters_.size();
  stats_.peak_queued = std::max(stats_.peak_queued, waiters_.size());

  const util::Deadline queue_limit =
      options_.queue_timeout_ms > 0
          ? util::Deadline::AfterMillis(options_.queue_timeout_ms)
          : util::Deadline::Infinite();
  const util::Deadline limit = util::Deadline::Earliest(queue_limit, deadline);

  const auto ready = [&] {
    return inflight_ < options_.max_concurrent && !waiters_.empty() &&
           waiters_.front() == id;
  };
  bool admitted;
  if (limit.infinite()) {
    cv_.wait(lock, ready);
    admitted = true;
  } else {
    admitted = cv_.wait_until(lock, limit.time_point(), ready);
  }
  if (!admitted) {
    // Shed: leave the queue (we may or may not have reached the front).
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), id));
    stats_.queued = waiters_.size();
    const bool expired = deadline.expired();
    if (expired) {
      ++stats_.shed_expired;
    } else {
      ++stats_.shed_timeout;
    }
    lock.unlock();
    // Our departure may have promoted a new front that is admittable now.
    cv_.notify_all();
    if (expired) {
      return util::Status::DeadlineExceeded(
          "deadline expired while queued for admission");
    }
    return util::Status::Unavailable("timed out in admission queue");
  }
  waiters_.pop_front();
  ++inflight_;
  ++stats_.admitted;
  stats_.inflight = inflight_;
  stats_.queued = waiters_.size();
  lock.unlock();
  // The next waiter may be admittable too (multiple slots / releases).
  cv_.notify_all();
  return Ticket(this);
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats out = stats_;
  out.inflight = inflight_;
  out.queued = waiters_.size();
  return out;
}

util::Result<std::vector<std::vector<core::MatchResult>>> AdmittedMatchBatch(
    AdmissionController* controller, const core::ShapeBase& base,
    const std::vector<geom::Polyline>& queries,
    const core::MatchOptions& options, std::vector<core::MatchStats>* stats) {
  GEOSIR_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          controller->Admit(options.deadline));
  (void)ticket;  // Held for the duration of the batch.
  return core::MatchBatch(base, queries, options, stats);
}

}  // namespace geosir::query
