#ifndef GEOSIR_QUERY_PARSER_H_
#define GEOSIR_QUERY_PARSER_H_

#include <map>
#include <string>

#include "query/ast.h"

namespace geosir::query {

/// Parses the small textual query language used by the examples and the
/// GeoSIR-style CLI:
///
///   query    := term ('|' term)*
///   term     := factor ('&' factor)*
///   factor   := '~' factor | '(' query ')' | operator
///   operator := 'similar' '(' name ')'
///             | ('contain' | 'overlap' | 'disjoint')
///                 '(' name ',' name (',' (number | 'any'))? ')'
///
/// `~` is COMPLEMENT, `&` intersection, `|` union; angles are radians.
/// Shape names are resolved through `shapes`; unknown names fail.
util::Result<QueryPtr> ParseQuery(
    const std::string& text,
    const std::map<std::string, geom::Polyline>& shapes);

}  // namespace geosir::query

#endif  // GEOSIR_QUERY_PARSER_H_
