#ifndef GEOSIR_QUERY_AST_H_
#define GEOSIR_QUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geom/polyline.h"
#include "query/topology.h"
#include "util/status.h"

namespace geosir::query {

/// Node kinds of the topological query algebra (Section 5.1): leaf
/// operators similar / contain / overlap / disjoint composed with union,
/// intersection and complement.
enum class NodeKind {
  kSimilar,
  kTopological,
  kUnion,
  kIntersection,
  kComplement,
};

struct QueryNode;
using QueryPtr = std::unique_ptr<QueryNode>;

struct QueryNode {
  NodeKind kind = NodeKind::kSimilar;

  // kSimilar: q1 is the query shape.
  // kTopological: relation over (q1, q2) with optional angle theta
  // (std::nullopt = "any").
  geom::Polyline q1;
  geom::Polyline q2;
  Relation relation = Relation::kOverlap;
  std::optional<double> theta;

  // kUnion / kIntersection: 2+ children; kComplement: exactly 1.
  std::vector<QueryPtr> children;

  QueryPtr Clone() const;
};

/// Leaf builders.
QueryPtr Similar(geom::Polyline q);
QueryPtr Topological(Relation r, geom::Polyline q1, geom::Polyline q2,
                     std::optional<double> theta = std::nullopt);
inline QueryPtr Contain(geom::Polyline q1, geom::Polyline q2,
                        std::optional<double> theta = std::nullopt) {
  return Topological(Relation::kContain, std::move(q1), std::move(q2), theta);
}
inline QueryPtr Overlap(geom::Polyline q1, geom::Polyline q2,
                        std::optional<double> theta = std::nullopt) {
  return Topological(Relation::kOverlap, std::move(q1), std::move(q2), theta);
}
inline QueryPtr Disjoint(geom::Polyline q1, geom::Polyline q2,
                         std::optional<double> theta = std::nullopt) {
  return Topological(Relation::kDisjoint, std::move(q1), std::move(q2),
                     theta);
}

/// Combinators.
QueryPtr Union(QueryPtr a, QueryPtr b);
QueryPtr Intersect(QueryPtr a, QueryPtr b);
QueryPtr Complement(QueryPtr a);

/// Debug rendering, e.g.
/// "similar(#5) & ~overlap(#3, #4, any)".
std::string ToString(const QueryNode& node);

/// One factor of a DNF term: a leaf operator, possibly complemented.
struct DnfFactor {
  bool complemented = false;
  /// Points into the (cloned) nodes owned by the Dnf object.
  const QueryNode* op = nullptr;
};

/// A conjunction of factors.
struct DnfTerm {
  std::vector<DnfFactor> factors;
};

/// The query rewritten as t_1 UNION ... UNION t_n, each t_i an
/// intersection of (possibly complemented) leaf operators (Section 5.4).
struct Dnf {
  std::vector<DnfTerm> terms;
  /// Owns clones of the leaves referenced by the factors.
  std::vector<QueryPtr> leaf_storage;
};

/// Rewrites an arbitrary algebra tree into DNF, pushing complements to
/// the leaves via De Morgan and distributing intersections over unions.
util::Result<Dnf> ToDnf(const QueryNode& root);

}  // namespace geosir::query

#endif  // GEOSIR_QUERY_AST_H_
