#include "query/selectivity.h"

#include <algorithm>
#include <cmath>

#include "core/normalize.h"

namespace geosir::query {

double SignificantVertices(const geom::Polyline& query) {
  auto normalized = core::NormalizeQuery(query);
  if (!normalized.ok()) return 0.0;
  const geom::Polyline& q = normalized->shape;
  const size_t n = q.size();
  if (n < 2) return 0.0;

  constexpr double kPi = 3.14159265358979323846;
  const auto edge_length = [&q, n](size_t i) {
    // Length of edge i (from vertex i to i+1); 0 when the edge does not
    // exist (open polyline boundary).
    if (!q.closed() && i + 1 >= n) return 0.0;
    return geom::Distance(q.vertex(i % n), q.vertex((i + 1) % n));
  };
  const auto vertex_angle = [&q, n, kPi](size_t i) {
    // Angle between the two edges meeting at vertex i, in [0, pi].
    // Missing neighbors (open endpoints) degrade to pi (no turn signal).
    if (!q.closed() && (i == 0 || i + 1 >= n)) return kPi;
    const geom::Point prev = q.vertex((i + n - 1) % n) - q.vertex(i);
    const geom::Point next = q.vertex((i + 1) % n) - q.vertex(i);
    const double np = prev.Norm();
    const double nn = next.Norm();
    if (np <= 0.0 || nn <= 0.0) return kPi;
    const double c = std::clamp(prev.Dot(next) / (np * nn), -1.0, 1.0);
    return std::acos(c);
  };

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double a = vertex_angle(i);
    const double l_prev = edge_length((i + n - 1) % n);
    const double l_here = edge_length(i);
    total += 0.5 * ((kPi - a) * a * 4.0 / (kPi * kPi) +
                    (l_prev + l_here) / 2.0);
  }
  return total;
}

void SelectivityModel::Observe(double vs, size_t result_size) {
  if (vs <= 0.0) return;
  const double sample = static_cast<double>(result_size) * vs;
  ++observations_;
  // Running mean keeps the constant stable while staying adaptive.
  c_ += (sample - c_) / static_cast<double>(observations_);
}

}  // namespace geosir::query
