#ifndef GEOSIR_QUERY_PLANNER_H_
#define GEOSIR_QUERY_PLANNER_H_

#include <string>

#include "query/ast.h"
#include "query/operators.h"

namespace geosir::query {

struct PlanOptions {
  /// Evaluate the factors of each intersection term cheapest-first
  /// (selectivity order, Section 5.4); false keeps the written order —
  /// the benchmark compares the two.
  bool order_by_selectivity = true;
};

/// A rendered execution plan (for logs and the query-plan benchmark).
struct PlanExplanation {
  std::string text;
  size_t num_terms = 0;
  size_t num_factors = 0;
};

/// Executes a topological query (Section 5.4): rewrites it into DNF,
/// orders each term's factors by estimated selectivity (complemented
/// factors last — they only subtract), evaluates them with short-circuit
/// on empty intermediate results, and unions the terms.
util::Result<ImageSet> ExecuteQuery(const QueryNode& root,
                                    QueryContext* context,
                                    const PlanOptions& options = {},
                                    PlanExplanation* explanation = nullptr);

}  // namespace geosir::query

#endif  // GEOSIR_QUERY_PLANNER_H_
