#include "hashing/lune.h"

namespace geosir::hashing {

using geom::Point;

int LuneQuarter(Point p) {
  const bool left = p.x < 0.5;
  const bool upper = p.y >= 0.0;
  if (upper) return left ? 0 : 1;
  return left ? 2 : 3;
}

bool InsideLune(Point p, double eps) {
  return p.SquaredNorm() <= 1.0 + eps &&
         (p - Point{1.0, 0.0}).SquaredNorm() <= 1.0 + eps;
}

Point ClampToLune(Point p) {
  // Alternate projections onto the two disks; two rounds suffice for the
  // mild violations produced by alpha-diameter normalization.
  for (int round = 0; round < 2; ++round) {
    const double n0 = p.Norm();
    if (n0 > 1.0 && n0 > 0.0) p = p / n0;
    const Point q = p - Point{1.0, 0.0};
    const double n1 = q.Norm();
    if (n1 > 1.0) p = Point{1.0, 0.0} + q / n1;
  }
  return p;
}

}  // namespace geosir::hashing
