#ifndef GEOSIR_HASHING_GEO_HASH_INDEX_H_
#define GEOSIR_HASHING_GEO_HASH_INDEX_H_

#include <utility>
#include <vector>

#include "core/candidate_source.h"
#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "hashing/hash_curves.h"
#include "util/status.h"

namespace geosir::hashing {

struct GeoHashOptions {
  /// Curves per quarter (the paper illustrates k = 50, Figure 4 right).
  int curves_per_quarter = 50;
  /// Which equal-area curve family partitions the quarters.
  CurveFamilyKind family = CurveFamilyKind::kUnitCircleArcs;
  /// How many neighboring curves on each side of the query's curve are
  /// probed per quarter (0 = exact-curve only). Shapes close to each
  /// other land on the same or neighboring curves.
  int neighbor_radius = 1;
  /// Measure used to rank the collected shapes.
  core::MatchMeasure measure = core::MatchMeasure::kContinuousSymmetric;
  core::SimilarityOptions similarity;
};

/// The approximate-matching fallback of Section 3: every normalized copy
/// in the shape base is bucketed by its characteristic curve in each of
/// the four lune quarters. A query probes its own four curves (plus
/// optional neighbors), collects the shapes in those buckets, ranks them
/// with the similarity measure, and returns the best ones. Expected cost:
/// logarithmic in the curve-family size plus a constant number of
/// candidate evaluations.
class GeoHashIndex {
 public:
  /// Builds buckets for every copy in `base` (which must be finalized and
  /// must outlive the index).
  static util::Result<GeoHashIndex> Create(const core::ShapeBase* base,
                                           const GeoHashOptions& options = {});

  /// Approximate k-best retrieval. The returned distances use the
  /// configured measure. `candidates_evaluated`, when non-null, receives
  /// the number of distinct copies collected from the probed buckets
  /// (the paper expects a small constant per query).
  util::Result<std::vector<core::MatchResult>> Query(
      const geom::Polyline& query, size_t k = 1,
      size_t* candidates_evaluated = nullptr) const;

  /// The bucket-probe phase of Query without the ranking: distinct copies
  /// collected from the probed (quarter, curve) buckets of the *already
  /// normalized* query, each with its multiplicity (how many quarters
  /// collected it, 1..4), sorted ascending by copy index. Deterministic;
  /// shared by Query and GeoHashCandidateSource.
  std::vector<std::pair<uint32_t, uint32_t>> CollectCandidates(
      const geom::Polyline& normalized) const;

  /// Quadruple of a stored copy (sorted-layout keys, Section 4.1).
  const CurveQuadruple& QuadrupleOfCopy(size_t copy_index) const {
    return copy_quadruples_[copy_index];
  }
  const ArcFamily& family() const { return family_; }
  const GeoHashOptions& options() const { return options_; }

  /// Average number of copies per non-empty (quarter, curve) bucket; the
  /// paper expects a small constant.
  double AverageBucketOccupancy() const;

 private:
  GeoHashIndex(const core::ShapeBase* base, GeoHashOptions options,
               ArcFamily family);

  const core::ShapeBase* base_;
  GeoHashOptions options_;
  ArcFamily family_;
  std::vector<CurveQuadruple> copy_quadruples_;
  /// buckets_[quarter][curve] = copy indices whose characteristic curve
  /// in `quarter` is `curve` (1-based curve ids; index 0 collects copies
  /// with an empty quarter).
  std::vector<std::vector<uint32_t>> buckets_[4];
};

/// CandidateSource adapter over the hash-curve buckets: the paper's
/// Section 3 lookup as the approximate first tier of the retrieval
/// pipeline (candidates ranked by how many lune quarters agreed, ties by
/// ascending copy index). The index is not owned and must outlive the
/// source.
class GeoHashCandidateSource final : public core::CandidateSource {
 public:
  explicit GeoHashCandidateSource(const GeoHashIndex* index) : index_(index) {}

  const char* name() const override { return "geohash"; }

  util::Status Generate(const geom::Polyline& normalized_query,
                        size_t max_candidates,
                        const core::MatchOptions& options,
                        std::vector<uint32_t>* out,
                        core::CandidateSourceStats* stats) override;

 private:
  const GeoHashIndex* index_;
};

}  // namespace geosir::hashing

#endif  // GEOSIR_HASHING_GEO_HASH_INDEX_H_
