#include "hashing/geo_hash_index.h"

#include <algorithm>
#include <unordered_map>

#include "core/normalize.h"
#include "core/similarity.h"
#include "util/query_control.h"

namespace geosir::hashing {

GeoHashIndex::GeoHashIndex(const core::ShapeBase* base, GeoHashOptions options,
                           ArcFamily family)
    : base_(base), options_(options), family_(std::move(family)) {}

util::Result<GeoHashIndex> GeoHashIndex::Create(const core::ShapeBase* base,
                                                const GeoHashOptions& options) {
  if (!base->finalized()) {
    return util::Status::FailedPrecondition("ShapeBase not finalized");
  }
  GEOSIR_ASSIGN_OR_RETURN(
      ArcFamily family,
      ArcFamily::Create(options.curves_per_quarter, options.family));
  GeoHashIndex index(base, options, std::move(family));
  for (int q = 0; q < 4; ++q) {
    index.buckets_[q].assign(options.curves_per_quarter + 1, {});
  }
  index.copy_quadruples_.reserve(base->NumCopies());
  for (size_t i = 0; i < base->NumCopies(); ++i) {
    const CurveQuadruple quad =
        ComputeQuadruple(index.family_, base->copy(i).shape);
    for (int q = 0; q < 4; ++q) {
      index.buckets_[q][quad.c[q]].push_back(static_cast<uint32_t>(i));
    }
    index.copy_quadruples_.push_back(quad);
  }
  return index;
}

std::vector<std::pair<uint32_t, uint32_t>> GeoHashIndex::CollectCandidates(
    const geom::Polyline& normalized) const {
  const CurveQuadruple quad = ComputeQuadruple(family_, normalized);
  // A copy is collected at most once per quarter (it has one
  // characteristic curve there), so its multiplicity counts agreeing
  // quarters.
  std::unordered_map<uint32_t, uint32_t> multiplicity;
  for (int q = 0; q < 4; ++q) {
    if (quad.c[q] == 0) continue;  // Empty quarter carries no signal.
    for (int delta = -options_.neighbor_radius;
         delta <= options_.neighbor_radius; ++delta) {
      const int curve = quad.c[q] + delta;
      if (curve < 1 || curve > options_.curves_per_quarter) continue;
      for (uint32_t copy : buckets_[q][curve]) ++multiplicity[copy];
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> counted(multiplicity.begin(),
                                                     multiplicity.end());
  std::sort(counted.begin(), counted.end());
  return counted;
}

util::Result<std::vector<core::MatchResult>> GeoHashIndex::Query(
    const geom::Polyline& query, size_t k,
    size_t* candidates_evaluated) const {
  GEOSIR_ASSIGN_OR_RETURN(core::NormalizedCopy qnorm,
                          core::NormalizeQuery(query));
  const std::vector<std::pair<uint32_t, uint32_t>> candidates =
      CollectCandidates(qnorm.shape);

  if (candidates_evaluated != nullptr) {
    *candidates_evaluated = candidates.size();
  }

  // Rank candidates per shape with the similarity measure.
  std::unordered_map<core::ShapeId, core::MatchResult> best;
  for (const auto& [copy_idx, count] : candidates) {
    const core::NormalizedCopy& copy = base_->copy(copy_idx);
    double d = 0.0;
    switch (options_.measure) {
      case core::MatchMeasure::kContinuousSymmetric:
        d = core::AvgMinDistanceSymmetric(copy.shape, qnorm.shape,
                                          options_.similarity);
        break;
      case core::MatchMeasure::kContinuousDirected:
        d = core::AvgMinDistance(copy.shape, qnorm.shape, options_.similarity);
        break;
      case core::MatchMeasure::kDiscreteSymmetric:
        d = std::max(core::DiscreteAvgMinDistance(copy.shape, qnorm.shape),
                     core::DiscreteAvgMinDistance(qnorm.shape, copy.shape));
        break;
      case core::MatchMeasure::kDiscreteDirected:
        d = core::DiscreteAvgMinDistance(copy.shape, qnorm.shape);
        break;
    }
    auto [it, inserted] = best.try_emplace(
        copy.shape_id, core::MatchResult{copy.shape_id, d, copy_idx});
    if (!inserted && d < it->second.distance) {
      it->second.distance = d;
      it->second.copy_index = copy_idx;
    }
  }

  std::vector<core::MatchResult> results;
  results.reserve(best.size());
  for (const auto& [id, r] : best) results.push_back(r);
  std::sort(results.begin(), results.end(),
            [](const core::MatchResult& a, const core::MatchResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.shape_id < b.shape_id;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

double GeoHashIndex::AverageBucketOccupancy() const {
  size_t total = 0;
  size_t nonempty = 0;
  for (int q = 0; q < 4; ++q) {
    for (size_t curve = 1; curve < buckets_[q].size(); ++curve) {
      if (buckets_[q][curve].empty()) continue;
      ++nonempty;
      total += buckets_[q][curve].size();
    }
  }
  return nonempty == 0 ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(nonempty);
}

util::Status GeoHashCandidateSource::Generate(
    const geom::Polyline& normalized_query, size_t max_candidates,
    const core::MatchOptions& options, std::vector<uint32_t>* out,
    core::CandidateSourceStats* stats) {
  out->clear();
  if (stats != nullptr) *stats = core::CandidateSourceStats{};
  const util::QueryControl control{options.deadline, options.cancel_token};
  // One entry poll suffices: the whole probe is four bucket lookups plus
  // a sort of a small candidate set.
  {
    util::Status stop = control.Check();
    if (!stop.ok()) {
      if (stats != nullptr) stats->termination = stop;
      return stop;
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> counted =
      index_->CollectCandidates(normalized_query);
  // Preference order: most agreeing quarters first, ties ascending copy.
  std::sort(counted.begin(), counted.end(),
            [](const std::pair<uint32_t, uint32_t>& a,
               const std::pair<uint32_t, uint32_t>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  const size_t limit = max_candidates == 0
                           ? counted.size()
                           : std::min(counted.size(), max_candidates);
  out->reserve(limit);
  for (size_t i = 0; i < limit; ++i) out->push_back(counted[i].first);
  if (stats != nullptr) {
    stats->tables_probed = 4;
    stats->buckets_probed =
        4 * (2 * static_cast<size_t>(index_->options().neighbor_radius) + 1);
    stats->candidates_emitted = out->size();
    stats->truncated = limit < counted.size();
  }
  return util::Status::OK();
}

}  // namespace geosir::hashing
