#ifndef GEOSIR_HASHING_LUNE_H_
#define GEOSIR_HASHING_LUNE_H_

#include "geom/point.h"

namespace geosir::hashing {

/// Geometry of the lune (Section 3): the lens-shaped intersection of the
/// two unit disks centered at (0,0) and (1,0). Every vertex of a shape
/// normalized about its *true* diameter lies inside it; vertices of
/// alpha-diameter copies may fall slightly outside and are treated as if
/// on the boundary.

/// Quarters of the lune (Figure 4 left): split at x = 1/2 and y = 0.
///   q1 = upper-left, q2 = upper-right, q3 = lower-left, q4 = lower-right.
/// Returned values are 0-based (0..3).
int LuneQuarter(geom::Point p);

/// True if p lies inside both unit disks.
bool InsideLune(geom::Point p, double eps = 1e-12);

/// Projects p onto the lune: points outside either disk are pulled onto
/// that disk's boundary (the paper's "treated as if they are located on
/// the boundary of the lune").
geom::Point ClampToLune(geom::Point p);

/// Area of the lune: 2*pi/3 - sqrt(3)/2.
constexpr double kLuneAreaA0 = 1.2283696986087567;

}  // namespace geosir::hashing

#endif  // GEOSIR_HASHING_LUNE_H_
