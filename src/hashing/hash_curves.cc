#include "hashing/hash_curves.h"

#include <algorithm>
#include <functional>
#include <cmath>

#include "hashing/lune.h"
#include "util/numeric.h"

namespace geosir::hashing {

using geom::Point;

const char* CurveFamilyKindName(CurveFamilyKind kind) {
  switch (kind) {
    case CurveFamilyKind::kUnitCircleArcs:
      return "unit-circle-arcs";
    case CurveFamilyKind::kVerticalLines:
      return "vertical-lines";
  }
  return "unknown";
}

double LuneAreaE(double x) {
  x = util::Clamp(x, 0.0, 1.0);
  const double upper = std::min(2.0 * x, 0.5);
  if (upper <= 0.0) return 0.0;
  const double base = std::sqrt(std::max(0.0, 1.0 - x * x));
  return util::AdaptiveSimpson(
      [x, base](double t) {
        const double dx = t - x;
        return std::sqrt(std::max(0.0, 1.0 - dx * dx)) - base;
      },
      0.0, upper);
}

double LuneAreaEDerivative(double x) {
  const double h = 1e-6;
  const double lo = util::Clamp(x - h, 0.0, 1.0);
  const double hi = util::Clamp(x + h, 0.0, 1.0);
  return (LuneAreaE(hi) - LuneAreaE(lo)) / (hi - lo);
}

Point ArcCenter(double x, int quarter) {
  const double drop = std::sqrt(std::max(0.0, 1.0 - x * x));
  switch (quarter) {
    case 0:  // Upper-left: circle through (0,0), center below the axis.
      return {x, -drop};
    case 1:  // Upper-right: mirror about x = 1/2, circle through (1,0).
      return {1.0 - x, -drop};
    case 2:  // Lower-left: mirror of q1 about y = 0.
      return {x, drop};
    case 3:  // Lower-right.
      return {1.0 - x, drop};
    default:
      return {x, -drop};
  }
}

double ArcDistance(Point p, double x, int quarter) {
  return std::fabs((p - ArcCenter(x, quarter)).Norm() - 1.0);
}

double LuneSlabArea(double x) {
  x = util::Clamp(x, 0.0, 0.5);
  if (x <= 0.0) return 0.0;
  return util::AdaptiveSimpson(
      [](double t) {
        const double dx = t - 1.0;
        return std::sqrt(std::max(0.0, 1.0 - dx * dx));
      },
      0.0, x);
}

util::Result<ArcFamily> ArcFamily::Create(int k, CurveFamilyKind kind) {
  if (k < 1) {
    return util::Status::InvalidArgument("arc family needs k >= 1");
  }
  std::vector<double> xs;
  xs.reserve(k);
  const double quarter_area = kLuneAreaA0 / 4.0;
  const bool arcs = kind == CurveFamilyKind::kUnitCircleArcs;
  const double x_max = arcs ? 1.0 : 0.5;
  const auto area = arcs ? LuneAreaE : LuneSlabArea;
  double lo = 0.0;
  for (int i = 1; i <= k; ++i) {
    const double target = quarter_area * static_cast<double>(i) / k;
    if (i == k) {
      xs.push_back(x_max);
      break;
    }
    // The area functions are monotone: bracket from the previous
    // solution.
    const std::function<double(double)> derivative =
        arcs ? std::function<double(double)>(LuneAreaEDerivative)
             : std::function<double(double)>();
    GEOSIR_ASSIGN_OR_RETURN(
        double xi,
        util::FindRootBracketed([target, area](double x) {
          return area(x) - target;
        },
                                derivative, lo, x_max));
    xs.push_back(xi);
    lo = xi;
  }
  return ArcFamily(std::move(xs), kind);
}

double ArcFamily::CurveDistance(Point p, double x, int quarter) const {
  if (kind_ == CurveFamilyKind::kUnitCircleArcs) {
    return ArcDistance(p, x, quarter);
  }
  // Vertical lines: left quarters use abscissa x, right quarters mirror.
  const double line_x = (quarter == 0 || quarter == 2) ? x : 1.0 - x;
  return std::fabs(p.x - line_x);
}

double ArcFamily::AverageDistance(const std::vector<Point>& vertices,
                                  double x, int quarter) const {
  if (vertices.empty()) return 0.0;
  double sum = 0.0;
  for (Point p : vertices) sum += CurveDistance(p, x, quarter);
  return sum / static_cast<double>(vertices.size());
}

int ArcFamily::CharacteristicCurve(const std::vector<Point>& vertices,
                                   int quarter) const {
  if (vertices.empty()) return -1;
  // The average distance has a single local minimum over the continuous
  // family (Section 3): golden-section search, then snap to the nearest
  // discrete curves.
  const double x_max =
      kind_ == CurveFamilyKind::kUnitCircleArcs ? 1.0 : 0.5;
  const double x_star = util::GoldenSectionMinimize(
      [this, &vertices, quarter](double x) {
        return AverageDistance(vertices, x, quarter);
      },
      0.0, x_max, 1e-7);
  // Candidate discrete arcs: the neighbors of x_star in xs_.
  const auto it = std::lower_bound(xs_.begin(), xs_.end(), x_star);
  int best = -1;
  double best_avg = 0.0;
  for (int delta = -1; delta <= 1; ++delta) {
    const long idx = (it - xs_.begin()) + delta;
    if (idx < 0 || idx >= static_cast<long>(xs_.size())) continue;
    const double avg = AverageDistance(vertices, xs_[idx], quarter);
    if (best < 0 || avg < best_avg) {
      best = static_cast<int>(idx);
      best_avg = avg;
    }
  }
  return best;
}

int CurveQuadruple::MeanCurve() const {
  return static_cast<int>(
      std::lround((c[0] + c[1] + c[2] + c[3]) / 4.0));
}

int CurveQuadruple::MedianCurve() const {
  int sorted[4] = {c[0], c[1], c[2], c[3]};
  std::sort(sorted, sorted + 4);
  const double mean = (c[0] + c[1] + c[2] + c[3]) / 4.0;
  // The two medians are sorted[1] and sorted[2]; pick the one closer to
  // the mean (method (iii) of Section 4.1).
  return std::fabs(sorted[1] - mean) <= std::fabs(sorted[2] - mean)
             ? sorted[1]
             : sorted[2];
}

CurveQuadruple ComputeQuadruple(const ArcFamily& family,
                                const geom::Polyline& normalized_shape) {
  std::vector<Point> by_quarter[4];
  for (Point p : normalized_shape.vertices()) {
    const Point q = ClampToLune(p);
    by_quarter[LuneQuarter(q)].push_back(q);
  }
  CurveQuadruple quad;
  for (int q = 0; q < 4; ++q) {
    const int curve = family.CharacteristicCurve(by_quarter[q], q);
    quad.c[q] = curve < 0 ? 0 : curve + 1;  // 1-based; 0 = empty quarter.
  }
  return quad;
}

}  // namespace geosir::hashing
