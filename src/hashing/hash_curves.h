#ifndef GEOSIR_HASHING_HASH_CURVES_H_
#define GEOSIR_HASHING_HASH_CURVES_H_

#include <vector>

#include "geom/point.h"
#include "geom/polyline.h"
#include "util/status.h"

namespace geosir::hashing {

/// The equal-area arc family of Section 3. Each lune quarter is
/// partitioned into k regions of equal area by k unit-radius circular
/// arcs; for the upper-left quarter q1 the i-th arc belongs to the circle
/// of radius 1 with center (x_i, -sqrt(1 - x_i^2)) (it passes through the
/// origin), where x_i solves
///   E(x) = integral_0^{min(2x, 1/2)} (sqrt(1-(t-x)^2) - sqrt(1-x^2)) dt
///        = (A0 / 4) * (i / k).
/// The other quarters reuse the same x_i by mirror symmetry (about y = 0
/// and about x = 1/2).

/// The paper evaluated "different families of conic curves" for the
/// partition; this implementation provides the unit-circle arcs it
/// settled on plus a vertical-line family as the simplest alternative
/// (the hashing benchmark compares them).
enum class CurveFamilyKind {
  /// Unit-radius circles through the lune tips (the paper's choice).
  kUnitCircleArcs,
  /// Vertical lines x = const partitioning each quarter into equal-area
  /// slabs.
  kVerticalLines,
};

const char* CurveFamilyKindName(CurveFamilyKind kind);

/// E(x) for x in [0, 1]: the area between the q1 arc with parameter x and
/// the x-axis, restricted to the quarter. Monotone increasing, E(0) = 0,
/// E(1) = A0/4 (Figure 5 left).
double LuneAreaE(double x);

/// Area of the vertical slab [0, x] within the upper-left quarter (the
/// lune's boundary there is the unit circle centered at (1,0)); x in
/// [0, 1/2], monotone with E_v(1/2) = A0/4.
double LuneSlabArea(double x);

/// dE/dx by central finite differences (Figure 5 right). Exposed for the
/// bench that regenerates Figure 5 and for Newton-based solving.
double LuneAreaEDerivative(double x);

/// Center of the arc with parameter x in the given quarter (0..3).
geom::Point ArcCenter(double x, int quarter);

/// Distance from p to the (full) circle carrying the arc with parameter x
/// in the given quarter: | |p - center| - 1 |.
double ArcDistance(geom::Point p, double x, int quarter);

/// The solved equal-area curve family (arcs or lines, per `kind`).
class ArcFamily {
 public:
  /// Solves the k equal-area equations. k >= 1.
  static util::Result<ArcFamily> Create(
      int k, CurveFamilyKind kind = CurveFamilyKind::kUnitCircleArcs);

  int size() const { return static_cast<int>(xs_.size()); }
  CurveFamilyKind kind() const { return kind_; }
  /// Curve parameters x_1 < x_2 < ... < x_k (arcs: x_k == 1; lines:
  /// x_k == 1/2, the quarter-local abscissa).
  const std::vector<double>& xs() const { return xs_; }
  double x(int i) const { return xs_[i]; }

  /// Distance of p to the curve with parameter x in `quarter`.
  double CurveDistance(geom::Point p, double x, int quarter) const;

  /// Average distance of `vertices` to the curve with parameter x in
  /// `quarter`.
  double AverageDistance(const std::vector<geom::Point>& vertices, double x,
                         int quarter) const;

  /// Characteristic curve (Section 3 / Figure 6): the index (0-based) of
  /// the family curve minimizing the average distance of `vertices`,
  /// found by golden-section search over the continuous parameter
  /// followed by snapping to the nearest discrete neighbor. Returns -1
  /// when `vertices` is empty.
  int CharacteristicCurve(const std::vector<geom::Point>& vertices,
                          int quarter) const;

 private:
  ArcFamily(std::vector<double> xs, CurveFamilyKind kind)
      : xs_(std::move(xs)), kind_(kind) {}
  std::vector<double> xs_;
  CurveFamilyKind kind_ = CurveFamilyKind::kUnitCircleArcs;
};

/// The per-shape hash signature: one characteristic curve per quarter
/// (1-based curve ids; 0 means the shape has no vertices in that
/// quarter). This quadruple is also the sort key of the external-storage
/// layouts (Section 4.1).
struct CurveQuadruple {
  int c[4] = {0, 0, 0, 0};

  friend bool operator==(const CurveQuadruple& a, const CurveQuadruple& b) {
    return a.c[0] == b.c[0] && a.c[1] == b.c[1] && a.c[2] == b.c[2] &&
           a.c[3] == b.c[3];
  }

  /// Sort key of method (i): the rounded mean curve.
  int MeanCurve() const;
  /// Sort key of method (iii): of the two median curves, the one closer
  /// to the mean.
  int MedianCurve() const;
};

/// Computes the quadruple of a *normalized* shape: vertices are clamped
/// to the lune, split by quarter, and each non-empty quarter gets its
/// characteristic curve.
CurveQuadruple ComputeQuadruple(const ArcFamily& family,
                                const geom::Polyline& normalized_shape);

}  // namespace geosir::hashing

#endif  // GEOSIR_HASHING_HASH_CURVES_H_
