#ifndef GEOSIR_STORAGE_SHAPE_RECORD_H_
#define GEOSIR_STORAGE_SHAPE_RECORD_H_

#include <cstdint>
#include <vector>

#include "core/normalize.h"
#include "hashing/hash_curves.h"
#include "util/status.h"

namespace geosir::storage {

/// The on-disk representation of one normalized shape copy. With the
/// paper's averages (~20 vertices per shape) a record is ~200 bytes, so
/// about 5 records fit one 1 KiB block — matching the Section 4 setup.
///
/// Layout (little-endian):
///   u32 shape_id, u32 copy_index, u32 image,
///   u16 num_vertices, u8 flags (bit0 = closed), u8 reserved,
///   4 x u8 curve quadruple,
///   4 x f32 to_normalized (a, b, tx, ty),
///   num_vertices x 2 x f32 normalized vertex coordinates.
struct ShapeRecord {
  uint32_t shape_id = 0;
  uint32_t copy_index = 0;
  uint32_t image = 0;
  bool closed = false;
  hashing::CurveQuadruple quadruple;
  float transform[4] = {1.f, 0.f, 0.f, 0.f};
  std::vector<geom::Point> vertices;  // Stored as f32 pairs.

  /// Serialized size in bytes.
  size_t ByteSize() const { return kHeaderBytes + 8 * vertices.size(); }

  static constexpr size_t kHeaderBytes = 4 + 4 + 4 + 2 + 1 + 1 + 4 + 16;
};

/// Builds the record for a normalized copy.
ShapeRecord MakeRecord(const core::NormalizedCopy& copy, uint32_t image,
                       const hashing::CurveQuadruple& quadruple);

/// Appends the serialized record to `out`.
void SerializeRecord(const ShapeRecord& record, std::vector<uint8_t>* out);

/// Parses one record starting at `data[offset]`; advances `offset` past
/// it. Fails on truncated input.
util::Result<ShapeRecord> DeserializeRecord(const std::vector<uint8_t>& data,
                                            size_t* offset);

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_SHAPE_RECORD_H_
