#include "storage/shape_record.h"

#include <cstring>

namespace geosir::storage {

namespace {

template <typename T>
void Append(std::vector<uint8_t>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
util::Result<T> Read(const std::vector<uint8_t>& data, size_t* offset) {
  if (*offset + sizeof(T) > data.size()) {
    return util::Status::Corruption("truncated shape record");
  }
  T value;
  std::memcpy(&value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

}  // namespace

ShapeRecord MakeRecord(const core::NormalizedCopy& copy, uint32_t image,
                       const hashing::CurveQuadruple& quadruple) {
  ShapeRecord record;
  record.shape_id = copy.shape_id;
  record.copy_index = copy.copy_index;
  record.image = image;
  record.closed = copy.shape.closed();
  record.quadruple = quadruple;
  record.transform[0] = static_cast<float>(copy.to_normalized.a());
  record.transform[1] = static_cast<float>(copy.to_normalized.b());
  record.transform[2] = static_cast<float>(copy.to_normalized.translation().x);
  record.transform[3] = static_cast<float>(copy.to_normalized.translation().y);
  record.vertices = copy.shape.vertices();
  return record;
}

void SerializeRecord(const ShapeRecord& record, std::vector<uint8_t>* out) {
  Append<uint32_t>(out, record.shape_id);
  Append<uint32_t>(out, record.copy_index);
  Append<uint32_t>(out, record.image);
  Append<uint16_t>(out, static_cast<uint16_t>(record.vertices.size()));
  Append<uint8_t>(out, record.closed ? 1 : 0);
  Append<uint8_t>(out, 0);  // Reserved.
  for (int q = 0; q < 4; ++q) {
    Append<uint8_t>(out, static_cast<uint8_t>(record.quadruple.c[q]));
  }
  for (float t : record.transform) Append<float>(out, t);
  for (geom::Point p : record.vertices) {
    Append<float>(out, static_cast<float>(p.x));
    Append<float>(out, static_cast<float>(p.y));
  }
}

util::Result<ShapeRecord> DeserializeRecord(const std::vector<uint8_t>& data,
                                            size_t* offset) {
  ShapeRecord record;
  GEOSIR_ASSIGN_OR_RETURN(record.shape_id, Read<uint32_t>(data, offset));
  GEOSIR_ASSIGN_OR_RETURN(record.copy_index, Read<uint32_t>(data, offset));
  GEOSIR_ASSIGN_OR_RETURN(record.image, Read<uint32_t>(data, offset));
  GEOSIR_ASSIGN_OR_RETURN(uint16_t num_vertices,
                          Read<uint16_t>(data, offset));
  GEOSIR_ASSIGN_OR_RETURN(uint8_t flags, Read<uint8_t>(data, offset));
  record.closed = (flags & 1) != 0;
  GEOSIR_ASSIGN_OR_RETURN(uint8_t reserved, Read<uint8_t>(data, offset));
  (void)reserved;
  for (int q = 0; q < 4; ++q) {
    GEOSIR_ASSIGN_OR_RETURN(uint8_t curve, Read<uint8_t>(data, offset));
    record.quadruple.c[q] = curve;
  }
  for (int t = 0; t < 4; ++t) {
    GEOSIR_ASSIGN_OR_RETURN(record.transform[t], Read<float>(data, offset));
  }
  record.vertices.reserve(num_vertices);
  for (uint16_t v = 0; v < num_vertices; ++v) {
    GEOSIR_ASSIGN_OR_RETURN(float x, Read<float>(data, offset));
    GEOSIR_ASSIGN_OR_RETURN(float y, Read<float>(data, offset));
    record.vertices.push_back(geom::Point{x, y});
  }
  return record;
}

}  // namespace geosir::storage
