#include "storage/appendable_file.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define GEOSIR_HAVE_FSYNC 1
#endif

namespace geosir::storage {

namespace {

namespace fs = std::filesystem;

/// Flush stdio buffers and push the bytes to stable media. On Linux this
/// is fdatasync: it flushes the data plus the metadata needed to read it
/// back (the file size), but skips the mtime/atime update that fsync
/// forces through the filesystem journal on every call — a significant
/// saving for a WAL that syncs the same growing file over and over. The
/// stdio fallback (non-POSIX) can only flush to the OS; that is the
/// documented portable behavior, not silent data loss: the format layers
/// above checksum every record precisely because sync can be weaker than
/// fsync.
bool FlushAndSync(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#if defined(__linux__)
  return ::fdatasync(fileno(file)) == 0;
#elif GEOSIR_HAVE_FSYNC
  return ::fsync(fileno(file)) == 0;
#else
  return true;
#endif
}

class PosixAppendableFile : public AppendableFile {
 public:
  PosixAppendableFile(std::FILE* file, uint64_t size)
      : file_(file), size_(size) {}
  ~PosixAppendableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  util::Status Append(const uint8_t* data, size_t size) override {
    if (size != 0 && std::fwrite(data, 1, size, file_) != size) {
      return util::Status::Unavailable("short append");
    }
    size_ += size;
    MaybeHintWriteback();
    return util::Status::OK();
  }

  util::Status Sync() override {
    if (!FlushAndSync(file_)) {
      return util::Status::Unavailable("fsync failed");
    }
    hinted_ = size_;
    return util::Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  /// Kick off asynchronous writeback once enough unsynced bytes pile up,
  /// so a later Sync() mostly waits on the journal commit instead of
  /// streaming megabytes of dirty pages through the disk while the caller
  /// blocks. Purely a performance hint: no durability is claimed until
  /// Sync() returns OK, and failures are ignored (Sync will surface any
  /// real I/O error).
  void MaybeHintWriteback() {
#if defined(__linux__)
    constexpr uint64_t kHintBytes = 64 * 1024;
    if (size_ - hinted_ < kHintBytes) return;
    if (std::fflush(file_) != 0) return;
    (void)::sync_file_range(fileno(file_), 0, 0, SYNC_FILE_RANGE_WRITE);
    hinted_ = size_;
#endif
  }

  std::FILE* file_;
  uint64_t size_;
  uint64_t hinted_ = 0;
};

class PosixEnv : public Env {
 public:
  util::Result<std::unique_ptr<AppendableFile>> NewAppendableFile(
      const std::string& path, bool truncate) override {
    std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (file == nullptr) {
      return util::Status::NotFound("cannot open for appending: " + path);
    }
    uint64_t size = 0;
    if (!truncate) {
      // The initial position of an "ab" stream is implementation-defined
      // (some libcs report 0 until the first write), so seek to the end
      // explicitly to learn the resume size. Appends still go to the end
      // regardless of position; a failed seek only skews Size() and the
      // writeback hinting, never the log contents.
      if (std::fseek(file, 0, SEEK_END) == 0) {
        const long at = std::ftell(file);
        if (at > 0) size = static_cast<uint64_t>(at);
      }
    }
    return std::unique_ptr<AppendableFile>(
        new PosixAppendableFile(file, size));
  }

  util::Result<std::vector<uint8_t>> ReadFileBytes(
      const std::string& path) const override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return util::Status::NotFound("cannot open: " + path);
    }
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
      bytes.insert(bytes.end(), buf, buf + got);
    }
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!ok) return util::Status::Unavailable("read failed: " + path);
    return bytes;
  }

  util::Status WriteFileAtomic(const std::string& path,
                               const std::vector<uint8_t>& bytes) override {
    const std::string tmp = path + ".tmp";
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      return util::Status::NotFound("cannot open for writing: " + tmp);
    }
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
    ok = ok && FlushAndSync(file);
    const bool closed = std::fclose(file) == 0;
    if (!ok || !closed) {
      std::remove(tmp.c_str());
      return util::Status::Internal("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return util::Status::Internal("cannot rename " + tmp + " to " + path);
    }
    const size_t slash = path.find_last_of('/');
    return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
  }

  util::Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return util::Status::NotFound("cannot remove: " + path);
    }
    return util::Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    std::error_code ec;
    return fs::exists(fs::path(path), ec);
  }

  util::Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override {
    std::error_code ec;
    fs::directory_iterator it(fs::path(dir), ec);
    if (ec) return util::Status::NotFound("cannot list: " + dir);
    std::vector<std::string> names;
    for (const fs::directory_entry& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  util::Status CreateDir(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(fs::path(dir), ec);
    if (ec) return util::Status::Internal("cannot create dir: " + dir);
    return util::Status::OK();
  }

  util::Status SyncDir(const std::string& dir) override {
#if GEOSIR_HAVE_FSYNC
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return util::Status::NotFound("cannot open dir: " + dir);
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) return util::Status::Unavailable("fsync(dir) failed: " + dir);
#else
    (void)dir;
#endif
    return util::Status::OK();
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// ---------------------------------------------------------------------------
// MemEnv
// ---------------------------------------------------------------------------

class MemEnv::MemFile : public AppendableFile {
 public:
  explicit MemFile(std::shared_ptr<FileState> state)
      : state_(std::move(state)) {}

  util::Status Append(const uint8_t* data, size_t size) override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->bytes.insert(state_->bytes.end(), data, data + size);
    return util::Status::OK();
  }
  util::Status Sync() override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->synced = state_->bytes.size();
    return util::Status::OK();
  }
  uint64_t Size() const override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->bytes.size();
  }

 private:
  std::shared_ptr<FileState> state_;
};

util::Result<std::unique_ptr<AppendableFile>> MemEnv::NewAppendableFile(
    const std::string& path, bool truncate) {
  GEOSIR_RETURN_IF_ERROR(Gate("open", path));
  std::shared_ptr<FileState> state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = files_[path];
    if (slot == nullptr) slot = std::make_shared<FileState>();
    if (truncate) {
      std::lock_guard<std::mutex> state_lock(slot->mutex);
      slot->bytes.clear();
      slot->synced = 0;
    }
    state = slot;
  }
  std::unique_ptr<AppendableFile> file(new MemFile(std::move(state)));
  if (file_wrapper_) file = file_wrapper_(std::move(file), path);
  return file;
}

util::Result<std::vector<uint8_t>> MemEnv::ReadFileBytes(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return util::Status::NotFound("cannot open: " + path);
  std::lock_guard<std::mutex> state_lock(it->second->mutex);
  return it->second->bytes;
}

util::Status MemEnv::WriteFileAtomic(const std::string& path,
                                     const std::vector<uint8_t>& bytes) {
  GEOSIR_RETURN_IF_ERROR(Gate("write_atomic", path));
  std::lock_guard<std::mutex> lock(mutex_);
  auto state = std::make_shared<FileState>();
  state->bytes = bytes;
  state->synced = bytes.size();  // Atomic writes are durable by contract.
  files_[path] = std::move(state);
  return util::Status::OK();
}

util::Status MemEnv::RemoveFile(const std::string& path) {
  GEOSIR_RETURN_IF_ERROR(Gate("remove", path));
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(path) == 0) {
    return util::Status::NotFound("cannot remove: " + path);
  }
  return util::Status::OK();
}

bool MemEnv::FileExists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) != 0;
}

util::Result<std::vector<std::string>> MemEnv::ListDir(
    const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dirs_.count(dir) == 0) {
    return util::Status::NotFound("cannot list: " + dir);
  }
  const std::string prefix = dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, state] : files_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // std::map iteration order: already sorted.
}

util::Status MemEnv::CreateDir(const std::string& dir) {
  GEOSIR_RETURN_IF_ERROR(Gate("mkdir", dir));
  std::lock_guard<std::mutex> lock(mutex_);
  dirs_[dir] = true;
  return util::Status::OK();
}

std::unique_ptr<MemEnv> MemEnv::CrashImage(
    double unsynced_keep_fraction) const {
  auto image = std::make_unique<MemEnv>();
  std::lock_guard<std::mutex> lock(mutex_);
  image->dirs_ = dirs_;
  for (const auto& [path, state] : files_) {
    auto copy = std::make_shared<FileState>();
    std::lock_guard<std::mutex> state_lock(state->mutex);
    const size_t unsynced = state->bytes.size() - state->synced;
    const size_t keep =
        state->synced +
        static_cast<size_t>(static_cast<double>(unsynced) *
                            std::clamp(unsynced_keep_fraction, 0.0, 1.0));
    copy->bytes.assign(state->bytes.begin(),
                       state->bytes.begin() + static_cast<ptrdiff_t>(keep));
    copy->synced = copy->bytes.size();
    image->files_[path] = std::move(copy);
  }
  return image;
}

uint64_t MemEnv::SyncedSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return 0;
  std::lock_guard<std::mutex> state_lock(it->second->mutex);
  return it->second->synced;
}

}  // namespace geosir::storage
