#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "storage/base_io.h"
#include "util/crc32.h"

namespace geosir::storage {

namespace {

/// Frame layout: u32 payload_len | u64 lsn | u8 type | payload | u32 crc.
constexpr size_t kFrameHeaderBytes = kWalFrameHeaderBytes;
constexpr size_t kFrameOverheadBytes = kWalFrameOverheadBytes;

constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";
constexpr char kCkptPrefix[] = "ckpt-";
constexpr char kCkptSuffix[] = ".gsir";
constexpr uint16_t kMaxLabelLen = 0xFFFF;  // The shape-file format limit.
constexpr size_t kVertexBytes = 2 * sizeof(double);

struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* appended_bytes;
  obs::Counter* syncs;
  obs::Counter* synced_bytes;
  obs::Counter* rotations;
  obs::Counter* recovery_truncated_bytes;
  obs::Counter* recovery_replayed_records;
  obs::Counter* recoveries;
  obs::Counter* recovery_salvaged;
  obs::Counter* recovery_dirty_rotations;
  obs::Counter* recovery_reinitialized;
  obs::Gauge* recovery_generation;
  obs::Gauge* epoch;
  obs::Histogram* replay_latency;

  static const WalMetrics& Get() {
    static const WalMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new WalMetrics();
      m->appends = r.GetCounter("geosir_wal_appends_total",
                                "Records appended to write-ahead logs");
      m->appended_bytes =
          r.GetCounter("geosir_wal_appended_bytes_total",
                       "Framed bytes appended to write-ahead logs");
      m->syncs = r.GetCounter("geosir_wal_syncs_total",
                              "Durability barriers issued by the WAL");
      m->synced_bytes =
          r.GetCounter("geosir_wal_synced_bytes_total",
                       "WAL bytes first covered by a successful sync");
      m->rotations =
          r.GetCounter("geosir_wal_rotations_total",
                       "Checkpoint rotations (new WAL generations)");
      m->recovery_truncated_bytes = r.GetCounter(
          "geosir_recovery_truncated_bytes_total",
          "WAL tail bytes dropped during recovery (torn or corrupt)");
      m->recovery_replayed_records =
          r.GetCounter("geosir_recovery_replayed_records_total",
                       "Mutation records replayed during recovery");
      m->recoveries = r.GetCounter(
          "geosir_recoveries_total",
          "Durable-base opens that recovered an existing generation");
      m->recovery_salvaged = r.GetCounter(
          "geosir_recovery_salvaged_total",
          "Recoveries that cut replay short at a complete-but-corrupt "
          "frame and kept the valid prefix");
      m->recovery_dirty_rotations = r.GetCounter(
          "geosir_recovery_dirty_tail_rotations_total",
          "Recoveries that rotated to a fresh generation because the WAL "
          "tail was torn or salvaged");
      m->recovery_reinitialized = r.GetCounter(
          "geosir_recovery_reinitialized_total",
          "Opens that found no recoverable state and initialized a fresh "
          "generation 0");
      m->recovery_generation = r.GetGauge(
          "geosir_recovery_generation",
          "Generation recovered (or created) by the most recent open");
      m->epoch = r.GetGauge(
          "geosir_wal_epoch",
          "Primary term (epoch) of the most recently opened or rotated "
          "write-ahead log");
      m->replay_latency = r.GetHistogram(
          "geosir_recovery_replay_seconds",
          "Wall-clock latency of one recovery (restore + replay)",
          obs::LatencyBucketsSeconds());
      return m;
    }();
    return *metrics;
  }
};

template <typename T>
void AppendRaw(std::vector<uint8_t>* out, T value) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), bytes, bytes + sizeof(T));
}

/// Bounds-checked decode cursor; any overrun is kCorruption (the frame
/// CRC was valid, so a short payload means a mis-encoded record, not bit
/// rot — either way the record cannot be trusted).
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}
  template <typename T>
  bool Read(T* value) {
    if (sizeof(T) > bytes_.size() - pos_) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool ReadBytes(void* data, size_t size) {
    if (size > bytes_.size() - pos_) return false;
    std::memcpy(data, bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

bool ValidRecordType(uint8_t type) {
  return type >= static_cast<uint8_t>(WalRecordType::kCompactCommit) &&
         type <= static_cast<uint8_t>(WalRecordType::kCompactBegin);
}

/// Parses `<prefix><digits><suffix>` into the generation number.
bool ParseGeneration(const std::string& name, const char* prefix,
                     const char* suffix, uint64_t* generation) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *generation = value;
  return true;
}

}  // namespace

std::string WalPath(const std::string& dir, uint64_t generation) {
  return dir + "/" + kWalPrefix + std::to_string(generation) + kWalSuffix;
}

std::string CheckpointPath(const std::string& dir, uint64_t generation) {
  return dir + "/" + kCkptPrefix + std::to_string(generation) + kCkptSuffix;
}

util::Result<WalDirListing> ListWalDir(Env* env, const std::string& dir) {
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                          env->ListDir(dir));
  WalDirListing listing;
  for (const std::string& name : names) {
    uint64_t generation = 0;
    if (ParseGeneration(name, kWalPrefix, kWalSuffix, &generation)) {
      listing.wal_generations.push_back(generation);
    } else if (ParseGeneration(name, kCkptPrefix, kCkptSuffix, &generation)) {
      listing.ckpt_generations.push_back(generation);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      listing.tmp_names.push_back(name);  // A crash mid-WriteFileAtomic.
    }
  }
  std::sort(listing.wal_generations.begin(), listing.wal_generations.end());
  std::sort(listing.ckpt_generations.begin(), listing.ckpt_generations.end());
  return listing;
}

void AppendWalFrame(std::vector<uint8_t>* out, uint64_t lsn,
                    WalRecordType type, const std::vector<uint8_t>& payload) {
  const size_t start = out->size();
  AppendRaw<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  AppendRaw<uint64_t>(out, lsn);
  AppendRaw<uint8_t>(out, static_cast<uint8_t>(type));
  out->insert(out->end(), payload.begin(), payload.end());
  const uint32_t crc =
      util::Crc32(out->data() + start, kFrameHeaderBytes + payload.size());
  AppendRaw<uint32_t>(out, crc);
}

namespace {

/// Outcome of one DecodeWalFrames pass over a byte range.
struct FrameDecodeResult {
  size_t end_pos = 0;      // First unconsumed byte.
  size_t frames = 0;       // Frames consumed (materialized or skipped).
  uint64_t first_lsn = 0;  // LSN of the first consumed frame (frames > 0).
  bool salvaged = false;   // A complete-but-untrustworthy frame stopped us.
};

/// Core frame decoder shared by ReadWalRecords and ReadWalRecordsSince.
/// Decodes frames from `pos` within [data, data+limit) until the limit, a
/// torn/corrupt frame, or `max_records` materialized records (0 =
/// unlimited). With `expected_lsn` null the chain anchors on the first
/// frame's own LSN; otherwise the first frame must carry *expected_lsn —
/// the resume-cursor contract. Frames with lsn < skip_below are validated
/// (CRC + chain) but not copied into `out`.
FrameDecodeResult DecodeWalFrames(const uint8_t* data, size_t limit,
                                  size_t pos, const uint64_t* expected_lsn,
                                  uint64_t skip_below, size_t max_records,
                                  std::vector<WalRecord>* out) {
  FrameDecodeResult result;
  uint64_t next_expected = expected_lsn != nullptr ? *expected_lsn : 0;
  bool chained = expected_lsn != nullptr;
  while (limit - pos >= kFrameOverheadBytes) {
    if (max_records != 0 && out->size() >= max_records) break;
    uint32_t payload_len = 0;
    std::memcpy(&payload_len, data + pos, sizeof(payload_len));
    const uint64_t frame_bytes =
        kFrameOverheadBytes + static_cast<uint64_t>(payload_len);
    if (frame_bytes > limit - pos) {
      // Incomplete final frame: the normal shape of a crash mid-append.
      // (A corrupted length field lands here too; either way only the
      // valid prefix is replayed.)
      break;
    }
    const uint32_t computed =
        util::Crc32(data + pos, kFrameHeaderBytes + payload_len);
    uint32_t stored = 0;
    std::memcpy(&stored, data + pos + kFrameHeaderBytes + payload_len,
                sizeof(stored));
    if (stored != computed) {
      // A complete frame that fails its checksum: mid-record corruption,
      // not a torn tail. Salvage the prefix.
      result.salvaged = true;
      break;
    }
    uint64_t lsn = 0;
    std::memcpy(&lsn, data + pos + sizeof(uint32_t), sizeof(lsn));
    const uint8_t type = data[pos + sizeof(uint32_t) + sizeof(uint64_t)];
    if (!ValidRecordType(type) || (chained && lsn != next_expected)) {
      // CRC-valid but semantically impossible (unknown type or a broken
      // LSN chain): trust ends here.
      result.salvaged = true;
      break;
    }
    if (result.frames == 0) result.first_lsn = lsn;
    if (lsn >= skip_below) {
      WalRecord record;
      record.lsn = lsn;
      record.type = static_cast<WalRecordType>(type);
      record.payload.assign(data + pos + kFrameHeaderBytes,
                            data + pos + kFrameHeaderBytes + payload_len);
      out->push_back(std::move(record));
    }
    next_expected = lsn + 1;
    chained = true;
    ++result.frames;
    pos += frame_bytes;
  }
  result.end_pos = pos;
  return result;
}

}  // namespace

std::vector<WalRecord> ReadWalRecords(const std::vector<uint8_t>& bytes,
                                      WalReadReport* report) {
  WalReadReport local;
  WalReadReport& rep = report != nullptr ? *report : local;
  rep = WalReadReport{};

  std::vector<WalRecord> records;
  const FrameDecodeResult result =
      DecodeWalFrames(bytes.data(), bytes.size(), 0, /*expected_lsn=*/nullptr,
                      /*skip_below=*/0, /*max_records=*/0, &records);
  rep.salvaged = result.salvaged;
  rep.truncated_bytes = bytes.size() - result.end_pos;
  return records;
}

util::Result<std::vector<WalRecord>> ReadWalRecordsSince(
    Env* env, const std::string& dir, uint64_t generation, uint64_t from_lsn,
    uint64_t committed_bytes, size_t max_records, WalReadReport* report,
    WalTailCursor* cursor) {
  WalReadReport local_report;
  WalReadReport& rep = report != nullptr ? *report : local_report;
  rep = WalReadReport{};
  WalTailCursor local_cursor;
  if (cursor == nullptr) cursor = &local_cursor;

  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          env->ReadFileBytes(WalPath(dir, generation)));
  // Never decode past the writer's committed bound OR the snapshot we
  // actually read: either may be the shorter one (the file can grow after
  // the bound was published, or the read can race the append that the
  // bound already covers on a posix filesystem whose stdio buffer has not
  // reached the file yet).
  const size_t limit =
      static_cast<size_t>(std::min<uint64_t>(bytes.size(), committed_bytes));

  // A cursor from another file, past the new limit, or ahead of the
  // caller's request (a record below the cursor's position cannot be
  // reached by resuming) cannot be used; start over from the head.
  if (cursor->primed &&
      (cursor->generation != generation || cursor->offset > limit ||
       from_lsn < cursor->next_lsn)) {
    *cursor = WalTailCursor{};
  }
  cursor->generation = generation;

  std::vector<WalRecord> records;
  FrameDecodeResult result;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!cursor->primed) {
      result = DecodeWalFrames(bytes.data(), limit, 0, /*expected_lsn=*/nullptr,
                               from_lsn, max_records, &records);
      if (result.frames > 0) {
        cursor->primed = true;
        cursor->base_lsn = result.first_lsn;
        cursor->offset = result.end_pos;
        cursor->next_lsn = result.first_lsn + result.frames;
      }
      break;
    }
    const uint64_t expected = cursor->next_lsn;
    result = DecodeWalFrames(bytes.data(), limit,
                             static_cast<size_t>(cursor->offset), &expected,
                             from_lsn, max_records, &records);
    if (result.frames == 0 && result.salvaged && cursor->offset != 0) {
      // The frame at the remembered offset no longer carries the expected
      // LSN: the file was replaced under the same name (a follower local
      // rewrite). Re-anchor from the head once.
      *cursor = WalTailCursor{};
      cursor->generation = generation;
      continue;
    }
    cursor->offset = result.end_pos;
    cursor->next_lsn += result.frames;
    break;
  }
  rep.salvaged = result.salvaged;
  const bool stopped_by_cap = max_records != 0 && records.size() >= max_records;
  rep.truncated_bytes = stopped_by_cap ? 0 : limit - result.end_pos;
  return records;
}

// --- Payload codecs ---

namespace {

/// Shared insert-payload encoder: `vertex_at(i)` abstracts over
/// WalInsertPayload::vertices and geom::Polyline so the hot journal path
/// can encode straight from the boundary without copying it first.
template <typename VertexAt>
void EncodeInsertFieldsTo(std::vector<uint8_t>* out, uint64_t id,
                          core::ImageId image, const std::string& label,
                          bool closed, size_t num_vertices,
                          VertexAt&& vertex_at) {
  out->reserve(out->size() + 19 + label.size() + num_vertices * kVertexBytes);
  AppendRaw<uint64_t>(out, id);
  AppendRaw<uint32_t>(out, image);
  AppendRaw<uint16_t>(out, static_cast<uint16_t>(label.size()));
  out->insert(out->end(), label.begin(), label.end());
  AppendRaw<uint8_t>(out, closed ? 1 : 0);
  AppendRaw<uint32_t>(out, static_cast<uint32_t>(num_vertices));
  for (size_t v = 0; v < num_vertices; ++v) {
    const geom::Point p = vertex_at(v);
    AppendRaw<double>(out, p.x);
    AppendRaw<double>(out, p.y);
  }
}

}  // namespace

std::vector<uint8_t> EncodeInsert(const WalInsertPayload& payload) {
  std::vector<uint8_t> out;
  EncodeInsertFieldsTo(&out, payload.id, payload.image, payload.label,
                       payload.closed, payload.vertices.size(),
                       [&](size_t v) { return payload.vertices[v]; });
  return out;
}

util::Result<WalInsertPayload> DecodeInsert(
    const std::vector<uint8_t>& bytes) {
  PayloadReader reader(bytes);
  WalInsertPayload payload;
  uint16_t label_len = 0;
  uint8_t closed = 0;
  uint32_t vertices = 0;
  if (!reader.Read(&payload.id) || !reader.Read(&payload.image) ||
      !reader.Read(&label_len)) {
    return util::Status::Corruption("truncated WAL insert payload");
  }
  payload.label.resize(label_len);
  if (!reader.ReadBytes(payload.label.data(), label_len) ||
      !reader.Read(&closed) || !reader.Read(&vertices)) {
    return util::Status::Corruption("truncated WAL insert payload");
  }
  if (static_cast<uint64_t>(vertices) !=
      static_cast<uint64_t>(reader.remaining()) / kVertexBytes) {
    return util::Status::Corruption(
        "WAL insert vertex count does not match payload size");
  }
  payload.closed = closed != 0;
  payload.vertices.reserve(vertices);
  for (uint32_t v = 0; v < vertices; ++v) {
    geom::Point p;
    if (!reader.Read(&p.x) || !reader.Read(&p.y)) {
      return util::Status::Corruption("truncated WAL insert vertices");
    }
    payload.vertices.push_back(p);
  }
  if (!reader.exhausted()) {
    return util::Status::Corruption("trailing bytes in WAL insert payload");
  }
  return payload;
}

std::vector<uint8_t> EncodeRemove(uint64_t id) {
  std::vector<uint8_t> out(sizeof(uint64_t));
  std::memcpy(out.data(), &id, sizeof(id));
  return out;
}

util::Result<uint64_t> DecodeRemove(const std::vector<uint8_t>& bytes) {
  if (bytes.size() != sizeof(uint64_t)) {
    return util::Status::Corruption("WAL remove payload must be 8 bytes");
  }
  uint64_t id = 0;
  std::memcpy(&id, bytes.data(), sizeof(id));
  return id;
}

std::vector<uint8_t> EncodeCommit(const WalCommitPayload& payload) {
  std::vector<uint8_t> out;
  AppendRaw<uint64_t>(&out, payload.generation);
  AppendRaw<uint64_t>(&out, payload.epoch);
  AppendRaw<uint64_t>(&out, payload.epoch_start_lsn);
  AppendRaw<uint64_t>(&out, payload.next_id);
  AppendRaw<uint64_t>(&out, static_cast<uint64_t>(payload.live_ids.size()));
  for (uint64_t id : payload.live_ids) AppendRaw<uint64_t>(&out, id);
  return out;
}

util::Result<WalCommitPayload> DecodeCommit(
    const std::vector<uint8_t>& bytes) {
  PayloadReader reader(bytes);
  WalCommitPayload payload;
  uint64_t count = 0;
  if (!reader.Read(&payload.generation) || !reader.Read(&payload.epoch) ||
      !reader.Read(&payload.epoch_start_lsn) ||
      !reader.Read(&payload.next_id) || !reader.Read(&count)) {
    return util::Status::Corruption("truncated WAL commit payload");
  }
  if (count != reader.remaining() / sizeof(uint64_t)) {
    return util::Status::Corruption(
        "WAL commit id count does not match payload size");
  }
  payload.live_ids.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!reader.Read(&id)) {
      return util::Status::Corruption("truncated WAL commit ids");
    }
    payload.live_ids.push_back(id);
  }
  if (!reader.exhausted()) {
    return util::Status::Corruption("trailing bytes in WAL commit payload");
  }
  return payload;
}

// --- WriteAheadLog ---

WriteAheadLog::WriteAheadLog(std::unique_ptr<AppendableFile> file,
                             WalOptions options, uint64_t next_lsn,
                             uint64_t synced_upto)
    : file_(std::move(file)),
      options_(options),
      next_lsn_(next_lsn),
      synced_upto_(synced_upto),
      // Everything already in the file is complete frames (the caller
      // attaches only after validating a clean tail).
      committed_bytes_(file_->Size()) {}

util::Result<uint64_t> WriteAheadLog::Append(
    WalRecordType type, const std::vector<uint8_t>& payload) {
  if (!sticky_.ok()) return sticky_;
  // The frame scratch keeps its capacity across appends: the common
  // insert path must not pay a heap allocation per record.
  std::vector<uint8_t>& frame = frame_scratch_;
  frame.clear();
  frame.reserve(kFrameOverheadBytes + payload.size());
  const uint64_t lsn = next_lsn_;
  AppendWalFrame(&frame, lsn, type, payload);
  util::Status appended = file_->Append(frame);
  if (!appended.ok()) {
    // A failed append leaves the file tail unknown (a prefix of the
    // frame may be on disk). The error is sticky: appending more would
    // interleave live records with garbage that recovery must discard.
    sticky_ = appended;
    return appended;
  }
  ++next_lsn_;
  ++appends_;
  ++unsynced_records_;
  bytes_since_sync_ += frame.size();
  // Publish the new complete-frame bound only now that the whole frame is
  // in the file: a concurrent tailing reader clamps its decode to this.
  committed_bytes_.fetch_add(frame.size(), std::memory_order_release);
  const WalMetrics& metrics = WalMetrics::Get();
  metrics.appends->Inc();
  metrics.appended_bytes->Inc(frame.size());
  switch (options_.sync_policy) {
    case WalSyncPolicy::kEveryRecord:
      GEOSIR_RETURN_IF_ERROR(SyncLocked());
      break;
    case WalSyncPolicy::kEveryN:
      if (unsynced_records_ >= std::max<size_t>(1, options_.sync_every_n)) {
        GEOSIR_RETURN_IF_ERROR(SyncLocked());
      }
      break;
    case WalSyncPolicy::kOnCheckpoint:
      break;
  }
  return lsn;
}

util::Status WriteAheadLog::Sync() {
  if (!sticky_.ok()) return sticky_;
  if (synced_upto_.load(std::memory_order_relaxed) == next_lsn_) {
    return util::Status::OK();
  }
  return SyncLocked();
}

util::Status WriteAheadLog::SyncLocked() {
  util::Status synced = file_->Sync();
  if (!synced.ok()) {
    // An fsync failure means nothing new is known-durable and the kernel
    // may have dropped the dirty pages; the log is done (rotation heals).
    sticky_ = synced;
    return synced;
  }
  const WalMetrics& metrics = WalMetrics::Get();
  metrics.syncs->Inc();
  metrics.synced_bytes->Inc(bytes_since_sync_);
  synced_upto_.store(next_lsn_, std::memory_order_release);
  unsynced_records_ = 0;
  bytes_since_sync_ = 0;
  return util::Status::OK();
}

util::Result<size_t> WriteAheadLog::TruncateTo(Env* env,
                                               const std::string& path,
                                               uint64_t lsn) {
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          env->ReadFileBytes(path));
  WalReadReport report;
  const std::vector<WalRecord> records = ReadWalRecords(bytes, &report);
  std::vector<uint8_t> prefix;
  size_t kept = 0;
  for (const WalRecord& record : records) {
    if (record.lsn >= lsn) break;
    AppendWalFrame(&prefix, record.lsn, record.type, record.payload);
    ++kept;
  }
  if (kept == 0) {
    return util::Status::FailedPrecondition(
        "TruncateTo(" + std::to_string(lsn) +
        ") would drop the WAL head record of " + path);
  }
  const size_t dropped = records.size() - kept;
  if (dropped == 0 && report.truncated_bytes == 0 && !report.salvaged) {
    return dropped;  // Already a clean prefix below `lsn`: no rewrite.
  }
  GEOSIR_RETURN_IF_ERROR(env->WriteFileAtomic(path, prefix));
  return dropped;
}

// --- WalJournal ---

util::Status WalJournal::BeginEpoch(uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(tail_mutex_);
  if (new_epoch <= epoch_) {
    return util::Status::FailedPrecondition(
        "BeginEpoch(" + std::to_string(new_epoch) +
        ") does not exceed the current epoch " + std::to_string(epoch_));
  }
  epoch_ = new_epoch;
  epoch_pending_ = true;
  return util::Status::OK();
}

util::Status WalJournal::AppendMutation(WalRecordType type,
                                        const std::vector<uint8_t>& payload) {
  if (epoch_pending_) {
    return util::Status::FailedPrecondition(
        "epoch bump pending: the new term must rotate before accepting "
        "mutations");
  }
  if (wal_ == nullptr) {
    return util::Status::FailedPrecondition(
        "journal is detached (recovery has not rotated the log yet)");
  }
  GEOSIR_ASSIGN_OR_RETURN(const uint64_t lsn, wal_->Append(type, payload));
  (void)lsn;
  {
    std::lock_guard<std::mutex> lock(tail_mutex_);
    next_lsn_ = wal_->next_lsn();
  }
  return util::Status::OK();
}

util::Status WalJournal::LogInsert(uint64_t id, const geom::Polyline& boundary,
                                   core::ImageId image,
                                   const std::string& label) {
  if (label.size() > kMaxLabelLen) {
    // The checkpoint format caps labels at u16 length; reject at the WAL
    // so a durable base never accepts a shape it cannot checkpoint.
    return util::Status::InvalidArgument(
        "shape label exceeds 65535 bytes and cannot be stored");
  }
  // Encode straight from the boundary into the reusable scratch: no
  // WalInsertPayload copy, no per-record allocation.
  payload_scratch_.clear();
  EncodeInsertFieldsTo(&payload_scratch_, id, image, label, boundary.closed(),
                       boundary.size(),
                       [&](size_t v) { return boundary.vertex(v); });
  return AppendMutation(WalRecordType::kInsert, payload_scratch_);
}

util::Status WalJournal::LogRemove(uint64_t id) {
  payload_scratch_.resize(sizeof(uint64_t));
  std::memcpy(payload_scratch_.data(), &id, sizeof(id));
  return AppendMutation(WalRecordType::kRemove, payload_scratch_);
}

util::Status WalJournal::LogCompactBegin() {
  // Advisory: a sticky or detached log must not block the compaction
  // that is about to rotate it into a healthy one. Also skipped while an
  // epoch bump is pending: epoch_start_lsn is defined as the first LSN
  // the new term wrote, and the divergence rule treats everything below
  // it as shared history — burning an LSN on an advisory record in the
  // old term's doomed generation would push the boundary one past the
  // promoted replica's applied floor and misclassify the rejoining
  // primary's record at that slot.
  if (wal_ == nullptr || !wal_->status().ok() || epoch_pending_) {
    return util::Status::OK();
  }
  auto lsn = wal_->Append(WalRecordType::kCompactBegin, {});
  if (lsn.ok()) {
    std::lock_guard<std::mutex> lock(tail_mutex_);
    next_lsn_ = wal_->next_lsn();
  }
  return util::Status::OK();
}

util::Status WalJournal::LogCompactCommit(
    const core::ShapeBase& main, const std::vector<uint64_t>& stable_ids,
    uint64_t next_id) {
  const uint64_t old_generation = generation_;
  const uint64_t new_generation = generation_ + 1;
  // Step 1: the checkpoint, durably and atomically. Until step 3 the old
  // generation stays fully recoverable, so a crash (or plain failure)
  // anywhere in here loses nothing.
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> checkpoint,
                          SerializeShapeBase(main));
  GEOSIR_RETURN_IF_ERROR(
      env_->WriteFileAtomic(CheckpointPath(dir_, new_generation), checkpoint));
  // Step 2: the new WAL, whose synced head record binds the checkpoint to
  // its id map. A torn head makes recovery skip this generation.
  GEOSIR_ASSIGN_OR_RETURN(
      std::unique_ptr<AppendableFile> file,
      env_->NewAppendableFile(WalPath(dir_, new_generation),
                              /*truncate=*/true));
  auto wal = std::make_unique<WriteAheadLog>(std::move(file), options_,
                                             next_lsn_,
                                             /*synced_upto=*/next_lsn_);
  // A pending epoch bump takes effect here: this head is the first durable
  // artifact of the new term, so its LSN is where the epoch begins.
  const uint64_t epoch_start = epoch_pending_ ? next_lsn_ : epoch_start_lsn_;
  WalCommitPayload commit;
  commit.generation = new_generation;
  commit.epoch = epoch_;
  commit.epoch_start_lsn = epoch_start;
  commit.next_id = next_id;
  commit.live_ids = stable_ids;
  GEOSIR_RETURN_IF_ERROR(
      wal->Append(WalRecordType::kCompactCommit, EncodeCommit(commit))
          .status());
  GEOSIR_RETURN_IF_ERROR(wal->Sync());
  // The new generation is durable: swap it in and retire the old one.
  // Under the tail mutex so a concurrent tail_state() never pairs the old
  // generation with the new bounds (or vice versa).
  {
    std::lock_guard<std::mutex> lock(tail_mutex_);
    wal_ = std::move(wal);
    generation_ = new_generation;
    next_lsn_ = wal_->next_lsn();
    epoch_start_lsn_ = epoch_start;
    epoch_pending_ = false;
  }
  WalMetrics::Get().epoch->Set(static_cast<int64_t>(epoch_));
  WalMetrics::Get().rotations->Inc();
  // Step 3: best-effort cleanup. A failure here only leaves stale files
  // that the next recovery or rotation removes.
  (void)env_->RemoveFile(WalPath(dir_, old_generation));
  (void)env_->RemoveFile(CheckpointPath(dir_, old_generation));
  return util::Status::OK();
}

util::Status WalJournal::Sync() {
  return wal_ != nullptr ? wal_->Sync() : util::Status::OK();
}

WalTailState WalJournal::tail_state() const {
  std::lock_guard<std::mutex> lock(tail_mutex_);
  WalTailState state;
  state.generation = generation_;
  state.next_lsn = next_lsn_;
  state.epoch = epoch_;
  state.epoch_start_lsn = epoch_start_lsn_;
  state.detached = wal_ == nullptr;
  if (wal_ != nullptr) {
    state.committed_bytes = wal_->committed_bytes();
    state.synced_upto = wal_->synced_upto();
  } else {
    state.synced_upto = next_lsn_;
  }
  return state;
}

// --- Recovery ---

namespace {

/// Replays the post-head records of a WAL onto a restored base.
util::Result<size_t> ReplayRecords(const std::vector<WalRecord>& records,
                                   core::DynamicShapeBase* base) {
  size_t applied = 0;
  for (size_t i = 1; i < records.size(); ++i) {
    const WalRecord& record = records[i];
    switch (record.type) {
      case WalRecordType::kInsert: {
        GEOSIR_ASSIGN_OR_RETURN(WalInsertPayload payload,
                                DecodeInsert(record.payload));
        GEOSIR_RETURN_IF_ERROR(base->ReplayInsert(
            payload.id,
            geom::Polyline(std::move(payload.vertices), payload.closed),
            payload.image, std::move(payload.label)));
        ++applied;
        break;
      }
      case WalRecordType::kRemove: {
        GEOSIR_ASSIGN_OR_RETURN(const uint64_t id,
                                DecodeRemove(record.payload));
        GEOSIR_RETURN_IF_ERROR(base->ReplayRemove(id));
        ++applied;
        break;
      }
      case WalRecordType::kCompactBegin:
        break;  // Advisory marker.
      case WalRecordType::kCompactCommit:
        // Commit records only ever head a WAL file; rotation never
        // appends one mid-log.
        return util::Status::Corruption(
            "unexpected compact-commit record mid-log");
    }
  }
  return applied;
}

}  // namespace

util::Result<DurableDynamicBase> OpenDurableDynamicBase(
    const std::string& dir, core::DynamicShapeBase::Options options,
    const DurabilityOptions& durability, RecoveryReport* report) {
  Env* env = durability.env != nullptr ? durability.env : Env::Posix();
  RecoveryReport local_report;
  RecoveryReport& rep = report != nullptr ? *report : local_report;
  rep = RecoveryReport{};

  GEOSIR_RETURN_IF_ERROR(env->CreateDir(dir));
  GEOSIR_ASSIGN_OR_RETURN(WalDirListing listing, ListWalDir(env, dir));
  std::vector<uint64_t>& wal_generations = listing.wal_generations;
  const std::vector<uint64_t>& ckpt_generations = listing.ckpt_generations;
  const std::vector<std::string>& tmp_leftovers = listing.tmp_names;
  std::sort(wal_generations.rbegin(), wal_generations.rend());

  const auto replay_start = std::chrono::steady_clock::now();
  for (uint64_t generation : wal_generations) {
    auto wal_bytes = env->ReadFileBytes(WalPath(dir, generation));
    if (!wal_bytes.ok()) {
      ++rep.generations_skipped;
      continue;
    }
    WalReadReport wal_report;
    const std::vector<WalRecord> records =
        ReadWalRecords(*wal_bytes, &wal_report);
    if (records.empty() ||
        records.front().type != WalRecordType::kCompactCommit) {
      // Torn or foreign head: the rotation that was creating this
      // generation never finished. Fall back to the previous one.
      ++rep.generations_skipped;
      continue;
    }
    auto commit = DecodeCommit(records.front().payload);
    if (!commit.ok() || commit->generation != generation) {
      ++rep.generations_skipped;
      continue;
    }
    if (commit->next_id > durability.max_recovered_ids) {
      // The head is CRC-valid but demands an id space beyond what this
      // open is willing to materialize (RestoreCheckpoint allocates one
      // placeholder per id). Refuse before the allocation: a fabricated
      // next_id must surface as corruption, not as an OOM kill.
      return util::Status::Corruption(
          "WAL head next_id " + std::to_string(commit->next_id) +
          " exceeds DurabilityOptions::max_recovered_ids " +
          std::to_string(durability.max_recovered_ids) + " in " + dir);
    }
    // A valid head promises a durable checkpoint (it was written first);
    // failing to load it now is real data damage, not a crash artifact.
    GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> ckpt_bytes,
                            env->ReadFileBytes(CheckpointPath(dir, generation)));
    LoadReport load_report;
    GEOSIR_ASSIGN_OR_RETURN(
        std::unique_ptr<core::ShapeBase> checkpoint,
        LoadShapeBaseFromBytes(ckpt_bytes, options.base, {}, &load_report));
    rep.checkpoint_shapes = checkpoint->NumShapes();

    auto base = std::make_unique<core::DynamicShapeBase>(options);
    GEOSIR_RETURN_IF_ERROR(base->RestoreCheckpoint(
        std::move(checkpoint), commit->live_ids, commit->next_id));
    GEOSIR_ASSIGN_OR_RETURN(rep.applied, ReplayRecords(records, base.get()));
    rep.generation = generation;
    rep.epoch = commit->epoch;
    rep.truncated_bytes = wal_report.truncated_bytes;
    rep.salvaged = wal_report.salvaged;

    const WalMetrics& metrics = WalMetrics::Get();
    metrics.recoveries->Inc();
    metrics.recovery_truncated_bytes->Inc(rep.truncated_bytes);
    metrics.recovery_replayed_records->Inc(rep.applied);
    if (rep.salvaged) metrics.recovery_salvaged->Inc();
    metrics.recovery_generation->Set(static_cast<int64_t>(generation));
    metrics.epoch->Set(static_cast<int64_t>(commit->epoch));
    metrics.replay_latency->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      replay_start)
            .count());

    // Retire everything that is not the recovered generation: stale older
    // pairs a crash kept alive, half-rotated newer ones, orphan temps.
    for (uint64_t other : wal_generations) {
      if (other != generation) (void)env->RemoveFile(WalPath(dir, other));
    }
    for (uint64_t other : ckpt_generations) {
      if (other != generation) {
        (void)env->RemoveFile(CheckpointPath(dir, other));
      }
    }
    for (const std::string& name : tmp_leftovers) {
      (void)env->RemoveFile(dir + "/" + name);
    }

    const uint64_t next_lsn = records.back().lsn + 1;
    std::unique_ptr<WalJournal> journal;
    if (rep.truncated_bytes == 0 && !rep.salvaged) {
      // Clean tail: append-attach to the existing WAL. One sync barrier
      // first — the bytes we just read are in the file, but nothing says
      // they were ever fsynced (a clean exit under a lazy sync policy
      // leaves them in the page cache), so construct with synced_upto=0
      // to force a real barrier before anything is reported durable.
      GEOSIR_ASSIGN_OR_RETURN(
          std::unique_ptr<AppendableFile> file,
          env->NewAppendableFile(WalPath(dir, generation),
                                 /*truncate=*/false));
      auto wal = std::make_unique<WriteAheadLog>(std::move(file),
                                                 durability.wal, next_lsn,
                                                 /*synced_upto=*/0);
      GEOSIR_RETURN_IF_ERROR(wal->Sync());
      journal = std::make_unique<WalJournal>(
          env, dir, durability.wal, generation, next_lsn, std::move(wal),
          commit->epoch, commit->epoch_start_lsn);
      base->SetJournal(journal.get());
    } else {
      // Dirty tail: never append after discarded bytes. Attach detached
      // and compact immediately — the commit rotates to a fresh
      // generation that snapshots the recovered state.
      journal = std::make_unique<WalJournal>(
          env, dir, durability.wal, generation, next_lsn,
          /*wal=*/nullptr, commit->epoch, commit->epoch_start_lsn);
      base->SetJournal(journal.get());
      GEOSIR_RETURN_IF_ERROR(base->Compact());
      metrics.recovery_dirty_rotations->Inc();
      metrics.recovery_generation->Set(
          static_cast<int64_t>(journal->generation()));
    }
    return DurableDynamicBase{std::move(base), std::move(journal)};
  }

  // No generation has a valid WAL head. If a checkpoint with real shapes
  // survives, refuse to silently drop it; otherwise (re)initialize.
  for (uint64_t generation : ckpt_generations) {
    auto ckpt_bytes = env->ReadFileBytes(CheckpointPath(dir, generation));
    if (!ckpt_bytes.ok()) continue;
    auto checkpoint = LoadShapeBaseFromBytes(*ckpt_bytes, options.base);
    if (checkpoint.ok() && (*checkpoint)->NumShapes() > 0) {
      return util::Status::Corruption(
          "checkpointed shapes exist but no WAL generation is recoverable "
          "in " +
          dir);
    }
  }
  // Remove only files this layer owns (a user-supplied directory may hold
  // unrelated files): torn WALs, empty checkpoints, orphan temps.
  for (uint64_t generation : wal_generations) {
    (void)env->RemoveFile(WalPath(dir, generation));
  }
  for (uint64_t generation : ckpt_generations) {
    (void)env->RemoveFile(CheckpointPath(dir, generation));
  }
  for (const std::string& name : tmp_leftovers) {
    (void)env->RemoveFile(dir + "/" + name);
  }
  rep.reinitialized = true;
  {
    const WalMetrics& metrics = WalMetrics::Get();
    metrics.recovery_reinitialized->Inc();
    metrics.recovery_generation->Set(0);
  }

  // Fresh generation 0: an empty durable checkpoint plus a WAL whose
  // synced head commits it.
  core::ShapeBase empty(options.base);
  GEOSIR_RETURN_IF_ERROR(empty.Finalize());
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t> checkpoint,
                          SerializeShapeBase(empty));
  GEOSIR_RETURN_IF_ERROR(
      env->WriteFileAtomic(CheckpointPath(dir, 0), checkpoint));
  GEOSIR_ASSIGN_OR_RETURN(
      std::unique_ptr<AppendableFile> file,
      env->NewAppendableFile(WalPath(dir, 0), /*truncate=*/true));
  auto wal = std::make_unique<WriteAheadLog>(std::move(file), durability.wal,
                                             /*next_lsn=*/0,
                                             /*synced_upto=*/0);
  WalCommitPayload commit;
  commit.generation = 0;
  commit.next_id = 0;
  GEOSIR_RETURN_IF_ERROR(
      wal->Append(WalRecordType::kCompactCommit, EncodeCommit(commit))
          .status());
  GEOSIR_RETURN_IF_ERROR(wal->Sync());
  auto base = std::make_unique<core::DynamicShapeBase>(options);
  auto journal = std::make_unique<WalJournal>(
      env, dir, durability.wal, /*generation=*/0, wal->next_lsn(),
      std::move(wal));
  base->SetJournal(journal.get());
  return DurableDynamicBase{std::move(base), std::move(journal)};
}

}  // namespace geosir::storage
