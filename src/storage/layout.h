#ifndef GEOSIR_STORAGE_LAYOUT_H_
#define GEOSIR_STORAGE_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/shape_base.h"
#include "hashing/hash_curves.h"

namespace geosir::storage {

/// External-storage orderings of the shape base (Section 4).
enum class LayoutPolicy {
  /// Insertion order; the do-nothing baseline.
  kInsertionOrder,
  /// Method (i): sort by the rounded mean characteristic curve.
  kMeanCurve,
  /// Method (ii): lexicographic order of the curve quadruple.
  kLexicographic,
  /// Method (iii): sort by the median-of-quadruple curve.
  kMedianCurve,
  /// Section 4.2: greedy per-block local optimization of the average
  /// similarity measure.
  kLocalOptimization,
};

const char* LayoutPolicyName(LayoutPolicy policy);

struct LayoutOptions {
  /// Records per block used by the local-optimization greedy to know
  /// where block boundaries fall (Section 4.2 packs ~5 per 1 KiB block).
  size_t records_per_block = 5;
  /// The greedy's look-back: the first shape of a new block minimizes the
  /// average distance to the first shapes of this many previous blocks.
  size_t lookback_blocks = 5;
  /// Candidate pruning for the greedy: each slot scores the next
  /// `candidate_window` unplaced copies of the mean-curve order. This
  /// keeps rehashing near the paper's O(N^1.5 log N) instead of O(N^2);
  /// the paper does not spell out its pruning rule.
  size_t candidate_window = 32;
};

/// Computes the storage order of the copies of `base` under `policy`;
/// `quadruples[i]` must be the curve quadruple of copy i. Returns a
/// permutation of [0, NumCopies()).
std::vector<uint32_t> ComputeLayout(LayoutPolicy policy,
                                    const core::ShapeBase& base,
                                    const std::vector<hashing::CurveQuadruple>&
                                        quadruples,
                                    const LayoutOptions& options = {});

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_LAYOUT_H_
