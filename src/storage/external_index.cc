#include "storage/external_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "rangesearch/tri_box.h"
#include "util/query_control.h"

namespace geosir::storage {

namespace {

using rangesearch::IndexedPoint;

// On-block layouts (little-endian):
//   leaf:     u16 count, count * { f32 x, f32 y, u32 id }
//   internal: u16 count, u8 child_is_leaf,
//             count * { f32 min_x, f32 min_y, f32 max_x, f32 max_y,
//                       u32 child_block }
constexpr size_t kLeafEntry = 12;
constexpr size_t kInternalEntry = 20;

template <typename T>
void Append(std::vector<uint8_t>* out, T v) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &v, sizeof(T));
}

template <typename T>
T ReadAt(const std::vector<uint8_t>& data, size_t offset) {
  T v;
  std::memcpy(&v, data.data() + offset, sizeof(T));
  return v;
}

struct ChildRef {
  geom::BoundingBox bounds;
  BlockId block;
};

}  // namespace

util::Result<ExternalRTree> ExternalRTree::Build(
    std::vector<IndexedPoint> points, size_t block_size) {
  if (block_size < 64) {
    return util::Status::InvalidArgument("block size too small for a node");
  }
  ExternalRTree tree;
  tree.file_ = BlockFile(block_size);
  tree.num_points_ = points.size();
  // Node payloads leave room for the per-block CRC32 trailer, stamped on
  // every append below and verified by checksumming BufferManagers.
  const size_t payload_cap = BlockPayloadCapacity(block_size);
  const size_t leaf_cap = (payload_cap - 2) / kLeafEntry;
  const size_t internal_cap = (payload_cap - 3) / kInternalEntry;
  const auto append_node = [&tree, block_size](std::vector<uint8_t>* block) {
    StampBlockChecksum(block, block_size);
    return tree.file_.AppendBlock(*block);
  };

  if (points.empty()) {
    // A single empty leaf as the root keeps queries trivial.
    std::vector<uint8_t> block;
    Append<uint16_t>(&block, 0);
    tree.root_ = append_node(&block);
    tree.root_is_leaf_ = true;
    tree.stats_.num_leaves = 1;
    tree.stats_.height = 1;
    return tree;
  }

  // Sort-Tile-Recursive: sort by x, cut into vertical strips, sort each
  // strip by y, pack leaves in order.
  std::sort(points.begin(), points.end(),
            [](const IndexedPoint& a, const IndexedPoint& b) {
              return a.p.x < b.p.x;
            });
  const size_t num_leaves =
      (points.size() + leaf_cap - 1) / leaf_cap;
  const size_t strips = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t strip_points = (points.size() + strips - 1) / strips;
  for (size_t s = 0; s < strips; ++s) {
    const size_t lo = s * strip_points;
    const size_t hi = std::min(points.size(), lo + strip_points);
    if (lo >= hi) break;
    std::sort(points.begin() + lo, points.begin() + hi,
              [](const IndexedPoint& a, const IndexedPoint& b) {
                return a.p.y < b.p.y;
              });
  }

  std::vector<ChildRef> level;
  for (size_t at = 0; at < points.size(); at += leaf_cap) {
    const size_t end = std::min(points.size(), at + leaf_cap);
    std::vector<uint8_t> block;
    Append<uint16_t>(&block, static_cast<uint16_t>(end - at));
    ChildRef ref;
    for (size_t i = at; i < end; ++i) {
      Append<float>(&block, static_cast<float>(points[i].p.x));
      Append<float>(&block, static_cast<float>(points[i].p.y));
      Append<uint32_t>(&block, points[i].id);
      ref.bounds.Extend(points[i].p);
    }
    ref.block = append_node(&block);
    level.push_back(ref);
  }
  tree.stats_.num_leaves = level.size();
  tree.stats_.height = 1;

  bool child_is_leaf = true;
  while (level.size() > 1) {
    std::vector<ChildRef> next;
    for (size_t at = 0; at < level.size(); at += internal_cap) {
      const size_t end = std::min(level.size(), at + internal_cap);
      std::vector<uint8_t> block;
      Append<uint16_t>(&block, static_cast<uint16_t>(end - at));
      Append<uint8_t>(&block, child_is_leaf ? 1 : 0);
      ChildRef ref;
      for (size_t i = at; i < end; ++i) {
        Append<float>(&block, static_cast<float>(level[i].bounds.min_x));
        Append<float>(&block, static_cast<float>(level[i].bounds.min_y));
        Append<float>(&block, static_cast<float>(level[i].bounds.max_x));
        Append<float>(&block, static_cast<float>(level[i].bounds.max_y));
        Append<uint32_t>(&block, level[i].block);
        ref.bounds.Extend(level[i].bounds);
      }
      ref.block = append_node(&block);
      next.push_back(ref);
      ++tree.stats_.num_internal;
    }
    level = std::move(next);
    child_is_leaf = false;
    ++tree.stats_.height;
  }
  tree.root_ = level.front().block;
  tree.root_is_leaf_ = tree.stats_.num_internal == 0;
  return tree;
}

template <typename Emit>
util::Status ExternalRTree::Query(BlockId node, bool leaf,
                                  const geom::Triangle* tri,
                                  const geom::BoundingBox& box,
                                  BufferManager* buffer,
                                  const RTreeQueryConfig& config,
                                  RTreeDegradation* degradation,
                                  const Emit& emit) const {
  // Per-node lifecycle checkpoint: the matcher binds its QueryControl to
  // the querying thread, so an expired deadline or a cancellation aborts
  // the traversal at block granularity. This is a stop, not a fault — it
  // propagates even under kSkipUnreadable (a query out of time must not
  // be misreported as a degraded-but-complete scan), and Pin's retry loop
  // below observes the same control, so no block is re-read past expiry.
  if (const util::QueryControl* control = util::ScopedQueryControl::Active()) {
    GEOSIR_RETURN_IF_ERROR(control->Check());
  }
  auto pinned = buffer->Pin(node);
  if (!pinned.ok()) {
    if (config.policy == DegradePolicy::kSkipUnreadable) {
      // Prune the unreadable subtree: the query result becomes a flagged
      // lower bound instead of an error (or worse, garbage).
      if (degradation != nullptr) {
        degradation->degraded = true;
        ++degradation->skipped_subtrees;
        if (leaf) ++degradation->skipped_leaves;
      }
      return util::Status::OK();
    }
    return pinned.status();
  }
  const std::vector<uint8_t>* raw = *pinned;
  // Copy the node out: recursion below re-pins and may evict this frame.
  const std::vector<uint8_t> block = *raw;
  const uint16_t count = ReadAt<uint16_t>(block, 0);
  if (leaf) {
    size_t offset = 2;
    for (uint16_t i = 0; i < count; ++i, offset += kLeafEntry) {
      const geom::Point p{ReadAt<float>(block, offset),
                          ReadAt<float>(block, offset + 4)};
      if (!box.Contains(p)) continue;
      if (tri != nullptr && !tri->Contains(p)) continue;
      emit(IndexedPoint{p, ReadAt<uint32_t>(block, offset + 8)});
    }
    return util::Status::OK();
  }
  const bool child_is_leaf = ReadAt<uint8_t>(block, 2) != 0;
  size_t offset = 3;
  for (uint16_t i = 0; i < count; ++i, offset += kInternalEntry) {
    geom::BoundingBox child(
        geom::Point{ReadAt<float>(block, offset),
                    ReadAt<float>(block, offset + 4)},
        geom::Point{ReadAt<float>(block, offset + 8),
                    ReadAt<float>(block, offset + 12)});
    // f32 rounding may shrink the stored box below the true extent of
    // the child's points; inflate by one ulp-scale epsilon.
    child.Inflate(1e-5);
    if (!child.Intersects(box)) continue;
    if (tri != nullptr && !rangesearch::TriangleIntersectsBox(*tri, child)) {
      continue;
    }
    GEOSIR_RETURN_IF_ERROR(Query(ReadAt<uint32_t>(block, offset + 16),
                                 child_is_leaf, tri, box, buffer, config,
                                 degradation, emit));
  }
  return util::Status::OK();
}

util::Result<size_t> ExternalRTree::CountInTriangle(
    const geom::Triangle& t, BufferManager* buffer,
    const RTreeQueryConfig& config, RTreeDegradation* degradation) const {
  size_t count = 0;
  GEOSIR_RETURN_IF_ERROR(Query(root_, root_is_leaf_, &t, t.Bounds(), buffer,
                               config, degradation,
                               [&count](const IndexedPoint&) { ++count; }));
  return count;
}

util::Status ExternalRTree::ReportInTriangle(
    const geom::Triangle& t, BufferManager* buffer,
    const rangesearch::SimplexIndex::Visitor& visit,
    const RTreeQueryConfig& config, RTreeDegradation* degradation) const {
  return Query(root_, root_is_leaf_, &t, t.Bounds(), buffer, config,
               degradation, visit);
}

util::Result<size_t> ExternalRTree::CountInRect(
    const geom::BoundingBox& box, BufferManager* buffer,
    const RTreeQueryConfig& config, RTreeDegradation* degradation) const {
  size_t count = 0;
  GEOSIR_RETURN_IF_ERROR(Query(root_, root_is_leaf_, nullptr, box, buffer,
                               config, degradation,
                               [&count](const IndexedPoint&) { ++count; }));
  return count;
}

}  // namespace geosir::storage
