#ifndef GEOSIR_STORAGE_EXTERNAL_SIMPLEX_INDEX_H_
#define GEOSIR_STORAGE_EXTERNAL_SIMPLEX_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "rangesearch/simplex_index.h"
#include "storage/external_index.h"
#include "storage/fault_injection.h"

namespace geosir::storage {

/// SimplexIndex adapter over ExternalRTree + BufferManager, so a
/// ShapeBase (via ShapeBaseOptions::index_factory) and therefore the
/// EnvelopeMatcher can run directly against external storage — including
/// a faulty one. This is the hook the fault-injection harness uses to
/// drive whole Match() calls through injected faults.
///
/// Fault behaviour per the configured DegradePolicy:
///  * kFailFast: the failed query contributes nothing and the error is
///    retrievable via TakeLastError() (the matcher aborts with it).
///  * kSkipUnreadable: unreadable subtrees are pruned; the skip counters
///    land in stats().subtrees_skipped / leaves_skipped, which the
///    matcher turns into a `degraded` flag on the match result.
class ExternalSimplexIndex : public rangesearch::SimplexIndex {
 public:
  struct Options {
    size_t block_size = 1024;
    size_t buffer_capacity_blocks = 64;
    BufferOptions buffer;
    RTreeQueryConfig query;
    /// Optional fault plan injected between the tree's block file and the
    /// buffer. Checksums are verified by default so injected bit flips
    /// surface as kCorruption, not garbage.
    FaultPlan faults;
    bool inject_faults = false;

    Options() { buffer.verify_checksums = true; }
  };

  explicit ExternalSimplexIndex(Options options = {});
  ~ExternalSimplexIndex() override;

  void Build(std::vector<rangesearch::IndexedPoint> points) override;
  size_t CountInTriangle(const geom::Triangle& t) const override;
  void ReportInTriangle(const geom::Triangle& t,
                        const Visitor& visit) const override;
  size_t CountInRect(const geom::BoundingBox& box) const override;
  void ReportInRect(const geom::BoundingBox& box,
                    const Visitor& visit) const override;
  std::string name() const override { return "external-rtree"; }
  size_t size() const override;

  util::Status TakeLastError() const override;

  /// Aggregate degradation over all queries since construction.
  const RTreeDegradation& degradation() const { return degradation_; }
  const ExternalRTree* tree() const { return tree_.get(); }
  BufferManager* buffer() const { return buffer_.get(); }

 private:
  /// Folds one query operation's outcome into the aggregate stats.
  /// `pins_before` is buffer()->pins() captured before the operation; the
  /// delta (minus failed pins) becomes stats().nodes_visited.
  void RecordOutcome(const util::Status& status,
                     const RTreeDegradation& degradation,
                     uint64_t pins_before) const;

  Options options_;
  std::unique_ptr<ExternalRTree> tree_;
  std::unique_ptr<FaultInjectingDevice> faulty_;
  mutable std::unique_ptr<BufferManager> buffer_;
  mutable RTreeDegradation degradation_;
  mutable util::Status last_error_;
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_EXTERNAL_SIMPLEX_INDEX_H_
