#ifndef GEOSIR_STORAGE_APPENDABLE_FILE_H_
#define GEOSIR_STORAGE_APPENDABLE_FILE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace geosir::storage {

/// Append-only byte stream, the write-side primitive under the WAL —
/// BlockDevice's sibling for unstructured sequential logs. Durability
/// contract: bytes from a successful Append may still be lost in a crash
/// until a successful Sync covers them; after Sync returns OK, every byte
/// appended before the call survives power loss. A failed Append or Sync
/// leaves the tail state unknown (a prefix of the payload may have been
/// persisted), so callers that need a recoverable stream must frame and
/// checksum their records (storage/wal.h does).
class AppendableFile {
 public:
  virtual ~AppendableFile() = default;

  virtual util::Status Append(const uint8_t* data, size_t size) = 0;
  util::Status Append(const std::vector<uint8_t>& bytes) {
    return Append(bytes.data(), bytes.size());
  }

  /// Durability barrier (fsync). On OK, everything appended so far is on
  /// stable media.
  virtual util::Status Sync() = 0;

  /// Bytes appended so far (successful appends only).
  virtual uint64_t Size() const = 0;
};

/// Minimal filesystem environment the durability layer runs against.
/// Production code uses Env::Posix(); crash-recovery tests substitute a
/// MemEnv whose files remember which prefix was synced, so a simulated
/// power cut can discard exactly the bytes a real disk could lose.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending; `truncate` discards existing contents,
  /// otherwise appends at the current end.
  virtual util::Result<std::unique_ptr<AppendableFile>> NewAppendableFile(
      const std::string& path, bool truncate) = 0;

  virtual util::Result<std::vector<uint8_t>> ReadFileBytes(
      const std::string& path) const = 0;

  /// Durable atomic replacement of `path` with `bytes`: writes a sibling
  /// temp file, fsyncs it, renames into place and fsyncs the directory.
  /// After OK, a crash yields either the old or the new content, never a
  /// mix, and the new content survives power loss. The temp file is
  /// removed on every error path.
  virtual util::Status WriteFileAtomic(const std::string& path,
                                       const std::vector<uint8_t>& bytes) = 0;

  virtual util::Status RemoveFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) const = 0;
  /// Names (not paths) of directory entries; kNotFound if `dir` is absent.
  virtual util::Result<std::vector<std::string>> ListDir(
      const std::string& dir) const = 0;
  /// Creates `dir` (one level); OK if it already exists.
  virtual util::Status CreateDir(const std::string& dir) = 0;
  /// Fsyncs a directory so renames/creations inside it survive a crash.
  /// No-op where the platform has no directory sync.
  virtual util::Status SyncDir(const std::string& dir) = 0;

  /// The process-wide real-filesystem environment.
  static Env* Posix();
};

/// In-memory Env for deterministic crash-recovery tests. Each file tracks
/// its synced prefix; CrashImage() materializes "what the disk would hold
/// after a power cut", truncating every file's unsynced suffix to a
/// caller-chosen fraction (0.0 = page cache fully lost, 1.0 = fully
/// flushed; intermediate values produce torn tails that cut records in
/// half). WriteFileAtomic is modeled as atomic and durable, matching the
/// fsync-then-rename-then-dirsync sequence of the posix Env.
///
/// Two hooks wire fault injection in without MemEnv knowing about it:
/// `file_wrapper` decorates every opened file (CrashInjectingFile), and
/// `op_gate` runs before each mutating Env operation and can fail it
/// (kill-after-k-operations crash simulation).
class MemEnv : public Env {
 public:
  using FileWrapper = std::function<std::unique_ptr<AppendableFile>(
      std::unique_ptr<AppendableFile> inner, const std::string& path)>;
  /// Called with an operation name ("open", "write_atomic", "remove",
  /// "mkdir") and the target path; a non-OK return fails the operation.
  using OpGate =
      std::function<util::Status(const char* op, const std::string& path)>;

  MemEnv() = default;

  void set_file_wrapper(FileWrapper wrapper) {
    file_wrapper_ = std::move(wrapper);
  }
  void set_op_gate(OpGate gate) { op_gate_ = std::move(gate); }

  util::Result<std::unique_ptr<AppendableFile>> NewAppendableFile(
      const std::string& path, bool truncate) override;
  util::Result<std::vector<uint8_t>> ReadFileBytes(
      const std::string& path) const override;
  util::Status WriteFileAtomic(const std::string& path,
                               const std::vector<uint8_t>& bytes) override;
  util::Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  util::Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override;
  util::Status CreateDir(const std::string& dir) override;
  util::Status SyncDir(const std::string& /*dir*/) override {
    return util::Status::OK();
  }

  /// The on-disk state after a simulated power cut: a fresh MemEnv (no
  /// wrapper, no gate) where each file keeps its synced prefix plus
  /// floor(`unsynced_keep_fraction` * unsynced bytes) of the tail.
  std::unique_ptr<MemEnv> CrashImage(double unsynced_keep_fraction) const;

  /// Synced prefix length of `path` (0 if absent). Test introspection.
  uint64_t SyncedSize(const std::string& path) const;

 private:
  struct FileState {
    /// Guards bytes/synced. A replication follower tails a file that the
    /// primary is still appending to, so the writer (MemFile, which holds
    /// only the FileState) and readers (Env operations, which hold the env
    /// mutex first) must serialize per file. Lock order: env mutex_ before
    /// state mutex; MemFile never takes the env mutex.
    mutable std::mutex mutex;
    std::vector<uint8_t> bytes;
    size_t synced = 0;  // Prefix guaranteed to survive a crash.
  };
  class MemFile;

  util::Status Gate(const char* op, const std::string& path) {
    return op_gate_ ? op_gate_(op, path) : util::Status::OK();
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  std::map<std::string, bool> dirs_;
  FileWrapper file_wrapper_;
  OpGate op_gate_;
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_APPENDABLE_FILE_H_
