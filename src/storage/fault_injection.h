#ifndef GEOSIR_STORAGE_FAULT_INJECTION_H_
#define GEOSIR_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/appendable_file.h"
#include "storage/block_device.h"

namespace geosir::storage {

/// Fault kinds a FaultInjectingDevice or CrashInjectingFile can inject.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The operation fails with kUnavailable; the underlying bytes are
  /// untouched, so a retry succeeds (unless another fault fires).
  kTransientFailure,
  /// A single bit of the *returned copy* of the block is flipped (a
  /// read-path error: re-reading returns clean bytes).
  kBitFlip,
  /// Only a prefix of the block is persisted and the write reports
  /// kUnavailable (a torn write: the medium now holds a half-old,
  /// half-new block).
  kTornWrite,
  /// A prefix of an append is persisted and the append reports
  /// kUnavailable (the file-stream flavor of a torn write).
  kShortWrite,
  /// Sync()/fsync fails with kUnavailable: nothing new became durable,
  /// and the caller cannot know how much of the tail is on stable media.
  kSyncFailure,
};

/// A fault pinned to one specific operation (0-based index into the
/// device's read or write operation stream). Schedules compose with the
/// rate-driven faults below; they make single-fault tests exact.
struct ScheduledFault {
  uint64_t op_index = 0;
  FaultKind kind = FaultKind::kNone;
};

/// Deterministic, seed-driven fault model. Every probabilistic decision
/// is a pure hash of (seed, operation index) or (seed, block id), so a
/// given plan injects exactly the same faults on every run and does not
/// depend on unrelated RNG draws.
struct FaultPlan {
  uint64_t seed = 1;

  /// Per-read probability of a transient kUnavailable failure.
  double read_failure_rate = 0.0;
  /// Per-read probability of a single-bit flip in the returned copy
  /// (heals on retry).
  double read_flip_rate = 0.0;
  /// Per-block probability of *persistent* bit rot: an affected block
  /// comes back with the same bit flipped on every read. Detectable only
  /// by checksums; never heals.
  double sticky_flip_rate = 0.0;

  /// Per-write (and per-append) probability of a transient kUnavailable
  /// failure with no bytes persisted.
  double write_failure_rate = 0.0;
  /// Per-write probability of a torn write (prefix persisted, then
  /// kUnavailable reported).
  double torn_write_rate = 0.0;
  /// Per-Sync probability of an fsync failure (kUnavailable; nothing new
  /// became durable). The one failure model shared by the block-device
  /// benchmarks and the WAL's CrashInjectingFile.
  double sync_failure_rate = 0.0;

  /// Exact-operation faults, applied in addition to the rates.
  std::vector<ScheduledFault> read_schedule;
  std::vector<ScheduledFault> write_schedule;
  /// Indexed by the device's own Sync-operation stream.
  std::vector<ScheduledFault> sync_schedule;
};

/// Decorator that injects faults between a caller and an inner device.
/// Constructed over a const device it is read-only (writes fail with
/// kFailedPrecondition); over a mutable device it also injects write
/// faults. Stacking order for a verified read path:
///
///   BlockFile -> FaultInjectingDevice -> BufferManager(verify, retry)
class FaultInjectingDevice : public BlockDevice {
 public:
  /// Read-only decoration (e.g. over ExternalRTree::file()).
  FaultInjectingDevice(const BlockDevice* inner, FaultPlan plan)
      : ro_(inner), rw_(nullptr), plan_(std::move(plan)) {}
  /// Read-write decoration.
  FaultInjectingDevice(BlockDevice* inner, FaultPlan plan)
      : ro_(inner), rw_(inner), plan_(std::move(plan)) {}

  size_t block_size() const override { return ro_->block_size(); }
  size_t NumBlocks() const override { return ro_->NumBlocks(); }

  util::Result<BlockId> Append(const std::vector<uint8_t>& payload) override;
  util::Result<std::vector<uint8_t>> Read(BlockId id) const override;
  util::Status Write(BlockId id, const std::vector<uint8_t>& payload) override;
  util::Status Flush() override;
  util::Status Sync() override;

  uint64_t read_ops() const { return read_ops_; }
  uint64_t write_ops() const { return write_ops_; }
  uint64_t sync_ops() const { return sync_ops_; }
  uint64_t injected_read_failures() const { return injected_read_failures_; }
  uint64_t injected_write_failures() const { return injected_write_failures_; }
  uint64_t injected_bit_flips() const { return injected_bit_flips_; }
  uint64_t injected_torn_writes() const { return injected_torn_writes_; }
  uint64_t injected_sync_failures() const { return injected_sync_failures_; }

 private:
  /// Fault decision for write op `op` (schedule first, then rates).
  FaultKind WriteFaultFor(uint64_t op) const;

  const BlockDevice* ro_;
  BlockDevice* rw_;
  FaultPlan plan_;

  mutable uint64_t read_ops_ = 0;
  uint64_t write_ops_ = 0;
  uint64_t sync_ops_ = 0;
  mutable uint64_t injected_read_failures_ = 0;
  uint64_t injected_write_failures_ = 0;
  mutable uint64_t injected_bit_flips_ = 0;
  uint64_t injected_torn_writes_ = 0;
  uint64_t injected_sync_failures_ = 0;
};

/// Shared operation clock + kill switch for crash simulation. Every
/// write-path boundary (file Append, file Sync, and — via MemEnv's op
/// gate — atomic writes, opens and removes) consumes one tick; once the
/// configured crash point is reached, that operation and everything after
/// it fails with kUnavailable, simulating the process dying mid-workload.
/// A clock constructed with kNever just counts boundaries, which is how
/// the crash matrix learns how many points it must enumerate.
class CrashClock {
 public:
  static constexpr uint64_t kNever = ~0ull;

  explicit CrashClock(uint64_t crash_at_op = kNever)
      : crash_at_op_(crash_at_op) {}

  /// Consumes one boundary; false once the crash point is reached (the
  /// op with index `crash_at_op` is the first to fail).
  bool Tick() { return ops_++ < crash_at_op_; }
  bool dead() const { return ops_ > crash_at_op_; }
  uint64_t ops() const { return ops_; }

 private:
  uint64_t ops_ = 0;
  uint64_t crash_at_op_;
};

/// Write-path fault plan for an append-only file. Deterministic in the
/// same seed/op-index style as FaultPlan.
struct FileFaultPlan {
  uint64_t seed = 1;
  /// Per-append probability of a short write: a prefix is persisted and
  /// the append fails kUnavailable.
  double short_write_rate = 0.0;
  /// Per-op probability (drawn on Sync ops) of an fsync failure.
  double sync_failure_rate = 0.0;
  /// Exact-operation faults over the file's combined Append+Sync op
  /// stream (kShortWrite, kSyncFailure, kTransientFailure).
  std::vector<ScheduledFault> schedule;
};

/// Decorator over an AppendableFile that injects write-path faults and
/// honors a CrashClock: the deterministic crash-point engine behind
/// tests/crash_recovery_test.cc. Each Append and each Sync is one op.
class CrashInjectingFile : public AppendableFile {
 public:
  CrashInjectingFile(std::unique_ptr<AppendableFile> inner, CrashClock* clock,
                     FileFaultPlan plan = {})
      : inner_(std::move(inner)), clock_(clock), plan_(std::move(plan)) {}

  util::Status Append(const uint8_t* data, size_t size) override;
  util::Status Sync() override;
  uint64_t Size() const override { return inner_->Size(); }

  uint64_t ops() const { return ops_; }
  uint64_t injected_short_writes() const { return injected_short_writes_; }
  uint64_t injected_sync_failures() const { return injected_sync_failures_; }

 private:
  FaultKind FaultFor(uint64_t op, bool is_sync) const;

  std::unique_ptr<AppendableFile> inner_;
  CrashClock* clock_;  // Optional; may be shared across files.
  FileFaultPlan plan_;
  uint64_t ops_ = 0;
  uint64_t injected_short_writes_ = 0;
  uint64_t injected_sync_failures_ = 0;
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_FAULT_INJECTION_H_
