#ifndef GEOSIR_STORAGE_BLOCK_DEVICE_H_
#define GEOSIR_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace geosir::storage {

using BlockId = uint32_t;

/// Abstract fixed-block-size storage device. The paper's experiments use
/// one concrete in-memory implementation (BlockFile); the fault-tolerance
/// layer stacks decorators over it (FaultInjectingDevice) and reads
/// through BufferManager, which adds retry and checksum verification.
///
/// Failure contract: reads and writes may fail with
///   * kOutOfRange    — the block id does not exist (permanent),
///   * kUnavailable   — a transient fault; retrying may succeed,
///   * kCorruption    — the stored bytes are damaged (detected by a
///                      checksumming layer above the device).
/// A device never returns garbage silently *through* BufferManager when
/// checksum verification is enabled; a bare device read returns whatever
/// bytes the medium holds.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual size_t block_size() const = 0;
  virtual size_t NumBlocks() const = 0;

  /// Appends a new block (payload truncated/zero-padded to block size)
  /// and returns its id.
  virtual util::Result<BlockId> Append(const std::vector<uint8_t>& payload) = 0;

  /// Reads a block; counts one physical read.
  virtual util::Result<std::vector<uint8_t>> Read(BlockId id) const = 0;

  /// Overwrites a block; counts one physical write.
  virtual util::Status Write(BlockId id,
                             const std::vector<uint8_t>& payload) = 0;

  /// Pushes buffered writes toward the medium without a durability
  /// guarantee (an OS-level flush). In-memory devices no-op.
  virtual util::Status Flush() { return util::Status::OK(); }

  /// Durability barrier: after OK, every acknowledged Append/Write is on
  /// stable media. May fail with kUnavailable (an fsync failure — the
  /// caller must assume nothing new became durable); decorators forward
  /// and may inject such failures (FaultInjectingDevice). This is the
  /// same failure model the WAL's AppendableFile::Sync follows, so the
  /// buffer benchmarks and the durability layer are testable with one
  /// fault vocabulary.
  virtual util::Status Sync() { return Flush(); }
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_BLOCK_DEVICE_H_
