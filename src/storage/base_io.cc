#include "storage/base_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

namespace geosir::storage {

namespace {

constexpr uint32_t kMagic = 0x52495347;  // "GSIR".
constexpr uint32_t kVersion = 1;

class FileWriter {
 public:
  explicit FileWriter(std::FILE* file) : file_(file) {}
  template <typename T>
  bool Write(T value) {
    return std::fwrite(&value, sizeof(T), 1, file_) == 1;
  }
  bool WriteBytes(const void* data, size_t size) {
    return size == 0 || std::fwrite(data, 1, size, file_) == size;
  }

 private:
  std::FILE* file_;
};

class FileReader {
 public:
  explicit FileReader(std::FILE* file) : file_(file) {}
  template <typename T>
  bool Read(T* value) {
    return std::fread(value, sizeof(T), 1, file_) == 1;
  }
  bool ReadBytes(void* data, size_t size) {
    return size == 0 || std::fread(data, 1, size, file_) == size;
  }

 private:
  std::FILE* file_;
};

}  // namespace

util::Status SaveShapeBase(const core::ShapeBase& base,
                           const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::NotFound("cannot open for writing: " + path);
  }
  FileWriter writer(file);
  bool ok = writer.Write<uint32_t>(kMagic) && writer.Write<uint32_t>(kVersion) &&
            writer.Write<uint64_t>(base.NumShapes());
  for (const core::Shape& shape : base.shapes()) {
    if (!ok) break;
    ok = writer.Write<uint32_t>(shape.image) &&
         writer.Write<uint16_t>(
             static_cast<uint16_t>(shape.label.size())) &&
         writer.WriteBytes(shape.label.data(), shape.label.size()) &&
         writer.Write<uint8_t>(shape.boundary.closed() ? 1 : 0) &&
         writer.Write<uint32_t>(
             static_cast<uint32_t>(shape.boundary.size()));
    for (size_t v = 0; ok && v < shape.boundary.size(); ++v) {
      const geom::Point p = shape.boundary.vertex(v);
      ok = writer.Write<double>(p.x) && writer.Write<double>(p.y);
    }
  }
  const bool closed = std::fclose(file) == 0;
  if (!ok || !closed) {
    return util::Status::Internal("short write to " + path);
  }
  return util::Status::OK();
}

util::Result<std::unique_ptr<core::ShapeBase>> LoadShapeBase(
    const std::string& path, core::ShapeBaseOptions options) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::NotFound("cannot open: " + path);
  }
  FileReader reader(file);
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    std::fclose(file);
    return util::Status::Corruption("not a GeoSIR shape file: " + path);
  }
  if (!reader.Read(&version) || version != kVersion) {
    std::fclose(file);
    return util::Status::NotSupported("unsupported shape file version");
  }
  if (!reader.Read(&count)) {
    std::fclose(file);
    return util::Status::Corruption("truncated header");
  }

  auto base = std::make_unique<core::ShapeBase>(std::move(options));
  for (uint64_t s = 0; s < count; ++s) {
    uint32_t image = 0, vertices = 0;
    uint16_t label_len = 0;
    uint8_t closed = 0;
    if (!reader.Read(&image) || !reader.Read(&label_len)) {
      std::fclose(file);
      return util::Status::Corruption("truncated shape header");
    }
    std::string label(label_len, '\0');
    if (!reader.ReadBytes(label.data(), label_len) || !reader.Read(&closed) ||
        !reader.Read(&vertices)) {
      std::fclose(file);
      return util::Status::Corruption("truncated shape record");
    }
    std::vector<geom::Point> pts;
    pts.reserve(vertices);
    for (uint32_t v = 0; v < vertices; ++v) {
      double x = 0, y = 0;
      if (!reader.Read(&x) || !reader.Read(&y)) {
        std::fclose(file);
        return util::Status::Corruption("truncated vertex data");
      }
      pts.push_back(geom::Point{x, y});
    }
    auto id = base->AddShape(geom::Polyline(std::move(pts), closed != 0),
                             image, std::move(label));
    if (!id.ok()) {
      std::fclose(file);
      return id.status();
    }
  }
  std::fclose(file);
  GEOSIR_RETURN_IF_ERROR(base->Finalize());
  return base;
}

}  // namespace geosir::storage
