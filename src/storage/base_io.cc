#include "storage/base_io.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "storage/appendable_file.h"
#include "util/crc32.h"

namespace geosir::storage {

namespace {

constexpr uint32_t kMagic = 0x52495347;  // "GSIR".
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr uint16_t kMaxLabelLen = 0xFFFF;
constexpr size_t kVertexBytes = 2 * sizeof(double);

/// Serializer into a growable byte buffer with a running CRC32 per
/// record. Buffer-based (rather than stdio) so the same bytes can go to a
/// durable atomic file write or into a WAL checkpoint payload.
class BufferWriter {
 public:
  explicit BufferWriter(std::vector<uint8_t>* out) : out_(out) {}
  template <typename T>
  void Write(T value) {
    WriteBytes(&value, sizeof(T));
  }
  void WriteBytes(const void* data, size_t size) {
    crc_ = util::Crc32(data, size, crc_);
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), bytes, bytes + size);
  }
  /// Writes the running checksum itself (resets it for the next record).
  void WriteCrc() {
    const uint32_t crc = crc_;
    crc_ = 0;
    const uint8_t* bytes = reinterpret_cast<const uint8_t*>(&crc);
    out_->insert(out_->end(), bytes, bytes + sizeof(crc));
  }

 private:
  std::vector<uint8_t>* out_;
  uint32_t crc_ = 0;
};

/// Cursor over an in-memory shape file with the same CRC discipline.
class BufferReader {
 public:
  explicit BufferReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}
  template <typename T>
  bool Read(T* value) {
    return ReadBytes(value, sizeof(T));
  }
  bool ReadBytes(void* data, size_t size) {
    if (size > bytes_.size() - pos_) return false;
    std::memcpy(data, bytes_.data() + pos_, size);
    crc_ = util::Crc32(data, size, crc_);
    pos_ += size;
    return true;
  }
  /// Reads a stored CRC32 and checks it against the running checksum of
  /// everything read since the last check (the CRC field itself is not
  /// part of its own coverage). Resets the running checksum.
  bool ReadAndCheckCrc() {
    const uint32_t expected = crc_;
    uint32_t stored = 0;
    if (sizeof(stored) > bytes_.size() - pos_) return false;
    std::memcpy(&stored, bytes_.data() + pos_, sizeof(stored));
    pos_ += sizeof(stored);
    crc_ = 0;
    return stored == expected;
  }
  void ResetCrc() { crc_ = 0; }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
  uint32_t crc_ = 0;
};

}  // namespace

util::Result<std::vector<uint8_t>> SerializeShapeBase(
    const core::ShapeBase& base) {
  for (const core::Shape& shape : base.shapes()) {
    if (shape.label.size() > kMaxLabelLen) {
      return util::Status::InvalidArgument(
          "shape label exceeds 65535 bytes and cannot be stored");
    }
  }
  std::vector<uint8_t> out;
  BufferWriter writer(&out);
  writer.Write<uint32_t>(kMagic);
  writer.Write<uint32_t>(kVersionV2);
  writer.Write<uint64_t>(base.NumShapes());
  writer.WriteCrc();
  for (const core::Shape& shape : base.shapes()) {
    writer.Write<uint32_t>(shape.image);
    writer.Write<uint16_t>(static_cast<uint16_t>(shape.label.size()));
    writer.WriteBytes(shape.label.data(), shape.label.size());
    writer.Write<uint8_t>(shape.boundary.closed() ? 1 : 0);
    writer.Write<uint32_t>(static_cast<uint32_t>(shape.boundary.size()));
    for (size_t v = 0; v < shape.boundary.size(); ++v) {
      const geom::Point p = shape.boundary.vertex(v);
      writer.Write<double>(p.x);
      writer.Write<double>(p.y);
    }
    writer.WriteCrc();
  }
  return out;
}

util::Status SaveShapeBase(const core::ShapeBase& base,
                           const std::string& path) {
  GEOSIR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          SerializeShapeBase(base));
  // Durable atomic replacement: write `path + ".tmp"`, fsync it, rename
  // into place, fsync the directory; the temp file is removed on every
  // error path. A crash mid-save leaves the previous file intact, and a
  // completed save survives power loss.
  return Env::Posix()->WriteFileAtomic(path, bytes);
}

util::Result<std::unique_ptr<core::ShapeBase>> LoadShapeBaseFromBytes(
    const std::vector<uint8_t>& bytes, core::ShapeBaseOptions options,
    const LoadOptions& load_options, LoadReport* report) {
  LoadReport local_report;
  LoadReport& rep = report != nullptr ? *report : local_report;
  rep = LoadReport{};

  BufferReader reader(bytes);
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  // Header corruption is never salvageable: without a trusted version we
  // cannot parse anything that follows.
  if (!reader.Read(&magic) || magic != kMagic) {
    return util::Status::Corruption("not a GeoSIR shape file");
  }
  if (!reader.Read(&version) ||
      (version != kVersionV1 && version != kVersionV2)) {
    return util::Status::NotSupported("unsupported shape file version");
  }
  rep.version = version;
  const bool checksummed = version == kVersionV2;
  if (!reader.Read(&count) || (checksummed && !reader.ReadAndCheckCrc())) {
    return util::Status::Corruption("truncated or corrupt header");
  }
  reader.ResetCrc();
  rep.shapes_expected = count;

  auto base = std::make_unique<core::ShapeBase>(std::move(options));
  util::Status record_error;  // First bad record (drives salvage).
  for (uint64_t s = 0; s < count; ++s) {
    uint32_t image = 0, vertices = 0;
    uint16_t label_len = 0;
    uint8_t closed = 0;
    if (!reader.Read(&image) || !reader.Read(&label_len)) {
      record_error = util::Status::Corruption("truncated shape header");
      break;
    }
    std::string label(label_len, '\0');
    if (!reader.ReadBytes(label.data(), label_len) || !reader.Read(&closed) ||
        !reader.Read(&vertices)) {
      record_error = util::Status::Corruption("truncated shape record");
      break;
    }
    // Validate the on-disk count before trusting it with an allocation: a
    // corrupt u32 here could demand a multi-GB reserve. The remaining
    // bytes bound the plausible count exactly.
    if (static_cast<uint64_t>(vertices) >
        static_cast<uint64_t>(reader.remaining()) / kVertexBytes) {
      record_error = util::Status::Corruption(
          "vertex count exceeds remaining file size");
      break;
    }
    std::vector<geom::Point> pts;
    pts.reserve(vertices);
    bool truncated = false;
    for (uint32_t v = 0; v < vertices; ++v) {
      double x = 0, y = 0;
      if (!reader.Read(&x) || !reader.Read(&y)) {
        truncated = true;
        break;
      }
      pts.push_back(geom::Point{x, y});
    }
    if (truncated) {
      record_error = util::Status::Corruption("truncated vertex data");
      break;
    }
    if (checksummed && !reader.ReadAndCheckCrc()) {
      record_error = util::Status::Corruption("shape record checksum mismatch");
      break;
    }
    auto id = base->AddShape(geom::Polyline(std::move(pts), closed != 0),
                             image, std::move(label));
    if (!id.ok()) {
      // A record that parses but fails validation is corruption from the
      // file's perspective (v1 files have no checksum to catch it first).
      record_error = util::Status::Corruption(
          "invalid shape record: " + id.status().message());
      break;
    }
    ++rep.shapes_loaded;
  }
  if (!record_error.ok()) {
    if (!load_options.salvage) return record_error;
    rep.salvaged = true;  // Keep the valid prefix.
    static obs::Counter* salvage_events =
        obs::MetricRegistry::Default().GetCounter(
            "geosir_storage_salvage_events_total",
            "Shape-file loads that dropped a corrupt suffix in salvage mode");
    salvage_events->Inc();
  }
  GEOSIR_RETURN_IF_ERROR(base->Finalize());
  return base;
}

util::Result<std::unique_ptr<core::ShapeBase>> LoadShapeBase(
    const std::string& path, core::ShapeBaseOptions options,
    const LoadOptions& load_options, LoadReport* report) {
  GEOSIR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          Env::Posix()->ReadFileBytes(path));
  return LoadShapeBaseFromBytes(bytes, std::move(options), load_options,
                                report);
}

}  // namespace geosir::storage
