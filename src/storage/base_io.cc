#include "storage/base_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "util/crc32.h"

namespace geosir::storage {

namespace {

constexpr uint32_t kMagic = 0x52495347;  // "GSIR".
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr uint16_t kMaxLabelLen = 0xFFFF;
constexpr size_t kVertexBytes = 2 * sizeof(double);

class FileWriter {
 public:
  explicit FileWriter(std::FILE* file) : file_(file) {}
  template <typename T>
  bool Write(T value) {
    crc_ = util::Crc32(&value, sizeof(T), crc_);
    return std::fwrite(&value, sizeof(T), 1, file_) == 1;
  }
  bool WriteBytes(const void* data, size_t size) {
    crc_ = util::Crc32(data, size, crc_);
    return size == 0 || std::fwrite(data, 1, size, file_) == size;
  }
  /// CRC32 of everything written since the last TakeCrc.
  uint32_t TakeCrc() {
    const uint32_t out = crc_;
    crc_ = 0;
    return out;
  }
  /// Writes the running checksum itself (resets it for the next record).
  bool WriteCrc() {
    const uint32_t crc = TakeCrc();
    const bool ok = std::fwrite(&crc, sizeof(crc), 1, file_) == 1;
    crc_ = 0;
    return ok;
  }

 private:
  std::FILE* file_;
  uint32_t crc_ = 0;
};

class FileReader {
 public:
  explicit FileReader(std::FILE* file) : file_(file) {}
  template <typename T>
  bool Read(T* value) {
    if (std::fread(value, sizeof(T), 1, file_) != 1) return false;
    crc_ = util::Crc32(value, sizeof(T), crc_);
    return true;
  }
  bool ReadBytes(void* data, size_t size) {
    if (size != 0 && std::fread(data, 1, size, file_) != size) return false;
    crc_ = util::Crc32(data, size, crc_);
    return true;
  }
  /// Reads a stored CRC32 and checks it against the running checksum of
  /// everything read since the last check (the CRC field itself is not
  /// part of its own coverage). Resets the running checksum.
  bool ReadAndCheckCrc() {
    const uint32_t expected = crc_;
    uint32_t stored = 0;
    if (std::fread(&stored, sizeof(stored), 1, file_) != 1) return false;
    crc_ = 0;
    return stored == expected;
  }
  void ResetCrc() { crc_ = 0; }

 private:
  std::FILE* file_;
  uint32_t crc_ = 0;
};

/// Bytes left between the current position and EOF.
int64_t RemainingBytes(std::FILE* file) {
  const long at = std::ftell(file);
  if (at < 0 || std::fseek(file, 0, SEEK_END) != 0) return -1;
  const long end = std::ftell(file);
  if (end < 0 || std::fseek(file, at, SEEK_SET) != 0) return -1;
  return static_cast<int64_t>(end) - static_cast<int64_t>(at);
}

}  // namespace

util::Status SaveShapeBase(const core::ShapeBase& base,
                           const std::string& path) {
  for (const core::Shape& shape : base.shapes()) {
    if (shape.label.size() > kMaxLabelLen) {
      return util::Status::InvalidArgument(
          "shape label exceeds 65535 bytes and cannot be stored");
    }
  }
  // Crash safety: build the file next to the target and rename into
  // place, so a crash mid-save never leaves a half-written file under
  // `path`.
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::NotFound("cannot open for writing: " + tmp_path);
  }
  FileWriter writer(file);
  bool ok = writer.Write<uint32_t>(kMagic) &&
            writer.Write<uint32_t>(kVersionV2) &&
            writer.Write<uint64_t>(base.NumShapes()) && writer.WriteCrc();
  for (const core::Shape& shape : base.shapes()) {
    if (!ok) break;
    ok = writer.Write<uint32_t>(shape.image) &&
         writer.Write<uint16_t>(
             static_cast<uint16_t>(shape.label.size())) &&
         writer.WriteBytes(shape.label.data(), shape.label.size()) &&
         writer.Write<uint8_t>(shape.boundary.closed() ? 1 : 0) &&
         writer.Write<uint32_t>(
             static_cast<uint32_t>(shape.boundary.size()));
    for (size_t v = 0; ok && v < shape.boundary.size(); ++v) {
      const geom::Point p = shape.boundary.vertex(v);
      ok = writer.Write<double>(p.x) && writer.Write<double>(p.y);
    }
    ok = ok && writer.WriteCrc();
  }
  ok = ok && std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!ok || !closed) {
    std::remove(tmp_path.c_str());
    return util::Status::Internal("short write to " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return util::Status::Internal("cannot rename " + tmp_path + " to " + path);
  }
  return util::Status::OK();
}

util::Result<std::unique_ptr<core::ShapeBase>> LoadShapeBase(
    const std::string& path, core::ShapeBaseOptions options,
    const LoadOptions& load_options, LoadReport* report) {
  LoadReport local_report;
  LoadReport& rep = report != nullptr ? *report : local_report;
  rep = LoadReport{};

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::NotFound("cannot open: " + path);
  }
  FileReader reader(file);
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  // Header corruption is never salvageable: without a trusted version we
  // cannot parse anything that follows.
  if (!reader.Read(&magic) || magic != kMagic) {
    std::fclose(file);
    return util::Status::Corruption("not a GeoSIR shape file: " + path);
  }
  if (!reader.Read(&version) ||
      (version != kVersionV1 && version != kVersionV2)) {
    std::fclose(file);
    return util::Status::NotSupported("unsupported shape file version");
  }
  rep.version = version;
  const bool checksummed = version == kVersionV2;
  if (!reader.Read(&count) ||
      (checksummed && !reader.ReadAndCheckCrc())) {
    std::fclose(file);
    return util::Status::Corruption("truncated or corrupt header");
  }
  reader.ResetCrc();
  rep.shapes_expected = count;

  auto base = std::make_unique<core::ShapeBase>(std::move(options));
  util::Status record_error;  // First bad record (drives salvage).
  for (uint64_t s = 0; s < count; ++s) {
    uint32_t image = 0, vertices = 0;
    uint16_t label_len = 0;
    uint8_t closed = 0;
    if (!reader.Read(&image) || !reader.Read(&label_len)) {
      record_error = util::Status::Corruption("truncated shape header");
      break;
    }
    std::string label(label_len, '\0');
    if (!reader.ReadBytes(label.data(), label_len) || !reader.Read(&closed) ||
        !reader.Read(&vertices)) {
      record_error = util::Status::Corruption("truncated shape record");
      break;
    }
    // Validate the on-disk count before trusting it with an allocation: a
    // corrupt u32 here could demand a multi-GB reserve. The remaining
    // file bytes bound the plausible count exactly.
    const int64_t remaining = RemainingBytes(file);
    if (remaining < 0 ||
        static_cast<uint64_t>(vertices) >
            static_cast<uint64_t>(remaining) / kVertexBytes) {
      record_error = util::Status::Corruption(
          "vertex count exceeds remaining file size");
      break;
    }
    std::vector<geom::Point> pts;
    pts.reserve(vertices);
    bool truncated = false;
    for (uint32_t v = 0; v < vertices; ++v) {
      double x = 0, y = 0;
      if (!reader.Read(&x) || !reader.Read(&y)) {
        truncated = true;
        break;
      }
      pts.push_back(geom::Point{x, y});
    }
    if (truncated) {
      record_error = util::Status::Corruption("truncated vertex data");
      break;
    }
    if (checksummed && !reader.ReadAndCheckCrc()) {
      record_error = util::Status::Corruption("shape record checksum mismatch");
      break;
    }
    auto id = base->AddShape(geom::Polyline(std::move(pts), closed != 0),
                             image, std::move(label));
    if (!id.ok()) {
      // A record that parses but fails validation is corruption from the
      // file's perspective (v1 files have no checksum to catch it first).
      record_error = util::Status::Corruption(
          "invalid shape record: " + id.status().message());
      break;
    }
    ++rep.shapes_loaded;
  }
  std::fclose(file);
  if (!record_error.ok()) {
    if (!load_options.salvage) return record_error;
    rep.salvaged = true;  // Keep the valid prefix.
    static obs::Counter* salvage_events =
        obs::MetricRegistry::Default().GetCounter(
            "geosir_storage_salvage_events_total",
            "Shape-file loads that dropped a corrupt suffix in salvage mode");
    salvage_events->Inc();
  }
  GEOSIR_RETURN_IF_ERROR(base->Finalize());
  return base;
}

}  // namespace geosir::storage
