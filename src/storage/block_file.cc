#include "storage/block_file.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "util/crc32.h"

namespace geosir::storage {

namespace {

/// Process-wide storage metric families, aggregated across every
/// BufferManager instance (per-instance figures stay available on the
/// instance counters).
struct StorageMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* retries;
  obs::Counter* checksum_failures;
  obs::Counter* read_failures;

  static const StorageMetrics& Get() {
    static const StorageMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new StorageMetrics();
      m->hits = r.GetCounter("geosir_storage_buffer_hits_total",
                             "Block pins served from the LRU buffer");
      m->misses = r.GetCounter("geosir_storage_buffer_misses_total",
                               "Block pins faulted through the device");
      m->retries = r.GetCounter(
          "geosir_storage_retries_total",
          "Extra read attempts spent healing transient faults");
      m->checksum_failures =
          r.GetCounter("geosir_storage_checksum_failures_total",
                       "Reads whose CRC32 trailer failed verification");
      m->read_failures = r.GetCounter(
          "geosir_storage_read_failures_total",
          "Pins that failed after the whole retry budget");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

void StampBlockChecksum(std::vector<uint8_t>* block, size_t block_size) {
  block->resize(block_size, 0);
  const size_t payload = BlockPayloadCapacity(block_size);
  const uint32_t crc = util::Crc32(block->data(), payload);
  std::memcpy(block->data() + payload, &crc, kBlockChecksumBytes);
}

util::Status VerifyBlockChecksum(const std::vector<uint8_t>& block) {
  if (block.size() <= kBlockChecksumBytes) {
    return util::Status::Corruption("block too small for a checksum trailer");
  }
  const size_t payload = block.size() - kBlockChecksumBytes;
  uint32_t stored = 0;
  std::memcpy(&stored, block.data() + payload, kBlockChecksumBytes);
  if (util::Crc32(block.data(), payload) != stored) {
    return util::Status::Corruption("block checksum mismatch");
  }
  return util::Status::OK();
}

BlockId BlockFile::AppendBlock(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> block = payload;
  block.resize(block_size_, 0);
  ++writes_;
  blocks_.push_back(std::move(block));
  return static_cast<BlockId>(blocks_.size() - 1);
}

util::Result<std::vector<uint8_t>> BlockFile::ReadBlock(BlockId id) const {
  if (id >= blocks_.size()) {
    return util::Status::OutOfRange("block id out of range");
  }
  ++reads_;
  return blocks_[id];
}

util::Status BlockFile::WriteBlock(BlockId id,
                                   const std::vector<uint8_t>& payload) {
  if (id >= blocks_.size()) {
    return util::Status::OutOfRange("block id out of range");
  }
  std::vector<uint8_t> block = payload;
  block.resize(block_size_, 0);
  ++writes_;
  blocks_[id] = std::move(block);
  return util::Status::OK();
}

BufferManager::BufferManager(const BlockDevice* device, size_t capacity_blocks,
                             BufferOptions options)
    : device_(device),
      capacity_(std::max<size_t>(1, capacity_blocks)),
      options_(options) {
  frames_.reserve(capacity_);
}

util::Result<const std::vector<uint8_t>*> BufferManager::Pin(BlockId id) {
  const StorageMetrics& metrics = StorageMetrics::Get();
  ++clock_;
  for (Frame& frame : frames_) {
    if (frame.id == id) {
      frame.last_used = clock_;
      ++hits_;
      metrics.hits->Inc();
      return const_cast<const std::vector<uint8_t>*>(&frame.data);
    }
  }
  ++misses_;
  metrics.misses->Inc();
  // One retry budget covers both transient device faults and checksum
  // mismatches: a bit flipped on the read path heals on re-read, while
  // persistent rot keeps failing and is reported as kCorruption below.
  bool checksum_failed = false;
  int attempts = 1;
  auto read = util::RetryWithBackoff(
      options_.retry,
      [&]() -> util::Result<std::vector<uint8_t>> {
        checksum_failed = false;
        auto data = device_->Read(id);
        if (!data.ok()) return data.status();
        if (options_.verify_checksums) {
          util::Status verified = VerifyBlockChecksum(*data);
          if (!verified.ok()) {
            checksum_failed = true;
            ++checksum_failures_;
            metrics.checksum_failures->Inc();
            // Mapped to the retriable code so the helper re-reads.
            return util::Status::Unavailable(verified.message());
          }
        }
        return data;
      },
      &attempts);
  retries_ += static_cast<uint64_t>(attempts - 1);
  metrics.retries->Inc(static_cast<uint64_t>(attempts - 1));
  if (!read.ok()) {
    metrics.read_failures->Inc();
    if (checksum_failed) {
      return util::Status::Corruption("block failed checksum verification: " +
                                      read.status().message());
    }
    return read.status();
  }
  std::vector<uint8_t> data = std::move(read).value();
  if (frames_.size() < capacity_) {
    frames_.push_back(Frame{id, std::move(data), clock_});
    return const_cast<const std::vector<uint8_t>*>(&frames_.back().data);
  }
  // Evict the least recently used frame.
  size_t victim = 0;
  for (size_t i = 1; i < frames_.size(); ++i) {
    if (frames_[i].last_used < frames_[victim].last_used) victim = i;
  }
  frames_[victim] = Frame{id, std::move(data), clock_};
  return const_cast<const std::vector<uint8_t>*>(&frames_[victim].data);
}

void BufferManager::Clear() { frames_.clear(); }

}  // namespace geosir::storage
