#include "storage/block_file.h"

#include <algorithm>

namespace geosir::storage {

BlockId BlockFile::AppendBlock(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> block = payload;
  block.resize(block_size_, 0);
  ++writes_;
  blocks_.push_back(std::move(block));
  return static_cast<BlockId>(blocks_.size() - 1);
}

util::Result<std::vector<uint8_t>> BlockFile::ReadBlock(BlockId id) const {
  if (id >= blocks_.size()) {
    return util::Status::OutOfRange("block id out of range");
  }
  ++reads_;
  return blocks_[id];
}

util::Status BlockFile::WriteBlock(BlockId id,
                                   const std::vector<uint8_t>& payload) {
  if (id >= blocks_.size()) {
    return util::Status::OutOfRange("block id out of range");
  }
  std::vector<uint8_t> block = payload;
  block.resize(block_size_, 0);
  ++writes_;
  blocks_[id] = std::move(block);
  return util::Status::OK();
}

BufferManager::BufferManager(const BlockFile* file, size_t capacity_blocks)
    : file_(file), capacity_(std::max<size_t>(1, capacity_blocks)) {
  frames_.reserve(capacity_);
}

util::Result<const std::vector<uint8_t>*> BufferManager::Pin(BlockId id) {
  ++clock_;
  for (Frame& frame : frames_) {
    if (frame.id == id) {
      frame.last_used = clock_;
      ++hits_;
      return const_cast<const std::vector<uint8_t>*>(&frame.data);
    }
  }
  ++misses_;
  GEOSIR_ASSIGN_OR_RETURN(std::vector<uint8_t> data, file_->ReadBlock(id));
  if (frames_.size() < capacity_) {
    frames_.push_back(Frame{id, std::move(data), clock_});
    return const_cast<const std::vector<uint8_t>*>(&frames_.back().data);
  }
  // Evict the least recently used frame.
  size_t victim = 0;
  for (size_t i = 1; i < frames_.size(); ++i) {
    if (frames_[i].last_used < frames_[victim].last_used) victim = i;
  }
  frames_[victim] = Frame{id, std::move(data), clock_};
  return const_cast<const std::vector<uint8_t>*>(&frames_[victim].data);
}

void BufferManager::Clear() { frames_.clear(); }

}  // namespace geosir::storage
