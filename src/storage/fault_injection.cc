#include "storage/fault_injection.h"

#include <string>

namespace geosir::storage {

namespace {

// Domain-separation salts for the hash draws, so the per-read failure,
// per-read flip, flip position, etc. are independent streams.
constexpr uint64_t kSaltReadFail = 0x9E3779B97F4A7C15ull;
constexpr uint64_t kSaltReadFlip = 0xBF58476D1CE4E5B9ull;
constexpr uint64_t kSaltFlipPos = 0x94D049BB133111EBull;
constexpr uint64_t kSaltSticky = 0xD6E8FEB86659FD93ull;
constexpr uint64_t kSaltWriteFail = 0xA24BAED4963EE407ull;
constexpr uint64_t kSaltTorn = 0x8EBC6AF09C88C6E3ull;
constexpr uint64_t kSaltSync = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kSaltShort = 0x165667B19E3779F9ull;

/// SplitMix64 finalizer: a well-mixed pure function of the inputs.
uint64_t Mix(uint64_t seed, uint64_t salt, uint64_t x) {
  uint64_t z = seed ^ salt;
  z += 0x9E3779B97F4A7C15ull * (x + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform draw in [0, 1) from a mixed hash.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool Draw(uint64_t seed, uint64_t salt, uint64_t x, double rate) {
  return rate > 0.0 && ToUnit(Mix(seed, salt, x)) < rate;
}

FaultKind ScheduledAt(const std::vector<ScheduledFault>& schedule,
                      uint64_t op) {
  for (const ScheduledFault& fault : schedule) {
    if (fault.op_index == op) return fault.kind;
  }
  return FaultKind::kNone;
}

void FlipBit(std::vector<uint8_t>* data, uint64_t h) {
  if (data->empty()) return;
  const uint64_t bit = h % (data->size() * 8);
  (*data)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

}  // namespace

util::Result<std::vector<uint8_t>> FaultInjectingDevice::Read(
    BlockId id) const {
  const uint64_t op = read_ops_++;
  const FaultKind scheduled = ScheduledAt(plan_.read_schedule, op);
  if (scheduled == FaultKind::kTransientFailure ||
      Draw(plan_.seed, kSaltReadFail, op, plan_.read_failure_rate)) {
    ++injected_read_failures_;
    return util::Status::Unavailable("injected transient read fault (op " +
                                     std::to_string(op) + ")");
  }
  auto data = ro_->Read(id);
  if (!data.ok()) return data;
  // Persistent rot: a function of the block id alone, so the same block
  // is corrupted identically on every read.
  if (Draw(plan_.seed, kSaltSticky, id, plan_.sticky_flip_rate)) {
    ++injected_bit_flips_;
    FlipBit(&data.value(), Mix(plan_.seed, kSaltSticky ^ kSaltFlipPos, id));
  }
  // Read-path flip: a function of the operation index, so it heals on
  // retry.
  if (scheduled == FaultKind::kBitFlip ||
      Draw(plan_.seed, kSaltReadFlip, op, plan_.read_flip_rate)) {
    ++injected_bit_flips_;
    FlipBit(&data.value(), Mix(plan_.seed, kSaltFlipPos, op));
  }
  return data;
}

FaultKind FaultInjectingDevice::WriteFaultFor(uint64_t op) const {
  const FaultKind scheduled = ScheduledAt(plan_.write_schedule, op);
  if (scheduled != FaultKind::kNone) return scheduled;
  if (Draw(plan_.seed, kSaltWriteFail, op, plan_.write_failure_rate)) {
    return FaultKind::kTransientFailure;
  }
  if (Draw(plan_.seed, kSaltTorn, op, plan_.torn_write_rate)) {
    return FaultKind::kTornWrite;
  }
  return FaultKind::kNone;
}

util::Result<BlockId> FaultInjectingDevice::Append(
    const std::vector<uint8_t>& payload) {
  if (rw_ == nullptr) {
    return util::Status::FailedPrecondition(
        "fault-injecting device decorates a read-only device");
  }
  const uint64_t op = write_ops_++;
  switch (WriteFaultFor(op)) {
    case FaultKind::kTransientFailure:
      ++injected_write_failures_;
      return util::Status::Unavailable("injected transient append fault (op " +
                                       std::to_string(op) + ")");
    case FaultKind::kTornWrite: {
      // The partial block is persisted (an orphan if the caller retries),
      // and the append still reports a fault.
      ++injected_torn_writes_;
      std::vector<uint8_t> torn = payload;
      torn.resize(Mix(plan_.seed, kSaltTorn ^ kSaltFlipPos, op) %
                  (payload.size() + 1));
      (void)rw_->Append(torn);
      return util::Status::Unavailable("injected torn append (op " +
                                       std::to_string(op) + ")");
    }
    default:
      return rw_->Append(payload);
  }
}

util::Status FaultInjectingDevice::Flush() {
  if (rw_ == nullptr) {
    return util::Status::FailedPrecondition(
        "fault-injecting device decorates a read-only device");
  }
  return rw_->Flush();
}

util::Status FaultInjectingDevice::Sync() {
  if (rw_ == nullptr) {
    return util::Status::FailedPrecondition(
        "fault-injecting device decorates a read-only device");
  }
  const uint64_t op = sync_ops_++;
  if (ScheduledAt(plan_.sync_schedule, op) == FaultKind::kSyncFailure ||
      Draw(plan_.seed, kSaltSync, op, plan_.sync_failure_rate)) {
    ++injected_sync_failures_;
    return util::Status::Unavailable("injected sync failure (sync op " +
                                     std::to_string(op) + ")");
  }
  return rw_->Sync();
}

util::Status FaultInjectingDevice::Write(BlockId id,
                                         const std::vector<uint8_t>& payload) {
  if (rw_ == nullptr) {
    return util::Status::FailedPrecondition(
        "fault-injecting device decorates a read-only device");
  }
  const uint64_t op = write_ops_++;
  switch (WriteFaultFor(op)) {
    case FaultKind::kTransientFailure:
      ++injected_write_failures_;
      return util::Status::Unavailable("injected transient write fault (op " +
                                       std::to_string(op) + ")");
    case FaultKind::kTornWrite: {
      ++injected_torn_writes_;
      std::vector<uint8_t> torn = payload;
      torn.resize(block_size(), 0);  // What a full write would persist.
      const size_t keep =
          Mix(plan_.seed, kSaltTorn ^ kSaltFlipPos, op) % (torn.size() + 1);
      auto old = rw_->Read(id);  // Keep the old suffix beyond the tear.
      if (old.ok()) {
        for (size_t i = keep; i < torn.size() && i < old->size(); ++i) {
          torn[i] = (*old)[i];
        }
      }
      (void)rw_->Write(id, torn);
      return util::Status::Unavailable("injected torn write (op " +
                                       std::to_string(op) + ")");
    }
    default:
      return rw_->Write(id, payload);
  }
}

FaultKind CrashInjectingFile::FaultFor(uint64_t op, bool is_sync) const {
  const FaultKind scheduled = ScheduledAt(plan_.schedule, op);
  if (scheduled != FaultKind::kNone) return scheduled;
  if (is_sync) {
    if (Draw(plan_.seed, kSaltSync, op, plan_.sync_failure_rate)) {
      return FaultKind::kSyncFailure;
    }
  } else if (Draw(plan_.seed, kSaltShort, op, plan_.short_write_rate)) {
    return FaultKind::kShortWrite;
  }
  return FaultKind::kNone;
}

util::Status CrashInjectingFile::Append(const uint8_t* data, size_t size) {
  const uint64_t op = ops_++;
  if (clock_ != nullptr && !clock_->Tick()) {
    // The process died at this boundary: nothing of this append reaches
    // the file, and every later operation fails too.
    return util::Status::Unavailable("simulated crash (file op " +
                                     std::to_string(op) + ")");
  }
  switch (FaultFor(op, /*is_sync=*/false)) {
    case FaultKind::kTransientFailure:
      return util::Status::Unavailable("injected append failure (file op " +
                                       std::to_string(op) + ")");
    case FaultKind::kShortWrite: {
      ++injected_short_writes_;
      const size_t keep = static_cast<size_t>(
          Mix(plan_.seed, kSaltShort ^ kSaltFlipPos, op) % (size + 1));
      (void)inner_->Append(data, keep);
      return util::Status::Unavailable("injected short write (file op " +
                                       std::to_string(op) + ")");
    }
    default:
      return inner_->Append(data, size);
  }
}

util::Status CrashInjectingFile::Sync() {
  const uint64_t op = ops_++;
  if (clock_ != nullptr && !clock_->Tick()) {
    return util::Status::Unavailable("simulated crash (file op " +
                                     std::to_string(op) + ")");
  }
  switch (FaultFor(op, /*is_sync=*/true)) {
    case FaultKind::kSyncFailure:
    case FaultKind::kTransientFailure:
      ++injected_sync_failures_;
      return util::Status::Unavailable("injected sync failure (file op " +
                                       std::to_string(op) + ")");
    default:
      return inner_->Sync();
  }
}

}  // namespace geosir::storage
