#ifndef GEOSIR_STORAGE_STORED_SHAPE_BASE_H_
#define GEOSIR_STORAGE_STORED_SHAPE_BASE_H_

#include <vector>

#include "core/envelope_matcher.h"
#include "core/shape_base.h"
#include "storage/block_file.h"
#include "storage/layout.h"
#include "storage/shape_record.h"

namespace geosir::storage {

/// The external-storage image of a ShapeBase: every normalized copy is
/// serialized into a block file in the order chosen by a layout policy.
/// The Section 4 experiments replay matcher access traces against it
/// through an LRU buffer and report the number of block reads.
class StoredShapeBase {
 public:
  /// Packs the copies of `base` into `block_size`-byte blocks following
  /// `order` (a permutation of copy indices). `quadruples[i]` is copy i's
  /// curve quadruple.
  static util::Result<StoredShapeBase> Create(
      const core::ShapeBase& base,
      const std::vector<hashing::CurveQuadruple>& quadruples,
      const std::vector<uint32_t>& order, size_t block_size = 1024);

  const BlockFile& file() const { return file_; }
  BlockId BlockOfCopy(uint32_t copy_index) const {
    return copy_block_[copy_index];
  }
  size_t NumBlocks() const { return file_.NumBlocks(); }

  /// Reads a copy's record through the buffer (faults its block in).
  util::Result<ShapeRecord> ReadCopy(uint32_t copy_index,
                                     BufferManager* buffer) const;

  /// Replays a matcher access trace (copy indices in access order)
  /// through `buffer`, pinning each copy's block. Returns the number of
  /// physical reads incurred by the trace.
  util::Result<uint64_t> ReplayTrace(const core::AccessTrace& trace,
                                     BufferManager* buffer) const;

 private:
  StoredShapeBase() : file_(1024) {}

  BlockFile file_;
  std::vector<BlockId> copy_block_;        // Copy index -> block.
  std::vector<uint16_t> copy_slot_offset_; // Byte offset within the block.
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_STORED_SHAPE_BASE_H_
