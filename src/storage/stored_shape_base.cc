#include "storage/stored_shape_base.h"

namespace geosir::storage {

util::Result<StoredShapeBase> StoredShapeBase::Create(
    const core::ShapeBase& base,
    const std::vector<hashing::CurveQuadruple>& quadruples,
    const std::vector<uint32_t>& order, size_t block_size) {
  if (quadruples.size() != base.NumCopies() ||
      order.size() != base.NumCopies()) {
    return util::Status::InvalidArgument(
        "quadruples/order size must match NumCopies");
  }
  StoredShapeBase stored;
  stored.file_ = BlockFile(block_size);
  stored.copy_block_.assign(base.NumCopies(), 0);
  stored.copy_slot_offset_.assign(base.NumCopies(), 0);

  // Records pack into the payload area; the last 4 bytes of every block
  // hold its CRC32 trailer (see block_file.h).
  const size_t payload_cap = BlockPayloadCapacity(block_size);
  std::vector<uint8_t> block;
  std::vector<uint32_t> block_members;
  const auto flush = [&]() {
    if (block.empty()) return;
    StampBlockChecksum(&block, block_size);
    const BlockId id = stored.file_.AppendBlock(block);
    for (uint32_t copy : block_members) stored.copy_block_[copy] = id;
    block.clear();
    block_members.clear();
  };

  for (uint32_t copy_index : order) {
    const core::NormalizedCopy& copy = base.copy(copy_index);
    const ShapeRecord record =
        MakeRecord(copy, base.shape(copy.shape_id).image,
                   quadruples[copy_index]);
    if (record.ByteSize() > payload_cap) {
      return util::Status::InvalidArgument(
          "shape record larger than a block payload");
    }
    if (block.size() + record.ByteSize() > payload_cap) flush();
    stored.copy_slot_offset_[copy_index] =
        static_cast<uint16_t>(block.size());
    block_members.push_back(copy_index);
    SerializeRecord(record, &block);
  }
  flush();
  return stored;
}

util::Result<ShapeRecord> StoredShapeBase::ReadCopy(
    uint32_t copy_index, BufferManager* buffer) const {
  if (copy_index >= copy_block_.size()) {
    return util::Status::OutOfRange("copy index out of range");
  }
  GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t>* block,
                          buffer->Pin(copy_block_[copy_index]));
  size_t offset = copy_slot_offset_[copy_index];
  return DeserializeRecord(*block, &offset);
}

util::Result<uint64_t> StoredShapeBase::ReplayTrace(
    const core::AccessTrace& trace, BufferManager* buffer) const {
  const uint64_t before = buffer->io_reads();
  for (uint32_t copy_index : trace) {
    if (copy_index >= copy_block_.size()) {
      return util::Status::OutOfRange("trace copy index out of range");
    }
    GEOSIR_ASSIGN_OR_RETURN(const std::vector<uint8_t>* block,
                            buffer->Pin(copy_block_[copy_index]));
    (void)block;
  }
  return buffer->io_reads() - before;
}

}  // namespace geosir::storage
