#ifndef GEOSIR_STORAGE_EXTERNAL_INDEX_H_
#define GEOSIR_STORAGE_EXTERNAL_INDEX_H_

#include <vector>

#include "geom/point.h"
#include "rangesearch/simplex_index.h"
#include "storage/block_file.h"

namespace geosir::storage {

/// External-memory range-search index (Section 4: "For accommodating the
/// auxiliary data structures in external memory we use optimal range
/// search indexing structures" [Arge-Samoladas-Vitter, Vitter]). This is
/// a bulk-loaded packed R-tree over the pooled shape vertices:
///
///  * leaves pack points in Sort-Tile-Recursive (STR) order, one disk
///    block per node;
///  * internal nodes store children's bounding boxes, also one block
///    per node;
///  * queries walk the tree through a BufferManager, so every experiment
///    can report exact block-I/O counts next to the in-memory structures.
///
/// The matcher-facing operations mirror SimplexIndex (triangle and
/// rectangle counting/reporting); an uncached traversal costs
/// O(sqrt(n/B) + k/B) I/Os per query in the usual R-tree regime.
class ExternalRTree {
 public:
  struct BuildStats {
    size_t num_leaves = 0;
    size_t num_internal = 0;
    size_t height = 0;
  };

  /// Bulk-loads the tree into a fresh block file. `block_size` bounds the
  /// node fan-out (entries are 20 bytes in leaves, 24 in internal nodes).
  static util::Result<ExternalRTree> Build(
      std::vector<rangesearch::IndexedPoint> points, size_t block_size = 1024);

  /// Points inside the (closed) triangle, fetched through `buffer`.
  util::Result<size_t> CountInTriangle(const geom::Triangle& t,
                                       BufferManager* buffer) const;
  util::Status ReportInTriangle(
      const geom::Triangle& t, BufferManager* buffer,
      const rangesearch::SimplexIndex::Visitor& visit) const;

  util::Result<size_t> CountInRect(const geom::BoundingBox& box,
                                   BufferManager* buffer) const;

  const BlockFile& file() const { return file_; }
  const BuildStats& stats() const { return stats_; }
  size_t size() const { return num_points_; }

 private:
  ExternalRTree() : file_(1024) {}

  template <typename Emit>
  util::Status Query(BlockId node, bool leaf, const geom::Triangle* tri,
                     const geom::BoundingBox& box, BufferManager* buffer,
                     const Emit& emit) const;

  BlockFile file_;
  BlockId root_ = 0;
  bool root_is_leaf_ = true;
  size_t num_points_ = 0;
  BuildStats stats_;
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_EXTERNAL_INDEX_H_
