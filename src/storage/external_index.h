#ifndef GEOSIR_STORAGE_EXTERNAL_INDEX_H_
#define GEOSIR_STORAGE_EXTERNAL_INDEX_H_

#include <vector>

#include "geom/point.h"
#include "rangesearch/simplex_index.h"
#include "storage/block_file.h"

namespace geosir::storage {

/// What a query does when a node block cannot be read (transient fault
/// that survived the retry budget, or checksum corruption).
enum class DegradePolicy {
  /// Propagate the Status to the caller; the query returns no result.
  kFailFast,
  /// Skip the unreadable subtree and keep going: the query returns a
  /// *lower bound* of the true answer, flagged as degraded. This mirrors
  /// the partial-matching contract — results under missing data degrade
  /// predictably instead of failing outright.
  kSkipUnreadable,
};

struct RTreeQueryConfig {
  DegradePolicy policy = DegradePolicy::kFailFast;
};

/// Degradation report of one query (only ever populated under
/// kSkipUnreadable).
struct RTreeDegradation {
  bool degraded = false;
  /// Unreadable subtrees pruned (1 per failed internal/leaf block).
  size_t skipped_subtrees = 0;
  /// Of those, how many were leaf blocks (each hides <= leaf-capacity
  /// points; an internal skip may hide arbitrarily more).
  size_t skipped_leaves = 0;

  void Merge(const RTreeDegradation& other) {
    degraded = degraded || other.degraded;
    skipped_subtrees += other.skipped_subtrees;
    skipped_leaves += other.skipped_leaves;
  }
};

/// External-memory range-search index (Section 4: "For accommodating the
/// auxiliary data structures in external memory we use optimal range
/// search indexing structures" [Arge-Samoladas-Vitter, Vitter]). This is
/// a bulk-loaded packed R-tree over the pooled shape vertices:
///
///  * leaves pack points in Sort-Tile-Recursive (STR) order, one disk
///    block per node;
///  * internal nodes store children's bounding boxes, also one block
///    per node;
///  * every node block carries a CRC32 trailer (see block_file.h), so a
///    BufferManager with verify_checksums detects bit rot on read;
///  * queries walk the tree through a BufferManager, so every experiment
///    can report exact block-I/O counts next to the in-memory structures.
///
/// The matcher-facing operations mirror SimplexIndex (triangle and
/// rectangle counting/reporting); an uncached traversal costs
/// O(sqrt(n/B) + k/B) I/Os per query in the usual R-tree regime.
class ExternalRTree {
 public:
  struct BuildStats {
    size_t num_leaves = 0;
    size_t num_internal = 0;
    size_t height = 0;
  };

  /// Bulk-loads the tree into a fresh block file. `block_size` bounds the
  /// node fan-out (entries are 12 bytes in leaves, 20 in internal nodes,
  /// minus the 4-byte checksum trailer per block).
  static util::Result<ExternalRTree> Build(
      std::vector<rangesearch::IndexedPoint> points, size_t block_size = 1024);

  /// Points inside the (closed) triangle, fetched through `buffer`.
  /// Under kSkipUnreadable the count is a lower bound and `degradation`
  /// (if provided) says what was skipped.
  util::Result<size_t> CountInTriangle(
      const geom::Triangle& t, BufferManager* buffer,
      const RTreeQueryConfig& config = {},
      RTreeDegradation* degradation = nullptr) const;
  util::Status ReportInTriangle(
      const geom::Triangle& t, BufferManager* buffer,
      const rangesearch::SimplexIndex::Visitor& visit,
      const RTreeQueryConfig& config = {},
      RTreeDegradation* degradation = nullptr) const;

  util::Result<size_t> CountInRect(
      const geom::BoundingBox& box, BufferManager* buffer,
      const RTreeQueryConfig& config = {},
      RTreeDegradation* degradation = nullptr) const;

  const BlockFile& file() const { return file_; }
  const BuildStats& stats() const { return stats_; }
  size_t size() const { return num_points_; }

 private:
  ExternalRTree() : file_(1024) {}

  template <typename Emit>
  util::Status Query(BlockId node, bool leaf, const geom::Triangle* tri,
                     const geom::BoundingBox& box, BufferManager* buffer,
                     const RTreeQueryConfig& config,
                     RTreeDegradation* degradation, const Emit& emit) const;

  BlockFile file_;
  BlockId root_ = 0;
  bool root_is_leaf_ = true;
  size_t num_points_ = 0;
  BuildStats stats_;
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_EXTERNAL_INDEX_H_
