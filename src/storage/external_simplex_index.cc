#include "storage/external_simplex_index.h"

#include <cassert>
#include <utility>

#include "util/query_control.h"

namespace geosir::storage {

ExternalSimplexIndex::ExternalSimplexIndex(Options options)
    : options_(std::move(options)) {}

ExternalSimplexIndex::~ExternalSimplexIndex() = default;

void ExternalSimplexIndex::Build(
    std::vector<rangesearch::IndexedPoint> points) {
  auto built = ExternalRTree::Build(std::move(points), options_.block_size);
  // The Build interface is infallible for in-memory backends; the only
  // external build failure is a bad block size, which is a programming
  // error at this layer.
  assert(built.ok() && "ExternalRTree::Build failed");
  if (!built.ok()) {
    last_error_ = built.status();
    return;
  }
  tree_ = std::make_unique<ExternalRTree>(std::move(built).value());
  const BlockDevice* device = &tree_->file();
  if (options_.inject_faults) {
    faulty_ = std::make_unique<FaultInjectingDevice>(device, options_.faults);
    device = faulty_.get();
  }
  buffer_ = std::make_unique<BufferManager>(
      device, options_.buffer_capacity_blocks, options_.buffer);
}

void ExternalSimplexIndex::RecordOutcome(
    const util::Status& status, const RTreeDegradation& degradation,
    uint64_t pins_before) const {
  stats_.subtrees_skipped += degradation.skipped_subtrees;
  stats_.leaves_skipped += degradation.skipped_leaves;
  // nodes_visited counts node blocks actually scanned: every pin the
  // traversal attempted, minus the ones that failed — a skipped subtree
  // is one failed pin under kSkipUnreadable, and a fail-fast I/O error is
  // one failed pin too (a lifecycle stop aborts *before* pinning, so it
  // subtracts nothing). Degraded-mode counter consistency against the
  // buffer's own figures is asserted in tests/fault_injection_test.cc.
  uint64_t attempted = buffer_->pins() - pins_before;
  uint64_t failed = degradation.skipped_subtrees;
  if (!status.ok() && !util::IsLifecycleStop(status.code())) ++failed;
  stats_.nodes_visited += attempted > failed ? attempted - failed : 0;
  degradation_.Merge(degradation);
  if (!status.ok() && last_error_.ok()) last_error_ = status;
}

size_t ExternalSimplexIndex::CountInTriangle(const geom::Triangle& t) const {
  if (tree_ == nullptr) return 0;
  RTreeDegradation degradation;
  const uint64_t pins_before = buffer_->pins();
  auto count =
      tree_->CountInTriangle(t, buffer_.get(), options_.query, &degradation);
  RecordOutcome(count.ok() ? util::Status::OK() : count.status(), degradation,
                pins_before);
  return count.ok() ? *count : 0;
}

void ExternalSimplexIndex::ReportInTriangle(const geom::Triangle& t,
                                            const Visitor& visit) const {
  if (tree_ == nullptr) return;
  RTreeDegradation degradation;
  const uint64_t pins_before = buffer_->pins();
  util::Status status = tree_->ReportInTriangle(
      t, buffer_.get(),
      [this, &visit](const rangesearch::IndexedPoint& ip) {
        ++stats_.points_reported;
        visit(ip);
      },
      options_.query, &degradation);
  RecordOutcome(status, degradation, pins_before);
}

size_t ExternalSimplexIndex::CountInRect(const geom::BoundingBox& box) const {
  if (tree_ == nullptr) return 0;
  RTreeDegradation degradation;
  const uint64_t pins_before = buffer_->pins();
  auto count =
      tree_->CountInRect(box, buffer_.get(), options_.query, &degradation);
  RecordOutcome(count.ok() ? util::Status::OK() : count.status(), degradation,
                pins_before);
  return count.ok() ? *count : 0;
}

void ExternalSimplexIndex::ReportInRect(const geom::BoundingBox& box,
                                        const Visitor& visit) const {
  // The tree traversal filters rectangles natively (null triangle), but
  // that path is only exported through Count; cover the box with its two
  // diagonal triangles and dedupe the shared diagonal.
  if (tree_ == nullptr) return;
  const geom::Triangle lower{{box.min_x, box.min_y},
                             {box.max_x, box.min_y},
                             {box.max_x, box.max_y}};
  const geom::Triangle upper{{box.min_x, box.min_y},
                             {box.max_x, box.max_y},
                             {box.min_x, box.max_y}};
  RTreeDegradation degradation;
  uint64_t pins_before = buffer_->pins();
  util::Status status = tree_->ReportInTriangle(
      lower, buffer_.get(), visit, options_.query, &degradation);
  RecordOutcome(status, degradation, pins_before);
  RTreeDegradation degradation2;
  pins_before = buffer_->pins();
  util::Status status2 = tree_->ReportInTriangle(
      upper, buffer_.get(),
      [&](const rangesearch::IndexedPoint& ip) {
        if (!lower.Contains(ip.p)) visit(ip);
      },
      options_.query, &degradation2);
  RecordOutcome(status2, degradation2, pins_before);
}

size_t ExternalSimplexIndex::size() const {
  return tree_ == nullptr ? 0 : tree_->size();
}

util::Status ExternalSimplexIndex::TakeLastError() const {
  util::Status out = last_error_;
  last_error_ = util::Status::OK();
  return out;
}

}  // namespace geosir::storage
