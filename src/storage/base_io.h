#ifndef GEOSIR_STORAGE_BASE_IO_H_
#define GEOSIR_STORAGE_BASE_IO_H_

#include <memory>
#include <string>

#include "core/shape_base.h"
#include "util/status.h"

namespace geosir::storage {

/// Persistence of a shape base to the local filesystem. Only the
/// *original* shapes are stored: normalization is deterministic, so the
/// copies and the range-search index are rebuilt identically on load.
///
/// File format (little-endian):
///   magic "GSIR" u32, version u32, shape count u64,
///   per shape: u32 image, u16 label length, label bytes,
///              u8 closed flag, u32 vertex count, vertices as f64 pairs.

/// Writes every shape of `base` (finalized or not) to `path`.
util::Status SaveShapeBase(const core::ShapeBase& base,
                           const std::string& path);

/// Reads a shape file and rebuilds a finalized base under `options`.
util::Result<std::unique_ptr<core::ShapeBase>> LoadShapeBase(
    const std::string& path, core::ShapeBaseOptions options = {});

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_BASE_IO_H_
