#ifndef GEOSIR_STORAGE_BASE_IO_H_
#define GEOSIR_STORAGE_BASE_IO_H_

#include <memory>
#include <string>

#include "core/shape_base.h"
#include "util/status.h"

namespace geosir::storage {

/// Persistence of a shape base to the local filesystem. Only the
/// *original* shapes are stored: normalization is deterministic, so the
/// copies and the range-search index are rebuilt identically on load.
///
/// File format v2 (little-endian):
///   magic "GSIR" u32, version u32 = 2, shape count u64,
///   header CRC32 u32 (over the 16 bytes above),
///   per shape: u32 image, u16 label length, label bytes,
///              u8 closed flag, u32 vertex count, vertices as f64 pairs,
///              record CRC32 u32 (over the record bytes above).
/// v1 is the same without the checksums; LoadShapeBase reads both.
///
/// Crash safety: SaveShapeBase writes to `path + ".tmp"`, fsyncs it,
/// renames into place and fsyncs the directory (Env::WriteFileAtomic), so
/// a crash mid-save leaves the previous file intact, a completed save
/// survives power loss, and a torn/bit-rotted v2 file is detected on load
/// (kCorruption) instead of yielding garbage shapes. The temp file is
/// removed on every error path.

/// Serializes every shape of `base` (finalized or not) to v2 bytes.
/// Labels longer than 65535 bytes are rejected with kInvalidArgument
/// (they cannot be represented in the record header).
util::Result<std::vector<uint8_t>> SerializeShapeBase(
    const core::ShapeBase& base);

/// SerializeShapeBase + durable atomic write to `path`.
util::Status SaveShapeBase(const core::ShapeBase& base,
                           const std::string& path);

struct LoadOptions {
  /// Salvage mode: on a corrupt or truncated record, keep the valid
  /// prefix of the file instead of failing. Header corruption (bad
  /// magic/version) is never salvageable.
  bool salvage = false;
};

/// What LoadShapeBase actually did (optional out-param).
struct LoadReport {
  uint32_t version = 0;
  uint64_t shapes_expected = 0;
  size_t shapes_loaded = 0;
  /// True when salvage mode dropped a corrupt suffix.
  bool salvaged = false;
};

/// Reads a shape file (v1 or v2) and rebuilds a finalized base under
/// `options`. v2 record checksums are verified; a mismatch returns
/// kCorruption, or truncates to the valid prefix under
/// `load_options.salvage`.
util::Result<std::unique_ptr<core::ShapeBase>> LoadShapeBase(
    const std::string& path, core::ShapeBaseOptions options = {},
    const LoadOptions& load_options = {}, LoadReport* report = nullptr);

/// Parses shape-file bytes already in memory (the WAL checkpoint path
/// reads through an Env and hands the bytes here).
util::Result<std::unique_ptr<core::ShapeBase>> LoadShapeBaseFromBytes(
    const std::vector<uint8_t>& bytes, core::ShapeBaseOptions options = {},
    const LoadOptions& load_options = {}, LoadReport* report = nullptr);

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_BASE_IO_H_
