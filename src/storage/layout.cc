#include "storage/layout.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/similarity.h"

namespace geosir::storage {

const char* LayoutPolicyName(LayoutPolicy policy) {
  switch (policy) {
    case LayoutPolicy::kInsertionOrder:
      return "insertion";
    case LayoutPolicy::kMeanCurve:
      return "mean-curve";
    case LayoutPolicy::kLexicographic:
      return "lexicographic";
    case LayoutPolicy::kMedianCurve:
      return "median-curve";
    case LayoutPolicy::kLocalOptimization:
      return "local-opt";
  }
  return "unknown";
}

namespace {

using hashing::CurveQuadruple;

std::vector<uint32_t> IdentityOrder(size_t n) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

bool LexLess(const CurveQuadruple& a, const CurveQuadruple& b) {
  for (int q = 0; q < 4; ++q) {
    if (a.c[q] != b.c[q]) return a.c[q] < b.c[q];
  }
  return false;
}

/// Greedy local optimization (Section 4.2), implemented as a refinement
/// of the mean-curve sorted order: each next slot picks, among the next
/// `candidate_window` unplaced copies of the sorted order, the one
/// minimizing the average (decimated) measure to the shapes already in
/// the current block; the first shape of a new block minimizes the
/// average distance to the first shapes of the previous
/// `lookback_blocks` blocks. The sorted order supplies coarse locality,
/// the greedy packs each block with mutually similar copies.
std::vector<uint32_t> LocalOptimizationOrder(
    const core::ShapeBase& base, const std::vector<CurveQuadruple>& quadruples,
    const LayoutOptions& options) {
  const size_t n = base.NumCopies();
  std::vector<uint32_t> order;
  order.reserve(n);
  if (n == 0) return order;

  // Decimated shape signatures: a fixed number of boundary samples per
  // copy. Scoring with the full measure would make rehashing quadratic
  // in the vertex count; 8 samples preserve the clustering behaviour at
  // a fraction of the cost.
  constexpr int kSignaturePoints = 8;
  std::vector<geom::Point> signatures(n * kSignaturePoints);
  for (uint32_t i = 0; i < n; ++i) {
    const geom::Polyline& shape = base.copy(i).shape;
    const double perimeter = shape.Perimeter();
    for (int s = 0; s < kSignaturePoints; ++s) {
      signatures[i * kSignaturePoints + s] =
          shape.AtArcLength(perimeter * s / kSignaturePoints);
    }
  }
  const auto copy_distance = [&signatures](uint32_t a, uint32_t b) {
    const geom::Point* sa = &signatures[a * kSignaturePoints];
    const geom::Point* sb = &signatures[b * kSignaturePoints];
    double total = 0.0;
    for (int i = 0; i < kSignaturePoints; ++i) {
      double best = 1e300;
      for (int j = 0; j < kSignaturePoints; ++j) {
        best = std::min(best, geom::SquaredDistance(sa[i], sb[j]));
      }
      total += std::sqrt(best);
    }
    return total / kSignaturePoints;
  };

  // Base order: the mean-curve sort (method (i)).
  std::vector<uint32_t> sorted(n);
  std::iota(sorted.begin(), sorted.end(), 0);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](uint32_t a, uint32_t b) {
                     const int ma = quadruples[a].MeanCurve();
                     const int mb = quadruples[b].MeanCurve();
                     if (ma != mb) return ma < mb;
                     return LexLess(quadruples[a], quadruples[b]);
                   });

  std::vector<uint8_t> placed(n, 0);
  size_t cursor = 0;  // First possibly-unplaced position in `sorted`.
  const auto next_candidates = [&](std::vector<uint32_t>* out) {
    out->clear();
    while (cursor < n && placed[sorted[cursor]]) ++cursor;
    for (size_t i = cursor;
         i < n && out->size() < options.candidate_window; ++i) {
      if (!placed[sorted[i]]) out->push_back(sorted[i]);
    }
  };

  std::vector<uint32_t> block_firsts;
  std::vector<uint32_t> current_block;
  std::vector<uint32_t> candidates;
  while (order.size() < n) {
    next_candidates(&candidates);
    if (candidates.empty()) break;
    uint32_t best = candidates.front();
    double best_score = std::numeric_limits<double>::infinity();
    if (current_block.empty() || current_block.size() >=
                                     options.records_per_block) {
      // First shape of a (new) block: minimize the average distance to
      // the first shapes of the previous `lookback_blocks` blocks.
      current_block.clear();
      const size_t lb = std::min(options.lookback_blocks,
                                 block_firsts.size());
      if (lb == 0) {
        best = candidates.front();
      } else {
        for (uint32_t cand : candidates) {
          double sum = 0.0;
          for (size_t b = block_firsts.size() - lb; b < block_firsts.size();
               ++b) {
            sum += copy_distance(cand, block_firsts[b]);
          }
          const double score = sum / static_cast<double>(lb);
          if (score < best_score) {
            best_score = score;
            best = cand;
          }
        }
      }
      block_firsts.push_back(best);
    } else {
      // Subsequent slot: minimize the average distance to the shapes
      // already in this block.
      for (uint32_t cand : candidates) {
        double sum = 0.0;
        for (uint32_t member : current_block) {
          sum += copy_distance(cand, member);
        }
        const double score = sum / static_cast<double>(current_block.size());
        if (score < best_score) {
          best_score = score;
          best = cand;
        }
      }
    }
    placed[best] = 1;
    current_block.push_back(best);
    order.push_back(best);
  }
  return order;
}

}  // namespace

std::vector<uint32_t> ComputeLayout(
    LayoutPolicy policy, const core::ShapeBase& base,
    const std::vector<CurveQuadruple>& quadruples,
    const LayoutOptions& options) {
  std::vector<uint32_t> order = IdentityOrder(base.NumCopies());
  switch (policy) {
    case LayoutPolicy::kInsertionOrder:
      return order;
    case LayoutPolicy::kMeanCurve:
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         const int ma = quadruples[a].MeanCurve();
                         const int mb = quadruples[b].MeanCurve();
                         if (ma != mb) return ma < mb;
                         return LexLess(quadruples[a], quadruples[b]);
                       });
      return order;
    case LayoutPolicy::kLexicographic:
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         return LexLess(quadruples[a], quadruples[b]);
                       });
      return order;
    case LayoutPolicy::kMedianCurve:
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         const int ma = quadruples[a].MedianCurve();
                         const int mb = quadruples[b].MedianCurve();
                         if (ma != mb) return ma < mb;
                         return LexLess(quadruples[a], quadruples[b]);
                       });
      return order;
    case LayoutPolicy::kLocalOptimization:
      return LocalOptimizationOrder(base, quadruples, options);
  }
  return order;
}

}  // namespace geosir::storage
