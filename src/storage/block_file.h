#ifndef GEOSIR_STORAGE_BLOCK_FILE_H_
#define GEOSIR_STORAGE_BLOCK_FILE_H_

#include <cstdint>
#include <vector>

#include "storage/block_device.h"
#include "util/relaxed_counter.h"
#include "util/retry.h"
#include "util/status.h"

namespace geosir::storage {

/// Per-block CRC32 trailer: the last 4 bytes of a block hold the CRC32 of
/// the preceding block_size - 4 bytes. ExternalRTree nodes and
/// StoredShapeBase blocks are written in this format; BufferManager
/// verifies it when `BufferOptions::verify_checksums` is set, so bit rot
/// surfaces as kCorruption instead of garbage bytes.
constexpr size_t kBlockChecksumBytes = 4;

/// Usable bytes of a checksummed block.
inline size_t BlockPayloadCapacity(size_t block_size) {
  return block_size > kBlockChecksumBytes ? block_size - kBlockChecksumBytes
                                          : 0;
}

/// Pads `block` to `block_size` and writes the CRC32 trailer in place.
void StampBlockChecksum(std::vector<uint8_t>* block, size_t block_size);

/// Checks the trailer of a full block read back from a device.
util::Status VerifyBlockChecksum(const std::vector<uint8_t>& block);

/// A simulated block device with fixed-size blocks (default 1 KiB, the
/// paper's unit). Contents live in memory; reads and writes are counted
/// so the Section 4 experiments can report exact I/O figures.
class BlockFile : public BlockDevice {
 public:
  explicit BlockFile(size_t block_size = 1024) : block_size_(block_size) {}

  size_t block_size() const override { return block_size_; }
  size_t NumBlocks() const override { return blocks_.size(); }

  /// Appends a new block (payload truncated/zero-padded to block size)
  /// and returns its id. The in-memory file never fails to append.
  BlockId AppendBlock(const std::vector<uint8_t>& payload);

  /// Reads a block; counts one physical read.
  util::Result<std::vector<uint8_t>> ReadBlock(BlockId id) const;

  /// Overwrites a block; counts one physical write.
  util::Status WriteBlock(BlockId id, const std::vector<uint8_t>& payload);

  // BlockDevice interface (delegates to the legacy names above).
  util::Result<BlockId> Append(const std::vector<uint8_t>& payload) override {
    return AppendBlock(payload);
  }
  util::Result<std::vector<uint8_t>> Read(BlockId id) const override {
    return ReadBlock(id);
  }
  util::Status Write(BlockId id,
                     const std::vector<uint8_t>& payload) override {
    return WriteBlock(id, payload);
  }
  /// In-memory contents are always "durable"; Sync just counts the
  /// barrier so benchmarks can report sync frequency per policy.
  util::Status Sync() override {
    ++syncs_;
    return util::Status::OK();
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t syncs() const { return syncs_; }
  void ResetCounters() const {
    reads_ = 0;
    writes_ = 0;
    syncs_ = 0;
  }

 private:
  size_t block_size_;
  std::vector<std::vector<uint8_t>> blocks_;
  // Relaxed-atomic: concurrent queries over a shared index read blocks
  // through one device; the I/O counters must not race even though block
  // contents are read-only by then.
  mutable util::RelaxedCounter reads_;
  mutable util::RelaxedCounter writes_;
  mutable util::RelaxedCounter syncs_;
};

/// Fault-handling knobs of a BufferManager.
struct BufferOptions {
  /// Applied to device reads: kUnavailable faults (and, when
  /// verify_checksums is set, checksum mismatches, which a re-read can
  /// heal if the flip happened on the read path) are retried up to
  /// max_attempts total attempts.
  util::RetryPolicy retry;
  /// Verify the per-block CRC32 trailer on every physical read. Requires
  /// blocks written through StampBlockChecksum (ExternalRTree and
  /// StoredShapeBase blocks are). A persistent mismatch surfaces as
  /// kCorruption, never as garbage bytes.
  bool verify_checksums = false;
};

/// LRU buffer pool over a BlockDevice. Pin() serves hits from memory and
/// faults misses through the device, evicting the least recently used
/// frame. The Section 4 experiments sweep `capacity_blocks` from 1 to 100
/// (1 KiB - 100 KiB of buffer).
class BufferManager {
 public:
  BufferManager(const BlockDevice* device, size_t capacity_blocks,
                BufferOptions options = {});

  /// Returns the block contents, faulting it in if needed.
  ///
  /// POINTER LIFETIME: the returned pointer aliases a buffer frame and is
  /// invalidated by the next Pin() that evicts or overwrites that frame
  /// (any Pin() of a different block may do so — with capacity 1, every
  /// one does) and by Clear(). Callers must copy the bytes they need
  /// before pinning another block; see BufferManagerPinContract in
  /// tests/fault_injection_test.cc for the regression test.
  ///
  /// Transient device faults (kUnavailable) are retried per
  /// `options.retry`; with `options.verify_checksums`, a block whose CRC32
  /// trailer never verifies within the retry budget returns kCorruption.
  util::Result<const std::vector<uint8_t>*> Pin(BlockId id);

  /// Drops all cached frames (counters are kept).
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Physical reads issued by this buffer (== misses).
  uint64_t io_reads() const { return misses_; }
  /// Extra read attempts spent healing transient faults.
  uint64_t retries() const { return retries_; }
  /// Reads whose checksum verification failed (before any retry healed
  /// them).
  uint64_t checksum_failures() const { return checksum_failures_; }
  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
    retries_ = 0;
    checksum_failures_ = 0;
  }
  /// Pins attempted (== hits + misses), successful or not. The external
  /// index derives per-query "blocks actually visited" from deltas of
  /// this, so it must stay coherent with the hit/miss split.
  uint64_t pins() const { return hits_ + misses_; }

  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    BlockId id;
    std::vector<uint8_t> data;
    uint64_t last_used;
  };

  const BlockDevice* device_;
  size_t capacity_;
  BufferOptions options_;
  std::vector<Frame> frames_;  // Small capacities: linear scan is fine.
  uint64_t clock_ = 0;
  // Counters are relaxed-atomic (diagnostics may be read while another
  // thread pins); the frame table itself is still single-owner — callers
  // running concurrent queries use one BufferManager per query thread.
  util::RelaxedCounter hits_;
  util::RelaxedCounter misses_;
  util::RelaxedCounter retries_;
  util::RelaxedCounter checksum_failures_;
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_BLOCK_FILE_H_
