#ifndef GEOSIR_STORAGE_BLOCK_FILE_H_
#define GEOSIR_STORAGE_BLOCK_FILE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace geosir::storage {

using BlockId = uint32_t;

/// A simulated block device with fixed-size blocks (default 1 KiB, the
/// paper's unit). Contents live in memory; reads and writes are counted
/// so the Section 4 experiments can report exact I/O figures.
class BlockFile {
 public:
  explicit BlockFile(size_t block_size = 1024) : block_size_(block_size) {}

  size_t block_size() const { return block_size_; }
  size_t NumBlocks() const { return blocks_.size(); }

  /// Appends a new block (payload truncated/zero-padded to block size)
  /// and returns its id.
  BlockId AppendBlock(const std::vector<uint8_t>& payload);

  /// Reads a block; counts one physical read.
  util::Result<std::vector<uint8_t>> ReadBlock(BlockId id) const;

  /// Overwrites a block; counts one physical write.
  util::Status WriteBlock(BlockId id, const std::vector<uint8_t>& payload);

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  void ResetCounters() const {
    reads_ = 0;
    writes_ = 0;
  }

 private:
  size_t block_size_;
  std::vector<std::vector<uint8_t>> blocks_;
  mutable uint64_t reads_ = 0;
  mutable uint64_t writes_ = 0;
};

/// LRU buffer pool over a BlockFile. Pin() serves hits from memory and
/// faults misses through the file, evicting the least recently used
/// frame. The Section 4 experiments sweep `capacity_blocks` from 1 to 100
/// (1 KiB - 100 KiB of buffer).
class BufferManager {
 public:
  BufferManager(const BlockFile* file, size_t capacity_blocks);

  /// Returns the block contents, faulting it in if needed.
  util::Result<const std::vector<uint8_t>*> Pin(BlockId id);

  /// Drops all cached frames (counters are kept).
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Physical reads issued by this buffer (== misses).
  uint64_t io_reads() const { return misses_; }
  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
  }

  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    BlockId id;
    std::vector<uint8_t> data;
    uint64_t last_used;
  };

  const BlockFile* file_;
  size_t capacity_;
  std::vector<Frame> frames_;  // Small capacities: linear scan is fine.
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_BLOCK_FILE_H_
