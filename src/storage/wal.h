#ifndef GEOSIR_STORAGE_WAL_H_
#define GEOSIR_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dynamic_base_journal.h"
#include "core/dynamic_shape_base.h"
#include "storage/appendable_file.h"
#include "util/status.h"

namespace geosir::storage {

/// Write-ahead log + atomic checkpoints for core::DynamicShapeBase.
///
/// On-disk layout (all little-endian), one generation at a time inside a
/// directory:
///
///   ckpt-<gen>.gsir   checkpoint: a v2 shape file (base_io.h) holding
///                     every live shape at checkpoint time, written
///                     atomically and durably (WriteFileAtomic).
///   wal-<gen>.log     append-only record log. Frame format:
///                       u32 payload_len | u64 lsn | u8 type
///                       | payload bytes | u32 crc32
///                     The CRC covers the 13 header bytes + payload, so a
///                     flipped length or lsn is caught, not just payload
///                     rot. LSNs are monotonic and continue across
///                     generation rotations.
///
/// Every WAL file BEGINS with a kCompactCommit record carrying the
/// generation number, the next stable id, and the stable id of each
/// checkpoint shape (in checkpoint order). Checkpoint + head record
/// together restore the exact live state; the records after the head
/// replay the mutations since.
///
/// Rotation (the atomic-checkpoint protocol, run by LogCompactCommit):
///   1. write ckpt-(g+1) atomically (fsync tmp, rename, fsync dir),
///   2. create wal-(g+1) with a synced head record,
///   3. delete wal-(g) and ckpt-(g).
/// A crash between any two steps leaves either generation recoverable;
/// OpenDurableDynamicBase picks the newest generation whose WAL head is
/// valid and cleans up the rest.

/// When the WAL fsyncs. An acknowledged mutation is guaranteed to survive
/// a crash only once a sync covering its record returned OK.
enum class WalSyncPolicy : uint8_t {
  /// Sync after every record: zero acked-data loss, slowest.
  kEveryRecord = 0,
  /// Sync every `sync_every_n` records: bounds loss to a window, keeps
  /// the common insert path cheap. The default.
  kEveryN = 1,
  /// Sync only at checkpoint boundaries (and on explicit Sync()): the
  /// fastest policy; a crash can lose everything since the last
  /// checkpoint.
  kOnCheckpoint = 2,
};

struct WalOptions {
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryN;
  /// Records per sync under kEveryN. The default trades a bounded
  /// durability window (a power cut may lose up to this many of the most
  /// recent acknowledged mutations — a clean process crash loses
  /// nothing: the OS still holds the written bytes) for amortizing the
  /// sync barrier, whose fixed cost (the filesystem journal commit,
  /// ~0.3ms on local SSDs, several ms on virtualized disks) is paid per
  /// sync no matter how few records it covers. The posix file keeps the
  /// window's data cost low by hinting asynchronous writeback as the log
  /// grows, so the barrier mostly waits on the commit, not on streaming
  /// dirty pages. bench_wal measures the full policy spectrum. Ingest
  /// that needs a tighter bound can lower this, use kEveryRecord, or
  /// call WalJournal::Sync() at its own commit points.
  size_t sync_every_n = 4096;
};

enum class WalRecordType : uint8_t {
  /// Head of every WAL file: generation + next id + live stable ids.
  kCompactCommit = 1,
  kInsert = 2,
  kRemove = 3,
  /// Advisory marker that a compaction started.
  kCompactBegin = 4,
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kCompactBegin;
  std::vector<uint8_t> payload;
};

/// Fixed framing cost per record: u32 len + u64 lsn + u8 type before the
/// payload, u32 crc after it.
inline constexpr size_t kWalFrameHeaderBytes =
    sizeof(uint32_t) + sizeof(uint64_t) + 1;
inline constexpr size_t kWalFrameOverheadBytes =
    kWalFrameHeaderBytes + sizeof(uint32_t);

/// What reading a WAL file found. A torn tail (incomplete final frame) is
/// normal after a crash and only sets `truncated_bytes`; a complete frame
/// with a bad CRC or a broken LSN chain additionally sets `salvaged` —
/// the valid prefix is still returned.
struct WalReadReport {
  size_t truncated_bytes = 0;
  bool salvaged = false;
};

/// Decodes the valid prefix of a WAL byte stream. Never fails: corruption
/// only shortens the result (the crash-recovery contract is that replay
/// applies a prefix of the logged mutations, never garbage).
std::vector<WalRecord> ReadWalRecords(const std::vector<uint8_t>& bytes,
                                      WalReadReport* report = nullptr);

/// Appends one framed record to `out` (codec helper; the fuzz tests use
/// it to build well-formed logs to mutate).
void AppendWalFrame(std::vector<uint8_t>* out, uint64_t lsn,
                    WalRecordType type, const std::vector<uint8_t>& payload);

/// Resume state for incremental tailing reads (ReadWalRecordsSince): the
/// byte offset where the last decode stopped and the LSN the frame there
/// must carry, so a log-shipping loop does not re-decode (and re-CRC) the
/// whole file on every fetch. Zero-initialized = start from the head; the
/// reader resets it itself whenever it no longer matches the file.
struct WalTailCursor {
  uint64_t generation = 0;
  uint64_t offset = 0;    // First undecoded byte.
  uint64_t next_lsn = 0;  // LSN the frame at `offset` must carry.
  uint64_t base_lsn = 0;  // LSN of the file's head record.
  bool primed = false;    // False until the head frame has been decoded.
};

/// Tailing read for log shipping: returns up to `max_records` records
/// (0 = unlimited) with lsn >= from_lsn from wal-<generation> in `dir`,
/// trusting at most `committed_bytes` bytes of the file. That bound is
/// the writer's published complete-frame offset (WalJournal::tail_state),
/// and it is what makes reading concurrently with the appender safe: the
/// visible file size can run ahead of the committed prefix (a frame half
/// appended, or a failed append's garbage tail), so a reader must never
/// decode past it. Records before `from_lsn` are CRC- and chain-validated
/// but not materialized. Returns kNotFound when the file does not exist
/// (the generation was rotated away). `cursor`, when provided, carries
/// resume state across calls.
util::Result<std::vector<WalRecord>> ReadWalRecordsSince(
    Env* env, const std::string& dir, uint64_t generation, uint64_t from_lsn,
    uint64_t committed_bytes, size_t max_records = 0,
    WalReadReport* report = nullptr, WalTailCursor* cursor = nullptr);

/// Generation numbers present in `dir` (wal-* and ckpt-* files, sorted
/// ascending) plus orphan .tmp names: the directory inventory that both
/// primary recovery and follower-local recovery sweep.
struct WalDirListing {
  std::vector<uint64_t> wal_generations;
  std::vector<uint64_t> ckpt_generations;
  std::vector<std::string> tmp_names;
};
util::Result<WalDirListing> ListWalDir(Env* env, const std::string& dir);

// --- Record payload codecs ---

struct WalInsertPayload {
  uint64_t id = 0;
  core::ImageId image = core::kNoImage;
  std::string label;
  bool closed = false;
  std::vector<geom::Point> vertices;
};

struct WalCommitPayload {
  uint64_t generation = 0;
  /// Primary term that wrote this generation. Every record in the file
  /// inherits the head commit's epoch: a promotion bumps the epoch and
  /// rotates, so a generation never mixes records from two primaries.
  uint64_t epoch = 0;
  /// LSN at which `epoch` began (the head LSN of the first generation the
  /// epoch wrote). Records with lsn < epoch_start_lsn are shared history
  /// with the previous epoch; a rejoining replica whose log extends past
  /// this point under an older epoch holds a divergent suffix.
  uint64_t epoch_start_lsn = 0;
  uint64_t next_id = 0;
  std::vector<uint64_t> live_ids;  // Stable id of checkpoint shape i.
};

std::vector<uint8_t> EncodeInsert(const WalInsertPayload& payload);
util::Result<WalInsertPayload> DecodeInsert(const std::vector<uint8_t>& bytes);
std::vector<uint8_t> EncodeRemove(uint64_t id);
util::Result<uint64_t> DecodeRemove(const std::vector<uint8_t>& bytes);
std::vector<uint8_t> EncodeCommit(const WalCommitPayload& payload);
util::Result<WalCommitPayload> DecodeCommit(const std::vector<uint8_t>& bytes);

/// Generation file names inside a WAL directory.
std::string WalPath(const std::string& dir, uint64_t generation);
std::string CheckpointPath(const std::string& dir, uint64_t generation);

/// Appender over one open WAL file. Applies the sync policy per record
/// and tracks the last appended and last synced LSN. Errors are sticky:
/// after a failed append or sync the file tail is unknown, so every later
/// append fails with the first error until the log is rotated.
class WriteAheadLog {
 public:
  /// `synced_upto` is the exclusive LSN durability bound of the file's
  /// EXISTING contents: pass `next_lsn` for a fresh (truncated) file —
  /// an empty file is trivially durable — and 0 when attaching to a file
  /// whose bytes may never have been fsynced (recovery re-reads a WAL the
  /// previous process could have closed cleanly without syncing), so the
  /// first Sync() issues a real barrier instead of short-circuiting.
  WriteAheadLog(std::unique_ptr<AppendableFile> file, WalOptions options,
                uint64_t next_lsn, uint64_t synced_upto);

  /// Frames, appends and (per policy) syncs one record; returns its LSN.
  util::Result<uint64_t> Append(WalRecordType type,
                                const std::vector<uint8_t>& payload);
  /// Explicit durability barrier regardless of policy.
  util::Status Sync();

  /// The LSN the next record will get. Exclusive bounds avoid the
  /// "nothing appended yet" underflow: records with lsn < next_lsn()
  /// exist, records with lsn < synced_upto() are durable.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Exclusive durability bound: every record with lsn < synced_upto()
  /// survives a crash. Only advances when a real fsync succeeds; the
  /// constructor's `synced_upto` argument states what the caller knows
  /// about the pre-existing bytes. Safe to read from any thread.
  uint64_t synced_upto() const {
    return synced_upto_.load(std::memory_order_acquire);
  }
  /// Complete-frame byte length of the file: the prefix a concurrent
  /// tailing reader may trust. Bytes at or past this offset may belong to
  /// a frame still being appended (or to a failed append's garbage tail)
  /// and must not be decoded. Safe to read from any thread; the appender
  /// publishes the new bound only after the whole frame is in the file.
  uint64_t committed_bytes() const {
    return committed_bytes_.load(std::memory_order_acquire);
  }
  uint64_t appends() const { return appends_; }
  const util::Status& status() const { return sticky_; }

  /// Atomically rewrites the WAL at `path` to hold only the records with
  /// lsn < `lsn` (divergence repair: a rejoining old primary drops the
  /// suffix the new epoch never replicated). Same guarantees as the
  /// dirty-mirror truncation in follower recovery: the valid prefix is
  /// re-framed byte-identically and installed with WriteFileAtomic, so a
  /// crash mid-repair leaves either the old file or the truncated one,
  /// never a torn hybrid. Returns the number of complete records dropped.
  /// Refuses (kFailedPrecondition) when nothing would survive — a WAL
  /// without its head commit is unrecoverable, so the caller must resync
  /// from a snapshot instead. No WriteAheadLog may have `path` open.
  static util::Result<size_t> TruncateTo(Env* env, const std::string& path,
                                         uint64_t lsn);

 private:
  util::Status SyncLocked();

  std::unique_ptr<AppendableFile> file_;
  WalOptions options_;
  uint64_t next_lsn_;
  std::atomic<uint64_t> synced_upto_;
  std::atomic<uint64_t> committed_bytes_;
  uint64_t appends_ = 0;
  uint64_t bytes_since_sync_ = 0;
  size_t unsynced_records_ = 0;
  util::Status sticky_;
  /// Reused frame buffer (capacity persists across appends).
  std::vector<uint8_t> frame_scratch_;
};

/// Coherent (generation, tail) snapshot of a WalJournal, for log shipping
/// that runs concurrently with the journal's owner: a follower fetch needs
/// the generation, the record bound and the byte bound to agree on one
/// moment, or a rotation between reads would pair an old generation with a
/// new offset.
struct WalTailState {
  uint64_t generation = 0;
  /// Exclusive: records with lsn < next_lsn exist in the log stream.
  uint64_t next_lsn = 0;
  /// Trust bound for readers of wal-<generation> (see
  /// WriteAheadLog::committed_bytes).
  uint64_t committed_bytes = 0;
  /// Exclusive durability bound of the stream.
  uint64_t synced_upto = 0;
  /// Primary term the journal is writing under (see WalCommitPayload).
  uint64_t epoch = 0;
  /// LSN at which `epoch` began.
  uint64_t epoch_start_lsn = 0;
  bool detached = false;
};

/// The DynamicBaseJournal implementation: logs mutations to the current
/// generation's WAL and turns compaction commits into checkpoint
/// rotations. Created by OpenDurableDynamicBase.
class WalJournal : public core::DynamicBaseJournal {
 public:
  /// A journal writing to `wal` (may be null = detached: mutations are
  /// rejected until the first LogCompactCommit creates the next
  /// generation — the dirty-tail recovery path).
  WalJournal(Env* env, std::string dir, WalOptions options,
             uint64_t generation, uint64_t next_lsn,
             std::unique_ptr<WriteAheadLog> wal, uint64_t epoch = 0,
             uint64_t epoch_start_lsn = 0)
      : env_(env),
        dir_(std::move(dir)),
        options_(options),
        generation_(generation),
        next_lsn_(next_lsn),
        epoch_(epoch),
        epoch_start_lsn_(epoch_start_lsn),
        wal_(std::move(wal)) {}

  util::Status LogInsert(uint64_t id, const geom::Polyline& boundary,
                         core::ImageId image,
                         const std::string& label) override;
  util::Status LogRemove(uint64_t id) override;
  util::Status LogCompactBegin() override;
  util::Status LogCompactCommit(const core::ShapeBase& main,
                                const std::vector<uint64_t>& stable_ids,
                                uint64_t next_id) override;

  /// Durability barrier for callers that need an acked mutation on disk
  /// now (e.g. before replying to a client) regardless of sync policy.
  util::Status Sync();

  uint64_t generation() const { return generation_; }
  /// The LSN the next mutation record will get (the crash harness
  /// correlates this with synced_upto to bound what recovery may lose).
  uint64_t next_lsn() const { return next_lsn_; }
  /// Exclusive durability bound (see WriteAheadLog::synced_upto).
  uint64_t synced_upto() const {
    return wal_ != nullptr ? wal_->synced_upto() : next_lsn_;
  }
  bool detached() const { return wal_ == nullptr; }
  uint64_t epoch() const { return epoch_; }
  uint64_t epoch_start_lsn() const { return epoch_start_lsn_; }

  /// Starts a new primary term (failover promotion). The epoch only takes
  /// effect at the next LogCompactCommit, which rotates to a generation
  /// whose head is stamped with it and whose head LSN becomes the epoch
  /// start — until then every mutation is rejected, so no record is ever
  /// written under a bumped epoch into an old-epoch generation (the
  /// fencing invariant). `new_epoch` must strictly exceed the current
  /// epoch. Owner thread only; the caller rotates via Compact().
  util::Status BeginEpoch(uint64_t new_epoch);

  /// Coherent tail snapshot for concurrent log shipping. Unlike the plain
  /// accessors above (owner-thread only), this may be called from any
  /// thread while the owner keeps appending and rotating.
  WalTailState tail_state() const;

 private:
  util::Status AppendMutation(WalRecordType type,
                              const std::vector<uint8_t>& payload);

  Env* env_;
  std::string dir_;
  WalOptions options_;
  /// Guards generation_/next_lsn_/wal_ against tail_state() readers. The
  /// owner is still single-writer; the mutex only makes the (generation,
  /// bounds) tuple readable coherently across a rotation.
  mutable std::mutex tail_mutex_;
  uint64_t generation_;
  uint64_t next_lsn_;
  uint64_t epoch_;
  uint64_t epoch_start_lsn_;
  /// True between BeginEpoch and the rotation that stamps it: mutations
  /// are fenced off until the new term has a durable head of its own.
  bool epoch_pending_ = false;
  std::unique_ptr<WriteAheadLog> wal_;
  /// Reused payload buffer (capacity persists across mutations).
  std::vector<uint8_t> payload_scratch_;
};

/// What recovery did (optional out-param of OpenDurableDynamicBase).
struct RecoveryReport {
  /// Mutation records replayed on top of the checkpoint.
  size_t applied = 0;
  /// Bytes dropped from the WAL tail (torn final frame or corrupt
  /// suffix).
  size_t truncated_bytes = 0;
  /// True when a complete-but-corrupt frame cut the replay short (the
  /// valid prefix was kept).
  bool salvaged = false;
  /// Generation recovered from.
  uint64_t generation = 0;
  /// Primary term recovered from the WAL head (0 for fresh stores and
  /// stores written before epochs existed).
  uint64_t epoch = 0;
  /// Shapes restored from the checkpoint file.
  size_t checkpoint_shapes = 0;
  /// Newer generations whose WAL head was torn/invalid (a crash landed
  /// mid-rotation) that recovery skipped over.
  size_t generations_skipped = 0;
  /// True when the directory held no recoverable state at all (first open
  /// of the directory, or a crash during the very first initialization)
  /// and a fresh generation 0 was created.
  bool reinitialized = false;
};

struct DurabilityOptions {
  /// Filesystem to run against; nullptr means Env::Posix(). Crash tests
  /// pass a MemEnv.
  Env* env = nullptr;
  WalOptions wal;
  /// Upper bound on the stable-id space recovery will materialize
  /// (RestoreCheckpoint allocates one record placeholder per id in
  /// [0, next_id), including tombstone holes). The head record's next_id
  /// is CRC-guarded but not self-limiting, so without a cap a corrupt or
  /// crafted store could demand a multi-gigabyte allocation before
  /// recovery notices anything wrong; a head whose next_id exceeds the
  /// cap is rejected as kCorruption instead. Raise this for stores that
  /// have legitimately allocated more ids over their lifetime.
  uint64_t max_recovered_ids = uint64_t{1} << 24;
};

/// A recovered (or freshly created) durable base with its journal
/// attached. The journal must outlive the base — keep both.
struct DurableDynamicBase {
  std::unique_ptr<core::DynamicShapeBase> base;
  std::unique_ptr<WalJournal> journal;
};

/// Opens the durable base stored in `dir`, creating it if the directory
/// is empty. Recovery: pick the newest generation with a valid WAL head,
/// restore its checkpoint, replay the log (torn tails truncated, corrupt
/// suffixes salvaged, replay idempotent), delete stale generation files,
/// and attach a journal — appending to the existing WAL when its tail was
/// clean, or rotating to a fresh generation when it was not. Returns
/// kCorruption only when checkpointed shapes exist but no generation can
/// be recovered.
util::Result<DurableDynamicBase> OpenDurableDynamicBase(
    const std::string& dir, core::DynamicShapeBase::Options options = {},
    const DurabilityOptions& durability = {},
    RecoveryReport* report = nullptr);

}  // namespace geosir::storage

#endif  // GEOSIR_STORAGE_WAL_H_
