#ifndef GEOSIR_RANGESEARCH_BRUTE_FORCE_INDEX_H_
#define GEOSIR_RANGESEARCH_BRUTE_FORCE_INDEX_H_

#include <string>
#include <vector>

#include "rangesearch/simplex_index.h"

namespace geosir::rangesearch {

/// Linear-scan reference implementation. O(n) per query; used as the
/// correctness oracle for the real structures and as the baseline in the
/// backend ablation benchmark.
class BruteForceIndex : public SimplexIndex {
 public:
  void Build(std::vector<IndexedPoint> points) override;
  size_t CountInTriangle(const geom::Triangle& t) const override;
  void ReportInTriangle(const geom::Triangle& t,
                        const Visitor& visit) const override;
  size_t CountInRect(const geom::BoundingBox& box) const override;
  void ReportInRect(const geom::BoundingBox& box,
                    const Visitor& visit) const override;
  std::string name() const override { return "brute-force"; }
  size_t size() const override { return points_.size(); }

 private:
  std::vector<IndexedPoint> points_;
};

}  // namespace geosir::rangesearch

#endif  // GEOSIR_RANGESEARCH_BRUTE_FORCE_INDEX_H_
