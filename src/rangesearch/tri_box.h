#ifndef GEOSIR_RANGESEARCH_TRI_BOX_H_
#define GEOSIR_RANGESEARCH_TRI_BOX_H_

#include "geom/point.h"

namespace geosir::rangesearch {

/// True if the triangle contains all four corners of the box (so every
/// point of the box is inside the triangle).
bool TriangleContainsBox(const geom::Triangle& t, const geom::BoundingBox& box);

/// True if the triangle and the box share at least one point. Exact
/// separating-axis test over the box axes and the three edge normals.
bool TriangleIntersectsBox(const geom::Triangle& t,
                           const geom::BoundingBox& box);

}  // namespace geosir::rangesearch

#endif  // GEOSIR_RANGESEARCH_TRI_BOX_H_
