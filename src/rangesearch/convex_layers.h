#ifndef GEOSIR_RANGESEARCH_CONVEX_LAYERS_H_
#define GEOSIR_RANGESEARCH_CONVEX_LAYERS_H_

#include <vector>

#include "rangesearch/simplex_index.h"

namespace geosir::rangesearch {

/// The half-plane { p : normal . p <= offset }.
struct HalfPlane {
  geom::Point normal;
  double offset = 0.0;

  bool Contains(geom::Point p) const { return normal.Dot(p) <= offset; }
};

/// Output-sensitive half-plane range reporting over convex layers
/// (Chazelle-style onion peeling). Key property: if a half-plane contains
/// any point of layer i+1, it contains a vertex of layer i — so the query
/// walks inward and stops at the first layer it misses entirely.
///
/// Per layer, the extreme vertex in the query direction is found in
/// O(log h) by binary searching the layer's sorted outward edge-normal
/// angles; the hits are then enumerated by walking both ways from the
/// extreme vertex, O(1 + k_layer). Total O((1 + L) log n + k) where L is
/// the number of layers intersected.
///
/// This doubles as a full SimplexIndex backend: a query triangle is the
/// intersection of three half-planes, so the index enumerates the
/// half-plane of one triangle edge and filters by the other two (same
/// for boxes, via the x <= max_x half-plane). Build is O(n * layers) —
/// fine for moderate bases, quadratic-ish for huge uniform ones — which
/// is exactly the trade-off the backend ablation shows.
class ConvexLayersIndex : public SimplexIndex {
 public:
  void Build(std::vector<IndexedPoint> points) override;
  size_t CountInTriangle(const geom::Triangle& t) const override;
  void ReportInTriangle(const geom::Triangle& t,
                        const Visitor& visit) const override;
  size_t CountInRect(const geom::BoundingBox& box) const override;
  void ReportInRect(const geom::BoundingBox& box,
                    const Visitor& visit) const override;
  std::string name() const override { return "convex-layers"; }
  size_t size() const override { return total_points_; }

  /// Reports every indexed point inside the half-plane.
  void ReportInHalfPlane(const HalfPlane& hp,
                         const SimplexIndex::Visitor& visit) const;

  /// Counts points inside the half-plane (reporting walk without output).
  size_t CountInHalfPlane(const HalfPlane& hp) const;

  size_t NumLayers() const { return layers_.size(); }

 private:
  struct Layer {
    std::vector<IndexedPoint> hull;   // CCW order.
    std::vector<double> edge_angles;  // Outward normal angle of edge i
                                      // (hull[i] -> hull[i+1]), rotated to
                                      // ascending order.
    size_t angle_rotation = 0;        // hull edge index of edge_angles[0].
  };

  /// Index of the hull vertex minimizing hp.normal . p.
  size_t ExtremeVertex(const Layer& layer, geom::Point direction) const;

  std::vector<Layer> layers_;
  size_t total_points_ = 0;
};

}  // namespace geosir::rangesearch

#endif  // GEOSIR_RANGESEARCH_CONVEX_LAYERS_H_
