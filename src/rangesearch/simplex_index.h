#ifndef GEOSIR_RANGESEARCH_SIMPLEX_INDEX_H_
#define GEOSIR_RANGESEARCH_SIMPLEX_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geom/point.h"
#include "util/relaxed_counter.h"
#include "util/status.h"

namespace geosir::rangesearch {

/// A point tagged with the caller's identifier (in the shape base this is
/// the index of the vertex in the global vertex pool).
struct IndexedPoint {
  geom::Point p;
  uint32_t id = 0;
};

/// Shared concurrency-safe diagnostic counter (see util/relaxed_counter.h;
/// obs/ and storage/ use the same implementation).
using RelaxedCounter = util::RelaxedCounter;

/// Counters describing the work an index did; used by the ablation
/// benchmarks to compare backends beyond wall-clock time.
struct QueryStats {
  RelaxedCounter nodes_visited;
  RelaxedCounter points_tested;
  RelaxedCounter points_reported;
  /// Fault-tolerance counters (external backends only): subtrees pruned
  /// because their blocks were unreadable under a skip-unreadable
  /// degradation policy, and how many of those were leaves. Nonzero
  /// deltas mean query answers since the last Reset are lower bounds.
  RelaxedCounter subtrees_skipped;
  RelaxedCounter leaves_skipped;

  void Reset() { *this = QueryStats{}; }
};

/// Interface for the simplex (triangle) range-searching structures of
/// Section 2.5: preprocess a static point set so that the vertices falling
/// inside a query triangle can be counted and reported quickly. The
/// envelope matcher decomposes every envelope-difference ring into O(m)
/// triangles and drives them through this interface.
class SimplexIndex {
 public:
  using Visitor = std::function<void(const IndexedPoint&)>;

  virtual ~SimplexIndex() = default;

  /// Builds the structure over `points`. May be called once per instance.
  virtual void Build(std::vector<IndexedPoint> points) = 0;

  /// Number of indexed points inside the (closed) triangle.
  virtual size_t CountInTriangle(const geom::Triangle& t) const = 0;

  /// Invokes `visit` for every indexed point inside the (closed) triangle.
  virtual void ReportInTriangle(const geom::Triangle& t,
                                const Visitor& visit) const = 0;

  /// Number of indexed points inside the (closed) axis-aligned box.
  virtual size_t CountInRect(const geom::BoundingBox& box) const = 0;

  /// Invokes `visit` for every indexed point inside the (closed) box.
  virtual void ReportInRect(const geom::BoundingBox& box,
                            const Visitor& visit) const = 0;

  /// Backend name for logs and benchmark labels.
  virtual std::string name() const = 0;

  /// Number of indexed points.
  virtual size_t size() const = 0;

  /// Work counters accumulated since the last Reset; maintained on a
  /// best-effort basis by each backend.
  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Fault-path escape hatch for the void/size_t query interface: a
  /// backend that hit an unrecoverable error (fail-fast I/O fault,
  /// corruption) during a query records it; callers that care (the
  /// envelope matcher) collect it here. Returns the first error since the
  /// last call and clears it. In-memory backends never fail.
  virtual util::Status TakeLastError() const { return util::Status::OK(); }

 protected:
  mutable QueryStats stats_;
};

}  // namespace geosir::rangesearch

#endif  // GEOSIR_RANGESEARCH_SIMPLEX_INDEX_H_
