#ifndef GEOSIR_RANGESEARCH_SIMPLEX_INDEX_H_
#define GEOSIR_RANGESEARCH_SIMPLEX_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geom/point.h"
#include "util/status.h"

namespace geosir::rangesearch {

/// A point tagged with the caller's identifier (in the shape base this is
/// the index of the vertex in the global vertex pool).
struct IndexedPoint {
  geom::Point p;
  uint32_t id = 0;
};

/// Counter safe to bump from concurrent queries over a shared index
/// (MatchBatch runs several matchers against one SimplexIndex). Relaxed
/// ordering only: the values are diagnostics, never synchronization.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t value = 0) : value_(value) {}
  RelaxedCounter(const RelaxedCounter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }
  operator uint64_t() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_;
};

/// Counters describing the work an index did; used by the ablation
/// benchmarks to compare backends beyond wall-clock time.
struct QueryStats {
  RelaxedCounter nodes_visited;
  RelaxedCounter points_tested;
  RelaxedCounter points_reported;
  /// Fault-tolerance counters (external backends only): subtrees pruned
  /// because their blocks were unreadable under a skip-unreadable
  /// degradation policy, and how many of those were leaves. Nonzero
  /// deltas mean query answers since the last Reset are lower bounds.
  RelaxedCounter subtrees_skipped;
  RelaxedCounter leaves_skipped;

  void Reset() { *this = QueryStats{}; }
};

/// Interface for the simplex (triangle) range-searching structures of
/// Section 2.5: preprocess a static point set so that the vertices falling
/// inside a query triangle can be counted and reported quickly. The
/// envelope matcher decomposes every envelope-difference ring into O(m)
/// triangles and drives them through this interface.
class SimplexIndex {
 public:
  using Visitor = std::function<void(const IndexedPoint&)>;

  virtual ~SimplexIndex() = default;

  /// Builds the structure over `points`. May be called once per instance.
  virtual void Build(std::vector<IndexedPoint> points) = 0;

  /// Number of indexed points inside the (closed) triangle.
  virtual size_t CountInTriangle(const geom::Triangle& t) const = 0;

  /// Invokes `visit` for every indexed point inside the (closed) triangle.
  virtual void ReportInTriangle(const geom::Triangle& t,
                                const Visitor& visit) const = 0;

  /// Number of indexed points inside the (closed) axis-aligned box.
  virtual size_t CountInRect(const geom::BoundingBox& box) const = 0;

  /// Invokes `visit` for every indexed point inside the (closed) box.
  virtual void ReportInRect(const geom::BoundingBox& box,
                            const Visitor& visit) const = 0;

  /// Backend name for logs and benchmark labels.
  virtual std::string name() const = 0;

  /// Number of indexed points.
  virtual size_t size() const = 0;

  /// Work counters accumulated since the last Reset; maintained on a
  /// best-effort basis by each backend.
  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Fault-path escape hatch for the void/size_t query interface: a
  /// backend that hit an unrecoverable error (fail-fast I/O fault,
  /// corruption) during a query records it; callers that care (the
  /// envelope matcher) collect it here. Returns the first error since the
  /// last call and clears it. In-memory backends never fail.
  virtual util::Status TakeLastError() const { return util::Status::OK(); }

 protected:
  mutable QueryStats stats_;
};

}  // namespace geosir::rangesearch

#endif  // GEOSIR_RANGESEARCH_SIMPLEX_INDEX_H_
