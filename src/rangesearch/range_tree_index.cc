#include "rangesearch/range_tree_index.h"

#include <algorithm>
#include <cassert>

#include "rangesearch/tri_box.h"

namespace geosir::rangesearch {

using geom::BoundingBox;
using geom::Triangle;

void RangeTreeIndex::Build(std::vector<IndexedPoint> points) {
  points_ = std::move(points);
  nodes_.clear();
  ys_.clear();
  pts_.clear();
  lcasc_.clear();
  rcasc_.clear();
  root_ = -1;
  if (points_.empty()) return;

  // Fix the primary order: by x, ties by y then id. A point's position in
  // this order is its "rank"; queries are translated to rank intervals so
  // duplicate x-coordinates need no special casing.
  std::sort(points_.begin(), points_.end(),
            [](const IndexedPoint& a, const IndexedPoint& b) {
              if (a.p.x != b.p.x) return a.p.x < b.p.x;
              if (a.p.y != b.p.y) return a.p.y < b.p.y;
              return a.id < b.id;
            });

  // Secondary order: ranks sorted by (y, rank).
  std::vector<uint32_t> by_y(points_.size());
  for (uint32_t i = 0; i < by_y.size(); ++i) by_y[i] = i;
  std::sort(by_y.begin(), by_y.end(), [this](uint32_t a, uint32_t b) {
    if (points_[a].p.y != points_[b].p.y) {
      return points_[a].p.y < points_[b].p.y;
    }
    return a < b;
  });

  // Reserve the pooled arrays once: every tree level stores ~n entries
  // (plus one sentinel per node), and there are ~log2(n/leaf) + 2 levels.
  // Growing them per node would repeatedly reallocate multi-hundred-MB
  // arrays.
  size_t levels = 2;
  for (size_t m = points_.size(); m > leaf_size_; m /= 2) ++levels;
  const size_t estimated = (points_.size() + 2) * levels + 16;
  ys_.reserve(estimated);
  pts_.reserve(estimated);
  lcasc_.reserve(estimated);
  rcasc_.reserve(estimated);
  nodes_.reserve(2 * points_.size() / std::max<size_t>(1, leaf_size_) + 2);

  root_ = BuildNode(0, static_cast<uint32_t>(points_.size()), std::move(by_y));
}

int32_t RangeTreeIndex::BuildNode(uint32_t begin, uint32_t end,
                                  std::vector<uint32_t> by_y) {
  Node node;
  node.begin = begin;
  node.end = end;
  const uint32_t len = end - begin;
  node.list_off = static_cast<uint32_t>(ys_.size());

  // Materialize this node's y-sorted list plus the sentinel slot. The
  // pooled arrays were reserved in Build(); these appends never
  // reallocate on the estimated-capacity path.
  lcasc_.resize(lcasc_.size() + len + 1, 0);
  rcasc_.resize(rcasc_.size() + len + 1, 0);
  for (uint32_t rank : by_y) {
    ys_.push_back(points_[rank].p.y);
    pts_.push_back(rank);
  }
  ys_.push_back(0.0);  // Sentinel (value unused).
  pts_.push_back(0);

  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);

  if (len > leaf_size_) {
    const uint32_t mid = begin + len / 2;
    // Stable partition of the y-order into the children's y-orders, and
    // the cascade pointers: lcasc[i] = #left elements before position i
    // (== index in the left list of the first entry with y-order >= i).
    std::vector<uint32_t> left_y, right_y;
    left_y.reserve(mid - begin);
    right_y.reserve(end - mid);
    for (uint32_t i = 0; i < len; ++i) {
      lcasc_[node.list_off + i] = static_cast<uint32_t>(left_y.size());
      rcasc_[node.list_off + i] = static_cast<uint32_t>(right_y.size());
      const uint32_t rank = pts_[node.list_off + i];
      if (rank < mid) {
        left_y.push_back(rank);
      } else {
        right_y.push_back(rank);
      }
    }
    lcasc_[node.list_off + len] = static_cast<uint32_t>(left_y.size());
    rcasc_[node.list_off + len] = static_cast<uint32_t>(right_y.size());

    by_y.clear();
    by_y.shrink_to_fit();
    const int32_t left = BuildNode(begin, mid, std::move(left_y));
    const int32_t right = BuildNode(mid, end, std::move(right_y));
    nodes_[id].left = left;
    nodes_[id].right = right;
  }
  return id;
}

void RangeTreeIndex::EmitRange(const Node& n, uint32_t ylo, uint32_t yhi,
                               const Visitor* visit, size_t* count) const {
  if (count != nullptr) {
    *count += yhi - ylo;
    stats_.points_reported += yhi - ylo;
    return;
  }
  for (uint32_t i = ylo; i < yhi; ++i) {
    ++stats_.points_reported;
    (*visit)(points_[pts_[n.list_off + i]]);
  }
}

void RangeTreeIndex::QueryRect(const BoundingBox& box, const Visitor* visit,
                               size_t* count) const {
  if (root_ < 0 || box.empty()) return;

  // Rank interval [r1, r2) of points with x in [min_x, max_x].
  const auto lower_x = [this](double x) {
    uint32_t lo = 0, hi = static_cast<uint32_t>(points_.size());
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (points_[mid].p.x < x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  const auto upper_x = [this](double x) {
    uint32_t lo = 0, hi = static_cast<uint32_t>(points_.size());
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (points_[mid].p.x <= x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  const uint32_t r1 = lower_x(box.min_x);
  const uint32_t r2 = upper_x(box.max_x);
  if (r1 >= r2) return;

  // The single y binary search, at the root list; all deeper y-ranges
  // follow cascade pointers in O(1) per node.
  const Node& root = nodes_[root_];
  const uint32_t n = root.end - root.begin;
  const auto lower_y = [&](double y) {
    uint32_t lo = 0, hi = n;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (ys_[root.list_off + mid] < y) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  const auto upper_y = [&](double y) {
    uint32_t lo = 0, hi = n;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (ys_[root.list_off + mid] <= y) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  const uint32_t ylo0 = lower_y(box.min_y);
  const uint32_t yhi0 = upper_y(box.max_y);

  // Iterative walk with an explicit stack of (node, ylo, yhi).
  struct Frame {
    int32_t node;
    uint32_t ylo;
    uint32_t yhi;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root_, ylo0, yhi0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.ylo >= f.yhi) continue;
    const Node& node = nodes_[f.node];
    ++stats_.nodes_visited;
    if (node.end <= r1 || node.begin >= r2) continue;
    if (r1 <= node.begin && node.end <= r2) {
      EmitRange(node, f.ylo, f.yhi, visit, count);
      continue;
    }
    if (node.left < 0) {
      // Partial leaf: test ranks directly (the y-range already holds).
      for (uint32_t i = f.ylo; i < f.yhi; ++i) {
        ++stats_.points_tested;
        const uint32_t rank = pts_[node.list_off + i];
        if (rank >= r1 && rank < r2) {
          ++stats_.points_reported;
          if (count != nullptr) {
            ++(*count);
          } else {
            (*visit)(points_[rank]);
          }
        }
      }
      continue;
    }
    stack.push_back(Frame{node.left, lcasc_[node.list_off + f.ylo],
                          lcasc_[node.list_off + f.yhi]});
    stack.push_back(Frame{node.right, rcasc_[node.list_off + f.ylo],
                          rcasc_[node.list_off + f.yhi]});
  }
}

size_t RangeTreeIndex::CountInRect(const BoundingBox& box) const {
  size_t count = 0;
  QueryRect(box, nullptr, &count);
  return count;
}

void RangeTreeIndex::ReportInRect(const BoundingBox& box,
                                  const Visitor& visit) const {
  QueryRect(box, &visit, nullptr);
}

size_t RangeTreeIndex::CountInTriangle(const Triangle& t) const {
  size_t count = 0;
  ReportInTriangle(t, [&count](const IndexedPoint&) { ++count; });
  return count;
}

void RangeTreeIndex::ReportInTriangle(const Triangle& t,
                                      const Visitor& visit) const {
  const BoundingBox box = t.Bounds();
  const Visitor filtered = [&](const IndexedPoint& ip) {
    ++stats_.points_tested;
    if (t.Contains(ip.p)) visit(ip);
  };
  QueryRect(box, &filtered, nullptr);
}

}  // namespace geosir::rangesearch
