#ifndef GEOSIR_RANGESEARCH_GRID_INDEX_H_
#define GEOSIR_RANGESEARCH_GRID_INDEX_H_

#include <string>
#include <vector>

#include "rangesearch/simplex_index.h"

namespace geosir::rangesearch {

/// Uniform bucket grid. Cells overlapping the query triangle's bounding
/// box are visited; cells fully inside the triangle are reported without
/// per-point tests. Average O(k) for queries whose area matches the cell
/// granularity, degenerate to O(n) for adversarial distributions — exactly
/// the trade-off the backend ablation benchmark illustrates.
class GridIndex : public SimplexIndex {
 public:
  /// `target_points_per_cell` tunes the resolution; the default keeps a
  /// few points per cell at uniform density.
  explicit GridIndex(double target_points_per_cell = 4.0)
      : target_points_per_cell_(target_points_per_cell) {}

  void Build(std::vector<IndexedPoint> points) override;
  size_t CountInTriangle(const geom::Triangle& t) const override;
  void ReportInTriangle(const geom::Triangle& t,
                        const Visitor& visit) const override;
  size_t CountInRect(const geom::BoundingBox& box) const override;
  void ReportInRect(const geom::BoundingBox& box,
                    const Visitor& visit) const override;
  std::string name() const override { return "grid"; }
  size_t size() const override { return points_.size(); }

 private:
  geom::BoundingBox CellBounds(int cx, int cy) const;
  void CellRange(const geom::BoundingBox& box, int* x0, int* y0, int* x1,
                 int* y1) const;

  double target_points_per_cell_;
  std::vector<IndexedPoint> points_;  // Reordered so each cell is a slice.
  std::vector<uint32_t> cell_start_;  // Size nx*ny+1, offsets into points_.
  geom::BoundingBox bounds_;
  int nx_ = 0;
  int ny_ = 0;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
};

}  // namespace geosir::rangesearch

#endif  // GEOSIR_RANGESEARCH_GRID_INDEX_H_
