#ifndef GEOSIR_RANGESEARCH_RANGE_TREE_INDEX_H_
#define GEOSIR_RANGESEARCH_RANGE_TREE_INDEX_H_

#include <string>
#include <vector>

#include "rangesearch/simplex_index.h"

namespace geosir::rangesearch {

/// Two-dimensional layered range tree with fractional cascading.
///
/// The primary tree is a static balanced BST over the points sorted by x.
/// Every internal node stores its subtree's points sorted by y, and — the
/// fractional-cascading part — for each position in that list, the
/// positions of the smallest y-successor in each child's list. A
/// rectangle query then performs a single O(log n) binary search at the
/// root and walks to the O(log n) canonical nodes following the cascade
/// pointers in O(1) per node, giving O(log n + k) reporting and
/// O(log n) counting.
///
/// This is the structure the paper leans on for its poly-logarithmic
/// query bound: triangle queries run a rectangle query on the triangle's
/// bounding box and filter the output with the exact containment test
/// (envelope-difference triangles are thin and axis-diverse, so the
/// filter rejects a bounded fraction).
class RangeTreeIndex : public SimplexIndex {
 public:
  explicit RangeTreeIndex(size_t leaf_size = 4) : leaf_size_(leaf_size) {}

  void Build(std::vector<IndexedPoint> points) override;
  size_t CountInTriangle(const geom::Triangle& t) const override;
  void ReportInTriangle(const geom::Triangle& t,
                        const Visitor& visit) const override;
  size_t CountInRect(const geom::BoundingBox& box) const override;
  void ReportInRect(const geom::BoundingBox& box,
                    const Visitor& visit) const override;
  std::string name() const override { return "range-tree-fc"; }
  size_t size() const override { return points_.size(); }

  /// Total number of cascaded list entries (space diagnostic).
  size_t TotalListEntries() const { return ys_.size(); }

 private:
  struct Node {
    uint32_t begin = 0;     // Point slice [begin, end) in x-sorted points_.
    uint32_t end = 0;
    double split_x = 0.0;   // Max x in left child (route left if x <= split).
    int32_t left = -1;
    int32_t right = -1;
    uint32_t list_off = 0;  // Offset of this node's y-sorted list (+1
                            // sentinel) in the pooled arrays.
  };

  int32_t BuildNode(uint32_t begin, uint32_t end,
                    std::vector<uint32_t> by_y);

  /// Reports/counts entries [ylo, yhi) of `node`'s y-list.
  void EmitRange(const Node& n, uint32_t ylo, uint32_t yhi,
                 const Visitor* visit, size_t* count) const;

  /// Core walk shared by counting and reporting.
  void QueryRect(const geom::BoundingBox& box, const Visitor* visit,
                 size_t* count) const;

  size_t leaf_size_;
  std::vector<IndexedPoint> points_;  // Sorted by x (ties by y).
  std::vector<Node> nodes_;
  int32_t root_ = -1;

  // Pooled per-node y-lists. Entry i of a node's list of length L lives at
  // [list_off + i]; index list_off + L is the sentinel used by cascade
  // pointers. `ys_`/`pts_` have no sentinel slot semantics beyond bounds.
  std::vector<double> ys_;        // y-coordinate of each list entry.
  std::vector<uint32_t> pts_;     // Index into points_.
  std::vector<uint32_t> lcasc_;   // Cascade into the left child's list.
  std::vector<uint32_t> rcasc_;   // Cascade into the right child's list.
};

}  // namespace geosir::rangesearch

#endif  // GEOSIR_RANGESEARCH_RANGE_TREE_INDEX_H_
