#include "rangesearch/brute_force_index.h"

namespace geosir::rangesearch {

void BruteForceIndex::Build(std::vector<IndexedPoint> points) {
  points_ = std::move(points);
}

size_t BruteForceIndex::CountInTriangle(const geom::Triangle& t) const {
  size_t count = 0;
  const geom::BoundingBox box = t.Bounds();
  for (const IndexedPoint& ip : points_) {
    ++stats_.points_tested;
    if (box.Contains(ip.p) && t.Contains(ip.p)) ++count;
  }
  stats_.points_reported += count;
  return count;
}

void BruteForceIndex::ReportInTriangle(const geom::Triangle& t,
                                       const Visitor& visit) const {
  const geom::BoundingBox box = t.Bounds();
  for (const IndexedPoint& ip : points_) {
    ++stats_.points_tested;
    if (box.Contains(ip.p) && t.Contains(ip.p)) {
      ++stats_.points_reported;
      visit(ip);
    }
  }
}

size_t BruteForceIndex::CountInRect(const geom::BoundingBox& box) const {
  size_t count = 0;
  for (const IndexedPoint& ip : points_) {
    ++stats_.points_tested;
    if (box.Contains(ip.p)) ++count;
  }
  stats_.points_reported += count;
  return count;
}

void BruteForceIndex::ReportInRect(const geom::BoundingBox& box,
                                   const Visitor& visit) const {
  for (const IndexedPoint& ip : points_) {
    ++stats_.points_tested;
    if (box.Contains(ip.p)) {
      ++stats_.points_reported;
      visit(ip);
    }
  }
}

}  // namespace geosir::rangesearch
