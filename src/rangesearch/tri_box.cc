#include "rangesearch/tri_box.h"

#include <algorithm>

namespace geosir::rangesearch {

using geom::BoundingBox;
using geom::Point;
using geom::Triangle;

bool TriangleContainsBox(const Triangle& t, const BoundingBox& box) {
  if (box.empty()) return false;
  return t.Contains(Point{box.min_x, box.min_y}) &&
         t.Contains(Point{box.max_x, box.min_y}) &&
         t.Contains(Point{box.max_x, box.max_y}) &&
         t.Contains(Point{box.min_x, box.max_y});
}

namespace {

void ProjectTriangle(const Triangle& t, Point axis, double* lo, double* hi) {
  const double pa = t.a.Dot(axis);
  const double pb = t.b.Dot(axis);
  const double pc = t.c.Dot(axis);
  *lo = std::min({pa, pb, pc});
  *hi = std::max({pa, pb, pc});
}

void ProjectBox(const BoundingBox& box, Point axis, double* lo, double* hi) {
  const Point corners[4] = {{box.min_x, box.min_y},
                            {box.max_x, box.min_y},
                            {box.max_x, box.max_y},
                            {box.min_x, box.max_y}};
  *lo = *hi = corners[0].Dot(axis);
  for (int i = 1; i < 4; ++i) {
    const double v = corners[i].Dot(axis);
    *lo = std::min(*lo, v);
    *hi = std::max(*hi, v);
  }
}

}  // namespace

bool TriangleIntersectsBox(const Triangle& t, const BoundingBox& box) {
  if (box.empty()) return false;
  // Box axes.
  const BoundingBox tb = t.Bounds();
  if (!tb.Intersects(box)) return false;
  // Triangle edge normals.
  const Point edges[3] = {t.b - t.a, t.c - t.b, t.a - t.c};
  for (const Point& e : edges) {
    const Point axis = e.Perp();
    if (axis.SquaredNorm() == 0.0) continue;
    double tlo, thi, blo, bhi;
    ProjectTriangle(t, axis, &tlo, &thi);
    ProjectBox(box, axis, &blo, &bhi);
    if (thi < blo || bhi < tlo) return false;
  }
  return true;
}

}  // namespace geosir::rangesearch
