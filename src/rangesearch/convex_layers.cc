#include "rangesearch/convex_layers.h"

#include <algorithm>
#include <cmath>

namespace geosir::rangesearch {

using geom::Point;

namespace {

constexpr double kTwoPi = 6.283185307179586;

double NormalAngle(Point a, Point b) {
  // Outward normal of a CCW polygon edge a->b is the clockwise
  // perpendicular of the edge direction.
  const Point d = b - a;
  const Point outward{d.y, -d.x};
  double angle = std::atan2(outward.y, outward.x);
  if (angle < 0.0) angle += kTwoPi;
  return angle;
}

/// Monotone-chain hull over `order` (indices into pts sorted by (x, y)).
/// Returns hull positions *within order*, CCW, collinear points excluded.
std::vector<size_t> HullOfSorted(const std::vector<IndexedPoint>& pts,
                                 const std::vector<uint32_t>& order) {
  const size_t n = order.size();
  std::vector<size_t> hull;
  if (n == 0) return hull;
  if (n == 1) return {0};
  hull.resize(2 * n);
  size_t k = 0;
  auto cross = [&](size_t o, size_t a, size_t b) {
    return (pts[order[a]].p - pts[order[o]].p)
        .Cross(pts[order[b]].p - pts[order[o]].p);
  };
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], i) <= 0.0) --k;
    hull[k++] = i;
  }
  for (size_t i = n - 1, t = k + 1; i-- > 0;) {
    while (k >= t && cross(hull[k - 2], hull[k - 1], i) <= 0.0) --k;
    hull[k++] = i;
  }
  hull.resize(k > 1 ? k - 1 : k);
  return hull;
}

}  // namespace

void ConvexLayersIndex::Build(std::vector<IndexedPoint> points) {
  layers_.clear();
  total_points_ = points.size();
  if (points.empty()) return;

  std::sort(points.begin(), points.end(),
            [](const IndexedPoint& a, const IndexedPoint& b) {
              if (a.p.x != b.p.x) return a.p.x < b.p.x;
              if (a.p.y != b.p.y) return a.p.y < b.p.y;
              return a.id < b.id;
            });
  std::vector<uint32_t> alive(points.size());
  for (uint32_t i = 0; i < alive.size(); ++i) alive[i] = i;

  while (!alive.empty()) {
    const std::vector<size_t> hull_pos = HullOfSorted(points, alive);
    Layer layer;
    layer.hull.reserve(hull_pos.size());
    std::vector<bool> on_hull(alive.size(), false);
    for (size_t pos : hull_pos) {
      on_hull[pos] = true;
      layer.hull.push_back(points[alive[pos]]);
    }

    const size_t h = layer.hull.size();
    if (h >= 3) {
      layer.edge_angles.resize(h);
      for (size_t i = 0; i < h; ++i) {
        layer.edge_angles[i] =
            NormalAngle(layer.hull[i].p, layer.hull[(i + 1) % h].p);
      }
      // Rotate so the angle sequence is ascending (it is cyclically
      // monotone for a CCW convex polygon).
      size_t rot = 0;
      for (size_t i = 1; i < h; ++i) {
        if (layer.edge_angles[i] < layer.edge_angles[i - 1]) {
          rot = i;
          break;
        }
      }
      std::rotate(layer.edge_angles.begin(), layer.edge_angles.begin() + rot,
                  layer.edge_angles.end());
      layer.angle_rotation = rot;
    }
    layers_.push_back(std::move(layer));

    std::vector<uint32_t> next;
    next.reserve(alive.size() - hull_pos.size());
    for (size_t i = 0; i < alive.size(); ++i) {
      if (!on_hull[i]) next.push_back(alive[i]);
    }
    // Safety: guarantee progress on degenerate inputs.
    if (next.size() == alive.size()) next.pop_back();
    alive = std::move(next);
  }
}

size_t ConvexLayersIndex::ExtremeVertex(const Layer& layer,
                                        Point direction) const {
  const size_t h = layer.hull.size();
  if (h < 3 || layer.edge_angles.empty()) {
    size_t best = 0;
    double best_dot = layer.hull[0].p.Dot(direction);
    for (size_t i = 1; i < h; ++i) {
      const double d = layer.hull[i].p.Dot(direction);
      if (d < best_dot) {
        best_dot = d;
        best = i;
      }
    }
    return best;
  }
  // The vertex minimizing direction . p is extreme in direction
  // -direction: binary search for the first edge whose outward normal
  // angle reaches theta; its start vertex is the extreme one.
  double theta = std::atan2(-direction.y, -direction.x);
  if (theta < 0.0) theta += kTwoPi;
  const auto it = std::lower_bound(layer.edge_angles.begin(),
                                   layer.edge_angles.end(), theta);
  const size_t pos = it == layer.edge_angles.end()
                         ? 0
                         : static_cast<size_t>(it - layer.edge_angles.begin());
  const size_t edge = (pos + layer.angle_rotation) % h;
  // Verify against neighbors to absorb exact ties and rounding.
  size_t best = edge;
  double best_dot = layer.hull[best].p.Dot(direction);
  for (size_t cand : {(edge + h - 1) % h, (edge + 1) % h}) {
    const double d = layer.hull[cand].p.Dot(direction);
    if (d < best_dot) {
      best_dot = d;
      best = cand;
    }
  }
  return best;
}

void ConvexLayersIndex::ReportInHalfPlane(
    const HalfPlane& hp, const SimplexIndex::Visitor& visit) const {
  for (const Layer& layer : layers_) {
    const size_t h = layer.hull.size();
    if (h == 0) break;
    const size_t start = ExtremeVertex(layer, hp.normal);
    if (!hp.Contains(layer.hull[start].p)) {
      // This layer misses the half-plane. If a deeper layer had a point
      // in the half-plane, its boundary line would either cut this layer
      // (leaving a vertex on each side) or leave this layer entirely
      // inside; both would put a vertex of this layer in the half-plane.
      break;
    }
    visit(layer.hull[start]);
    bool wrapped = true;
    size_t stop = start;
    for (size_t i = (start + 1) % h; i != start; i = (i + 1) % h) {
      if (!hp.Contains(layer.hull[i].p)) {
        wrapped = false;
        stop = i;
        break;
      }
      visit(layer.hull[i]);
    }
    if (!wrapped) {
      for (size_t i = (start + h - 1) % h; i != stop && i != start;
           i = (i + h - 1) % h) {
        if (!hp.Contains(layer.hull[i].p)) break;
        visit(layer.hull[i]);
      }
    }
  }
}

size_t ConvexLayersIndex::CountInHalfPlane(const HalfPlane& hp) const {
  size_t count = 0;
  ReportInHalfPlane(hp, [&count](const IndexedPoint&) { ++count; });
  return count;
}

namespace {

/// Half-plane of triangle edge a->b containing the triangle's interior
/// (the triangle must be counterclockwise).
HalfPlane EdgeHalfPlane(Point a, Point b) {
  // Interior lies left of a->b: (b-a).Perp() . (p-a) >= 0, i.e.
  // -(b-a).Perp() . p <= -(b-a).Perp() . a.
  const Point n = (b - a).Perp() * -1.0;
  return HalfPlane{n, n.Dot(a)};
}

}  // namespace

void ConvexLayersIndex::ReportInTriangle(const geom::Triangle& t,
                                         const Visitor& visit) const {
  geom::Triangle ccw = t;
  if (ccw.SignedArea() < 0.0) std::swap(ccw.b, ccw.c);
  // Enumerate the shortest edge's half-plane (usually the most
  // selective for sliver queries) and filter with the exact test.
  const double ab = (ccw.b - ccw.a).SquaredNorm();
  const double bc = (ccw.c - ccw.b).SquaredNorm();
  const double ca = (ccw.a - ccw.c).SquaredNorm();
  HalfPlane hp;
  if (ab <= bc && ab <= ca) {
    hp = EdgeHalfPlane(ccw.a, ccw.b);
  } else if (bc <= ca) {
    hp = EdgeHalfPlane(ccw.b, ccw.c);
  } else {
    hp = EdgeHalfPlane(ccw.c, ccw.a);
  }
  ReportInHalfPlane(hp, [&](const IndexedPoint& ip) {
    ++stats_.points_tested;
    if (t.Contains(ip.p)) {
      ++stats_.points_reported;
      visit(ip);
    }
  });
}

size_t ConvexLayersIndex::CountInTriangle(const geom::Triangle& t) const {
  size_t count = 0;
  ReportInTriangle(t, [&count](const IndexedPoint&) { ++count; });
  return count;
}

void ConvexLayersIndex::ReportInRect(const geom::BoundingBox& box,
                                     const Visitor& visit) const {
  if (box.empty()) return;
  // Enumerate the x <= max_x half-plane, filter by the box.
  const HalfPlane hp{Point{1.0, 0.0}, box.max_x};
  ReportInHalfPlane(hp, [&](const IndexedPoint& ip) {
    ++stats_.points_tested;
    if (box.Contains(ip.p)) {
      ++stats_.points_reported;
      visit(ip);
    }
  });
}

size_t ConvexLayersIndex::CountInRect(const geom::BoundingBox& box) const {
  size_t count = 0;
  ReportInRect(box, [&count](const IndexedPoint&) { ++count; });
  return count;
}

}  // namespace geosir::rangesearch
