#include "rangesearch/kd_tree_index.h"

#include <algorithm>

#include "rangesearch/tri_box.h"

namespace geosir::rangesearch {

using geom::BoundingBox;
using geom::Point;
using geom::Triangle;

void KdTreeIndex::Build(std::vector<IndexedPoint> points) {
  points_ = std::move(points);
  nodes_.clear();
  nodes_.reserve(points_.empty() ? 1 : 2 * points_.size() / leaf_size_ + 2);
  root_ = points_.empty()
              ? -1
              : BuildNode(0, static_cast<uint32_t>(points_.size()), 0);
}

int32_t KdTreeIndex::BuildNode(uint32_t begin, uint32_t end, int depth) {
  Node node;
  node.begin = begin;
  node.end = end;
  for (uint32_t i = begin; i < end; ++i) node.bounds.Extend(points_[i].p);
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin > leaf_size_) {
    const uint32_t mid = begin + (end - begin) / 2;
    const bool split_x = depth % 2 == 0;
    std::nth_element(points_.begin() + begin, points_.begin() + mid,
                     points_.begin() + end,
                     [split_x](const IndexedPoint& a, const IndexedPoint& b) {
                       return split_x ? a.p.x < b.p.x : a.p.y < b.p.y;
                     });
    const int32_t left = BuildNode(begin, mid, depth + 1);
    const int32_t right = BuildNode(mid, end, depth + 1);
    nodes_[id].left = left;
    nodes_[id].right = right;
  }
  return id;
}

void KdTreeIndex::ReportSubtree(int32_t node, const Visitor& visit) const {
  const Node& n = nodes_[node];
  for (uint32_t i = n.begin; i < n.end; ++i) {
    ++stats_.points_reported;
    visit(points_[i]);
  }
}

template <typename Shape, typename Intersects, typename ContainsBox,
          typename ContainsPoint>
void KdTreeIndex::Query(int32_t node, const Shape& shape,
                        const Intersects& intersects,
                        const ContainsBox& contains_box,
                        const ContainsPoint& contains_point,
                        const Visitor* visit, size_t* count) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  ++stats_.nodes_visited;
  if (!intersects(shape, n.bounds)) return;
  if (contains_box(shape, n.bounds)) {
    if (count != nullptr) {
      *count += n.end - n.begin;
      stats_.points_reported += n.end - n.begin;
    } else {
      ReportSubtree(node, *visit);
    }
    return;
  }
  if (n.left < 0) {  // Leaf: test points individually.
    for (uint32_t i = n.begin; i < n.end; ++i) {
      ++stats_.points_tested;
      if (contains_point(shape, points_[i].p)) {
        ++stats_.points_reported;
        if (count != nullptr) {
          ++(*count);
        } else {
          (*visit)(points_[i]);
        }
      }
    }
    return;
  }
  Query(n.left, shape, intersects, contains_box, contains_point, visit, count);
  Query(n.right, shape, intersects, contains_box, contains_point, visit,
        count);
}

namespace {

bool BoxIntersectsBox(const BoundingBox& q, const BoundingBox& b) {
  return q.Intersects(b);
}
bool BoxContainsBox(const BoundingBox& q, const BoundingBox& b) {
  return !b.empty() && b.min_x >= q.min_x && b.max_x <= q.max_x &&
         b.min_y >= q.min_y && b.max_y <= q.max_y;
}
bool BoxContainsPoint(const BoundingBox& q, Point p) { return q.Contains(p); }

bool TriContainsPoint(const Triangle& t, Point p) { return t.Contains(p); }

}  // namespace

size_t KdTreeIndex::CountInTriangle(const Triangle& t) const {
  size_t count = 0;
  Query(root_, t, TriangleIntersectsBox, TriangleContainsBox, TriContainsPoint,
        nullptr, &count);
  return count;
}

void KdTreeIndex::ReportInTriangle(const Triangle& t,
                                   const Visitor& visit) const {
  Query(root_, t, TriangleIntersectsBox, TriangleContainsBox, TriContainsPoint,
        &visit, nullptr);
}

size_t KdTreeIndex::CountInRect(const BoundingBox& box) const {
  size_t count = 0;
  Query(root_, box, BoxIntersectsBox, BoxContainsBox, BoxContainsPoint,
        nullptr, &count);
  return count;
}

void KdTreeIndex::ReportInRect(const BoundingBox& box,
                               const Visitor& visit) const {
  Query(root_, box, BoxIntersectsBox, BoxContainsBox, BoxContainsPoint, &visit,
        nullptr);
}

}  // namespace geosir::rangesearch
