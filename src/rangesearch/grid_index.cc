#include "rangesearch/grid_index.h"

#include <algorithm>
#include <cmath>

#include "rangesearch/tri_box.h"

namespace geosir::rangesearch {

using geom::BoundingBox;
using geom::Triangle;

void GridIndex::Build(std::vector<IndexedPoint> points) {
  points_ = std::move(points);
  bounds_ = BoundingBox();
  for (const IndexedPoint& ip : points_) bounds_.Extend(ip.p);
  const size_t n = points_.size();
  if (n == 0) {
    nx_ = ny_ = 0;
    cell_start_.assign(1, 0);
    return;
  }
  const double cells = std::max(1.0, n / target_points_per_cell_);
  const double aspect =
      bounds_.Height() > 0.0 && bounds_.Width() > 0.0
          ? bounds_.Width() / bounds_.Height()
          : 1.0;
  nx_ = std::max(1, static_cast<int>(std::lround(std::sqrt(cells * aspect))));
  ny_ = std::max(1, static_cast<int>(std::lround(cells / nx_)));
  cell_w_ = bounds_.Width() > 0.0 ? bounds_.Width() / nx_ : 1.0;
  cell_h_ = bounds_.Height() > 0.0 ? bounds_.Height() / ny_ : 1.0;

  // Counting sort points into cells.
  auto cell_of = [&](geom::Point p) {
    int cx = static_cast<int>((p.x - bounds_.min_x) / cell_w_);
    int cy = static_cast<int>((p.y - bounds_.min_y) / cell_h_);
    cx = std::clamp(cx, 0, nx_ - 1);
    cy = std::clamp(cy, 0, ny_ - 1);
    return cy * nx_ + cx;
  };
  const size_t num_cells = static_cast<size_t>(nx_) * ny_;
  cell_start_.assign(num_cells + 1, 0);
  for (const IndexedPoint& ip : points_) ++cell_start_[cell_of(ip.p) + 1];
  for (size_t i = 1; i <= num_cells; ++i) cell_start_[i] += cell_start_[i - 1];
  std::vector<IndexedPoint> sorted(n);
  std::vector<uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (const IndexedPoint& ip : points_) {
    sorted[cursor[cell_of(ip.p)]++] = ip;
  }
  points_ = std::move(sorted);
}

BoundingBox GridIndex::CellBounds(int cx, int cy) const {
  return BoundingBox(
      geom::Point{bounds_.min_x + cx * cell_w_, bounds_.min_y + cy * cell_h_},
      geom::Point{bounds_.min_x + (cx + 1) * cell_w_,
                  bounds_.min_y + (cy + 1) * cell_h_});
}

void GridIndex::CellRange(const BoundingBox& box, int* x0, int* y0, int* x1,
                          int* y1) const {
  *x0 = std::clamp(
      static_cast<int>((box.min_x - bounds_.min_x) / cell_w_), 0, nx_ - 1);
  *x1 = std::clamp(
      static_cast<int>((box.max_x - bounds_.min_x) / cell_w_), 0, nx_ - 1);
  *y0 = std::clamp(
      static_cast<int>((box.min_y - bounds_.min_y) / cell_h_), 0, ny_ - 1);
  *y1 = std::clamp(
      static_cast<int>((box.max_y - bounds_.min_y) / cell_h_), 0, ny_ - 1);
}

size_t GridIndex::CountInTriangle(const Triangle& t) const {
  size_t count = 0;
  ReportInTriangle(t, [&count](const IndexedPoint&) { ++count; });
  return count;
}

void GridIndex::ReportInTriangle(const Triangle& t,
                                 const Visitor& visit) const {
  if (points_.empty()) return;
  const BoundingBox qbox = t.Bounds();
  if (!qbox.Intersects(bounds_)) return;
  int x0, y0, x1, y1;
  CellRange(qbox, &x0, &y0, &x1, &y1);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      ++stats_.nodes_visited;
      const BoundingBox cell = CellBounds(cx, cy);
      if (!TriangleIntersectsBox(t, cell)) continue;
      const size_t c = static_cast<size_t>(cy) * nx_ + cx;
      const bool full = TriangleContainsBox(t, cell);
      for (uint32_t i = cell_start_[c]; i < cell_start_[c + 1]; ++i) {
        if (full) {
          ++stats_.points_reported;
          visit(points_[i]);
        } else {
          ++stats_.points_tested;
          if (t.Contains(points_[i].p)) {
            ++stats_.points_reported;
            visit(points_[i]);
          }
        }
      }
    }
  }
}

size_t GridIndex::CountInRect(const BoundingBox& box) const {
  size_t count = 0;
  ReportInRect(box, [&count](const IndexedPoint&) { ++count; });
  return count;
}

void GridIndex::ReportInRect(const BoundingBox& box,
                             const Visitor& visit) const {
  if (points_.empty() || box.empty() || !box.Intersects(bounds_)) return;
  int x0, y0, x1, y1;
  CellRange(box, &x0, &y0, &x1, &y1);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      ++stats_.nodes_visited;
      const BoundingBox cell = CellBounds(cx, cy);
      const bool full = cell.min_x >= box.min_x && cell.max_x <= box.max_x &&
                        cell.min_y >= box.min_y && cell.max_y <= box.max_y;
      const size_t c = static_cast<size_t>(cy) * nx_ + cx;
      for (uint32_t i = cell_start_[c]; i < cell_start_[c + 1]; ++i) {
        if (full || box.Contains(points_[i].p)) {
          ++stats_.points_reported;
          visit(points_[i]);
        } else {
          ++stats_.points_tested;
        }
      }
    }
  }
}

}  // namespace geosir::rangesearch
