#ifndef GEOSIR_RANGESEARCH_KD_TREE_INDEX_H_
#define GEOSIR_RANGESEARCH_KD_TREE_INDEX_H_

#include <string>
#include <vector>

#include "rangesearch/simplex_index.h"

namespace geosir::rangesearch {

/// Static 2D kd-tree over the indexed points. Nodes carry their subtree's
/// bounding box and size so that fully covered subtrees are counted in
/// O(1) and reported in O(size). Triangle queries prune with an exact
/// triangle/box separating-axis test. Worst-case O(sqrt n + k) per
/// rectangle query; the classic practical middle ground between the grid
/// and the range tree.
class KdTreeIndex : public SimplexIndex {
 public:
  explicit KdTreeIndex(size_t leaf_size = 8) : leaf_size_(leaf_size) {}

  void Build(std::vector<IndexedPoint> points) override;
  size_t CountInTriangle(const geom::Triangle& t) const override;
  void ReportInTriangle(const geom::Triangle& t,
                        const Visitor& visit) const override;
  size_t CountInRect(const geom::BoundingBox& box) const override;
  void ReportInRect(const geom::BoundingBox& box,
                    const Visitor& visit) const override;
  std::string name() const override { return "kd-tree"; }
  size_t size() const override { return points_.size(); }

 private:
  struct Node {
    geom::BoundingBox bounds;
    uint32_t begin = 0;  // Point slice [begin, end) in points_.
    uint32_t end = 0;
    int32_t left = -1;   // Child node indices; -1 for leaves.
    int32_t right = -1;
  };

  int32_t BuildNode(uint32_t begin, uint32_t end, int depth);
  void ReportSubtree(int32_t node, const Visitor& visit) const;

  template <typename Shape, typename Intersects, typename ContainsBox,
            typename ContainsPoint>
  void Query(int32_t node, const Shape& shape, const Intersects& intersects,
             const ContainsBox& contains_box,
             const ContainsPoint& contains_point, const Visitor* visit,
             size_t* count) const;

  size_t leaf_size_;
  std::vector<IndexedPoint> points_;  // Reordered during build.
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace geosir::rangesearch

#endif  // GEOSIR_RANGESEARCH_KD_TREE_INDEX_H_
