#include "core/shape.h"

// Shape is a passive aggregate; this translation unit anchors the header.
