#include "core/normalize.h"

#include <algorithm>

#include "geom/diameter.h"

namespace geosir::core {

namespace {

util::Result<NormalizedCopy> MakeCopy(const Shape& shape, uint32_t copy_index,
                                      uint32_t vi, uint32_t vj) {
  const geom::Point a = shape.boundary.vertex(vi);
  const geom::Point b = shape.boundary.vertex(vj);
  GEOSIR_ASSIGN_OR_RETURN(geom::AffineTransform to_norm,
                          geom::AffineTransform::MapSegmentToUnitBase(a, b));
  GEOSIR_ASSIGN_OR_RETURN(geom::AffineTransform from_norm, to_norm.Inverse());
  NormalizedCopy copy;
  copy.shape_id = shape.id;
  copy.copy_index = copy_index;
  copy.shape = shape.boundary.Transformed(to_norm);
  copy.to_normalized = to_norm;
  copy.from_normalized = from_norm;
  copy.axis_i = vi;
  copy.axis_j = vj;
  return copy;
}

}  // namespace

util::Result<std::vector<NormalizedCopy>> NormalizeShape(
    const Shape& shape, const NormalizeOptions& options) {
  GEOSIR_RETURN_IF_ERROR(shape.boundary.Validate());
  if (options.alpha < 0.0 || options.alpha >= 1.0) {
    return util::Status::InvalidArgument("alpha must be in [0, 1)");
  }

  std::vector<geom::VertexPair> axes;
  if (options.use_alpha_diameters) {
    axes = geom::AlphaDiameters(shape.boundary.vertices(), options.alpha);
    if (axes.size() > options.max_axes) axes.resize(options.max_axes);
  } else {
    const geom::VertexPair d = geom::Diameter(shape.boundary.vertices());
    axes.push_back(d);
  }
  if (axes.empty() || axes[0].distance <= 0.0) {
    return util::Status::InvalidArgument("shape has zero diameter");
  }

  std::vector<NormalizedCopy> copies;
  copies.reserve(2 * axes.size());
  for (const geom::VertexPair& axis : axes) {
    // Both ways of matching the axis endpoints to (0,0) and (1,0).
    GEOSIR_ASSIGN_OR_RETURN(
        NormalizedCopy forward,
        MakeCopy(shape, static_cast<uint32_t>(copies.size()),
                 static_cast<uint32_t>(axis.i), static_cast<uint32_t>(axis.j)));
    copies.push_back(std::move(forward));
    GEOSIR_ASSIGN_OR_RETURN(
        NormalizedCopy backward,
        MakeCopy(shape, static_cast<uint32_t>(copies.size()),
                 static_cast<uint32_t>(axis.j), static_cast<uint32_t>(axis.i)));
    copies.push_back(std::move(backward));
  }
  return copies;
}

util::Result<NormalizedCopy> NormalizeQuery(const geom::Polyline& query) {
  GEOSIR_RETURN_IF_ERROR(query.Validate());
  const geom::VertexPair d = geom::Diameter(query.vertices());
  if (d.distance <= 0.0) {
    return util::Status::InvalidArgument("query has zero diameter");
  }
  Shape tmp;
  tmp.boundary = query;
  return MakeCopy(tmp, 0, static_cast<uint32_t>(d.i),
                  static_cast<uint32_t>(d.j));
}

}  // namespace geosir::core
