#ifndef GEOSIR_CORE_CANDIDATE_SOURCE_H_
#define GEOSIR_CORE_CANDIDATE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/match_types.h"
#include "geom/polyline.h"
#include "util/status.h"

namespace geosir::core {

class ShapeBase;

/// Diagnostics of one CandidateSource::Generate call.
struct CandidateSourceStats {
  /// Hash tables (or hash-curve quarters) consulted.
  size_t tables_probed = 0;
  /// Individual buckets read across all tables.
  size_t buckets_probed = 0;
  /// Distinct candidate copy indices written to `out`.
  size_t candidates_emitted = 0;
  /// The emitted set provably contains every copy of the base (exact
  /// enumeration). A verifier needs no recall fallback in this case.
  bool exhaustive = false;
  /// Generation stopped at `max_candidates` with further candidates left
  /// behind. Truncation keeps the source's preference order, so the kept
  /// prefix is deterministic (unlike deadline/cancel stops).
  bool truncated = false;
  /// Mirror of a non-OK return: the lifecycle stop (kDeadlineExceeded /
  /// kCancelled) observed mid-generation.
  util::Status termination;
};

/// The candidate-generation seam of the tiered retrieval pipeline: one
/// interface in front of the hash-curve index (src/hashing/), the LSH
/// pre-filter (src/lsh/) and plain exhaustive enumeration, so
/// EnvelopeMatcher::MatchCandidates and the query planner can compose
/// "approximate first pass -> exact verification" per query budget
/// without naming a concrete index (DESIGN.md section 14).
///
/// Contract:
///  - `normalized_query` is the query already normalized about its true
///    diameter (NormalizeQuery); candidates are indices into the backing
///    ShapeBase's copies() array.
///  - The emitted sequence is in source-preference order (most promising
///    first) and free of duplicates. It is deterministic: identical
///    query/options/index state yields a bit-identical sequence.
///  - `max_candidates` == 0 means unlimited; otherwise at most that many
///    candidates are emitted and `stats->truncated` is set when more
///    existed. Truncation is a normal, deterministic outcome: OK.
///  - `options.deadline` / `options.cancel_token` are polled at table
///    granularity. A stop returns its status (kDeadlineExceeded /
///    kCancelled) with the candidates collected so far left in `out`;
///    the caller decides whether that prefix is usable.
///  - Any other non-OK return is a real failure; `out` contents are
///    unspecified.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  /// Stable short identifier ("lsh", "geohash", "exact") used in traces
  /// and metrics.
  virtual const char* name() const = 0;

  /// Fills `out` (cleared first) with candidate copy indices for
  /// `normalized_query`. `stats` may be null.
  virtual util::Status Generate(const geom::Polyline& normalized_query,
                                size_t max_candidates,
                                const MatchOptions& options,
                                std::vector<uint32_t>* out,
                                CandidateSourceStats* stats) = 0;
};

/// The trivial exhaustive tier: emits every copy index of the base in
/// ascending order. Recall 1 by construction; pairs with
/// EnvelopeMatcher::MatchCandidates to give brute-force verification when
/// recall guarantees are demanded, and serves as the ground-truth oracle
/// in tests and benchmarks. The base is not owned and must be finalized
/// before Generate is called.
class ExactEnumerationSource final : public CandidateSource {
 public:
  explicit ExactEnumerationSource(const ShapeBase* base) : base_(base) {}

  const char* name() const override { return "exact"; }

  util::Status Generate(const geom::Polyline& normalized_query,
                        size_t max_candidates, const MatchOptions& options,
                        std::vector<uint32_t>* out,
                        CandidateSourceStats* stats) override;

 private:
  const ShapeBase* base_;
};

}  // namespace geosir::core

#endif  // GEOSIR_CORE_CANDIDATE_SOURCE_H_
