#ifndef GEOSIR_CORE_NORMALIZE_H_
#define GEOSIR_CORE_NORMALIZE_H_

#include <vector>

#include "core/shape.h"
#include "geom/transform.h"
#include "util/status.h"

namespace geosir::core {

/// Options for diameter normalization (Section 2.4).
struct NormalizeOptions {
  /// Pairs of vertices at distance >= (1 - alpha) * diameter also serve
  /// as normalization axes ("alpha-diameters"). 0 <= alpha < 1.
  double alpha = 0.1;
  /// Upper bound on the number of alpha-diameters used per shape (the
  /// longest ones win). Each contributes two stored copies.
  size_t max_axes = 8;
  /// When false only the true diameter is used (one axis, two copies).
  bool use_alpha_diameters = true;
};

/// One normalized copy of a shape: the geometry after mapping one of its
/// alpha-diameters onto ((0,0), (1,0)).
struct NormalizedCopy {
  ShapeId shape_id = 0;
  /// Index of this copy among the copies of the same shape.
  uint32_t copy_index = 0;
  /// Normalized geometry. Vertices lie in (or near) the unit lune.
  geom::Polyline shape;
  /// Maps original coordinates to normalized coordinates.
  geom::AffineTransform to_normalized;
  /// Inverse transform; the query processor uses it to recover the
  /// original diameter direction (Section 5.3).
  geom::AffineTransform from_normalized;
  /// Endpoints (vertex indices in the original shape) of the axis.
  uint32_t axis_i = 0;
  uint32_t axis_j = 0;
};

/// Produces all normalized copies of `shape` under `options`: two copies
/// (both orientations of the axis) per selected alpha-diameter. The first
/// two copies always correspond to the true diameter. Fails on invalid
/// shapes (see Polyline::Validate) and on shapes with zero diameter.
util::Result<std::vector<NormalizedCopy>> NormalizeShape(
    const Shape& shape, const NormalizeOptions& options = {});

/// Normalizes a query shape about its true diameter only (single
/// orientation): the database already stores both orientations of every
/// axis, so one query copy suffices (Section 2.5).
util::Result<NormalizedCopy> NormalizeQuery(const geom::Polyline& query);

}  // namespace geosir::core

#endif  // GEOSIR_CORE_NORMALIZE_H_
