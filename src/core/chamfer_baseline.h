#ifndef GEOSIR_CORE_CHAMFER_BASELINE_H_
#define GEOSIR_CORE_CHAMFER_BASELINE_H_

#include <cstdint>
#include <vector>

#include "core/shape.h"
#include "util/status.h"

namespace geosir::core {

struct ChamferOptions {
  /// Resolution of the per-shape distance map (covers the normalized
  /// lune bounding box [-0.05, 1.05] x [-1.05, 1.05]).
  int grid_width = 96;
  int grid_height = 160;
  /// Contour samples per query evaluation.
  int contour_samples = 64;
};

/// Chamfer-matching baseline (related work: Barrow et al.; Borgefors'
/// hierarchical variant): every database shape is normalized about its
/// diameter and rasterized into a distance map (exact Euclidean distance
/// to the boundary, computed by the Felzenszwalb-Huttenlocher two-pass
/// transform); a query is scored by averaging the distance-map values
/// along its normalized contour. The paper's related-work critique —
/// "involves lengthy computations on every extracted contour per query"
/// — shows up as a large per-shape scan cost and a heavy preprocessing
/// footprint, which the baseline-comparison benchmark measures.
class ChamferBaseline {
 public:
  explicit ChamferBaseline(ChamferOptions options = ChamferOptions());

  /// Adds a shape (both diameter orientations are stored).
  util::Status Add(ShapeId id, const geom::Polyline& boundary);

  struct QueryResult {
    ShapeId shape_id = 0;
    double distance = 0.0;  // Mean chamfer distance, diameter units.
  };

  /// k best shapes for the query under the chamfer score.
  std::vector<QueryResult> Query(const geom::Polyline& query,
                                 size_t k = 1) const;

  size_t NumMaps() const { return maps_.size(); }
  /// Total bytes held by the distance maps (the storage-cost metric).
  size_t MapBytes() const {
    return maps_.size() * sizeof(float) *
           static_cast<size_t>(options_.grid_width) * options_.grid_height;
  }

 private:
  struct DistanceMap {
    ShapeId shape_id;
    std::vector<float> cells;  // Row-major grid_width x grid_height.
  };

  /// Grid coordinates of a normalized-space point.
  bool ToCell(geom::Point p, int* cx, int* cy) const;
  double Sample(const DistanceMap& map, geom::Point p) const;

  ChamferOptions options_;
  std::vector<DistanceMap> maps_;
};

}  // namespace geosir::core

#endif  // GEOSIR_CORE_CHAMFER_BASELINE_H_
