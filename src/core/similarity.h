#ifndef GEOSIR_CORE_SIMILARITY_H_
#define GEOSIR_CORE_SIMILARITY_H_

#include <cstddef>

#include "geom/edge_grid.h"
#include "geom/edge_soa.h"
#include "geom/polyline.h"

namespace geosir::core {

/// Options controlling the continuous average-distance integration.
struct SimilarityOptions {
  /// Absolute tolerance of the per-edge adaptive quadrature relative to
  /// the edge length. The default resolves the measure to ~1e-4 diameter
  /// units — far below any similarity threshold the system uses — while
  /// keeping candidate evaluation cheap; tighten it for numerical
  /// experiments.
  double quadrature_tolerance = 1e-4;
  /// Maximum adaptive bisection depth per edge.
  int max_depth = 8;
  /// When the *target* polyline (the one distances are measured to) has
  /// at least this many edges, the point-to-boundary distance inside the
  /// quadrature is answered by a precomputed geom::EdgeGrid instead of
  /// the O(E) edge scan. The grid is exact — results are bit-identical
  /// with or without it — so this is purely a build-cost/lookup-cost
  /// tradeoff. Set to SIZE_MAX to disable the accelerator (benchmarks
  /// use this to measure the brute-force baseline).
  size_t grid_min_edges = 16;
};

/// The paper's similarity criterion (Section 2.2):
///   h_avg(A, B) = average over all points a of the *continuous* shape A
///                 of min_{b in B} d(a, b),
/// i.e. the arc-length-weighted mean of the distance-to-B function along
/// A's boundary. Computed by adaptive Simpson quadrature on each edge of
/// A (the integrand is piecewise smooth with kinks at nearest-feature
/// changes, which the adaptive refinement resolves).
double AvgMinDistance(const geom::Polyline& a, const geom::Polyline& b,
                      const SimilarityOptions& options = {});

/// AvgMinDistance against a prebuilt edge grid of B. The matcher builds
/// the grid once per query shape and reuses it across every candidate
/// evaluation; the result is identical to the polyline overload.
double AvgMinDistance(const geom::Polyline& a, const geom::EdgeGrid& b,
                      const SimilarityOptions& options = {});

/// AvgMinDistance against a prebuilt SoA edge store of B: the flat-scan
/// analogue of the grid overload, served by the batch SIMD kernel. This
/// is what the polyline overload uses below grid_min_edges.
double AvgMinDistance(const geom::Polyline& a, const geom::EdgeSoA& b,
                      const SimilarityOptions& options = {});

/// Symmetric variant: max(h_avg(A,B), h_avg(B,A)). This is the default
/// ranking measure of the matcher — the directed measure alone would rank
/// a tiny fragment lying on B's boundary as a perfect match.
double AvgMinDistanceSymmetric(const geom::Polyline& a,
                               const geom::Polyline& b,
                               const SimilarityOptions& options = {});

/// Discrete variant over the vertices of A only. Used for the matcher's
/// candidate lower bounds (a vertex outside the eps-envelope contributes
/// more than eps to this sum).
double DiscreteAvgMinDistance(const geom::Polyline& a,
                              const geom::Polyline& b);

/// Discrete variant against a prebuilt edge grid of B.
double DiscreteAvgMinDistance(const geom::Polyline& a,
                              const geom::EdgeGrid& b);

/// Discrete variant against a prebuilt SoA edge store of B. A's whole
/// vertex run goes through one batched kernel call.
double DiscreteAvgMinDistance(const geom::Polyline& a,
                              const geom::EdgeSoA& b);

/// Directed Hausdorff distance h(A, B) over A's vertices (the classical
/// baseline of Section 2.1).
double DiscreteDirectedHausdorff(const geom::Polyline& a,
                                 const geom::Polyline& b);

/// Symmetric Hausdorff H(A, B) = max(h(A,B), h(B,A)) over vertices.
double DiscreteHausdorff(const geom::Polyline& a, const geom::Polyline& b);

/// Huttenlocher-Rucklidge generalized (partial) Hausdorff distance: the
/// K-th smallest of the vertex min-distances from A to B, with K =
/// ceil(fraction * |A|), fraction in (0, 1]. fraction = 1 recovers the
/// directed Hausdorff max; fraction = 0.5 is the median variant
/// (k = m/2) the paper cites.
double PartialDirectedHausdorff(const geom::Polyline& a,
                                const geom::Polyline& b, double fraction);

/// Symmetric partial Hausdorff.
double PartialHausdorff(const geom::Polyline& a, const geom::Polyline& b,
                        double fraction);

}  // namespace geosir::core

#endif  // GEOSIR_CORE_SIMILARITY_H_
