#ifndef GEOSIR_CORE_ENVELOPE_MATCHER_H_
#define GEOSIR_CORE_ENVELOPE_MATCHER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/match_types.h"
#include "core/shape_base.h"
#include "core/similarity.h"
#include "geom/edge_grid.h"
#include "util/status.h"

namespace geosir::core {

class CandidateSource;

/// The incremental envelope-fattening matcher of Section 2.5.
///
/// Concurrency: one Match call may fan its candidate-scoring work out
/// across a util::ThreadPool (MatchOptions::num_threads); the range-search
/// phase and the k-best merge stay on the calling thread, and parallel
/// results are merged in candidate order, so Match returns bit-identical
/// results for every thread count. A matcher *instance* still owns
/// per-query scratch (epoch-stamped counters sized to the base), so use
/// one instance per concurrently-matching thread — MatchBatch does this
/// for you. The underlying ShapeBase is read-only during matching.
class EnvelopeMatcher {
 public:
  /// `base` must outlive the matcher and be finalized.
  explicit EnvelopeMatcher(const ShapeBase* base);

  /// Retrieves the k best matches for `query` (raw, unnormalized
  /// coordinates). Returns an empty vector when nothing entered the
  /// envelope before max_epsilon — the caller should fall back to
  /// geometric hashing (Section 3). `stats` and `trace` are optional.
  ///
  /// Lifecycle: options.deadline / cancel_token / budget terminate the
  /// search cooperatively (checked at round, candidate and amortized
  /// vertex-report granularity, and observed by external index backends
  /// and their storage retries). A stop with ranked candidates in hand
  /// returns them as an OK *partial* result (MatchStats::partial +
  /// termination); a stop before anything was ranked — including a
  /// deadline already expired at entry, which performs zero work —
  /// returns kDeadlineExceeded / kCancelled / kResourceExhausted.
  /// Budget stops are deterministic (bit-identical partial results for
  /// every thread count); deadline and cancel stops are not.
  util::Result<std::vector<MatchResult>> Match(const geom::Polyline& query,
                                               const MatchOptions& options = {},
                                               MatchStats* stats = nullptr,
                                               AccessTrace* trace = nullptr);

  /// EXTENSION (tiered retrieval, DESIGN.md section 14): k-best (or
  /// collect_threshold) ranking over the candidate set emitted by `source`
  /// instead of envelope growth — the exact-verification half of the
  /// "approximate first pass -> exact scoring" pipeline. Exactly as
  /// accurate as the candidate set: with an exhaustive source this equals
  /// brute-force ranking under options.measure; with an approximate
  /// source (LSH, hash curves) recall is the source's.
  ///
  /// Lifecycle mirrors Match: options.budget.max_candidates caps the
  /// candidate set at generation (a deterministic truncation, reported as
  /// a kResourceExhausted partial); deadline / cancel stop generation and
  /// scoring cooperatively with the same partial-result contract. The
  /// per-query memo is shared with Match, so mixing entry points on one
  /// matcher instance never re-scores a copy.
  util::Result<std::vector<MatchResult>> MatchCandidates(
      const geom::Polyline& query, CandidateSource* source,
      const MatchOptions& options = {}, MatchStats* stats = nullptr,
      AccessTrace* trace = nullptr);

 private:
  /// The four directed halves the ranking measures are composed from.
  /// Caching at this granularity lets the symmetric measures share work
  /// with their directed counterparts.
  enum EvalComponent : uint32_t {
    kContinuousToQuery = 0,    // h_avg(copy, q)
    kContinuousFromQuery = 1,  // h_avg(q, copy)
    kDiscreteToQuery = 2,
    kDiscreteFromQuery = 3,
  };

  /// Resets the per-query memo (component cache + query edge grid) when
  /// the normalized query or the similarity options changed.
  void PrepareQueryCache(const geom::Polyline& q, const MatchOptions& options);

  /// Computes one directed component for one copy. Pure: reads only the
  /// base, the query, and the (immutable during scoring) query grid, so
  /// it is safe to call concurrently.
  double ComputeComponent(uint32_t copy_idx, EvalComponent component,
                          const geom::Polyline& q,
                          const MatchOptions& options) const;

  /// Scores `candidates` under options.measure into `distances`
  /// (parallel across the pool when enabled), merging cache lookups and
  /// insertions deterministically on the calling thread.
  void EvaluateCandidates(const std::vector<uint32_t>& candidates,
                          const geom::Polyline& q, const MatchOptions& options,
                          std::vector<double>* distances, MatchStats* stats);

  const ShapeBase* base_;

  // Epoch-stamped scratch (valid when stamp == epoch_).
  uint32_t epoch_ = 0;
  std::vector<uint32_t> vertex_epoch_;    // Vertex already counted.
  std::vector<uint32_t> copy_count_;      // In-envelope vertices per copy.
  std::vector<uint32_t> copy_epoch_;
  std::vector<uint32_t> copy_touch_iter_; // Last iteration that touched it.
  std::vector<uint8_t> copy_evaluated_;

  // Per-query scoring state, keyed by the normalized query: an edge grid
  // over the query boundary (the distance target of every *-ToQuery
  // component) — or, below the grid threshold, a flat SoA edge store the
  // batch SIMD kernel streams — and a memo of computed components keyed
  // by copy_index * 4 + EvalComponent. All survive across Match calls
  // with the same query, so re-matching (e.g. the tombstone-slack retries
  // of DynamicShapeBase) never re-integrates a copy it has already
  // scored.
  geom::Polyline cache_query_;
  double cache_quadrature_tolerance_ = 0.0;
  int cache_max_depth_ = 0;
  bool cache_valid_ = false;
  std::unique_ptr<geom::EdgeGrid> query_grid_;
  std::unique_ptr<geom::EdgeSoA> query_soa_;
  std::unordered_map<uint64_t, double> eval_cache_;

  // Scratch reused across rounds (no steady-state allocation).
  std::vector<uint32_t> pending_eval_;
  std::vector<double> pending_distances_;
  std::vector<uint64_t> missing_keys_;
  std::vector<uint32_t> missing_slots_;
  std::vector<double> missing_values_;
};

/// Runs independent queries concurrently across the pool configured in
/// `options` (one matcher per worker slot): the throughput-style
/// counterpart of EnvelopeMatcher::Match. result[i] corresponds to
/// queries[i]; `stats`, when non-null, is resized to one entry per query.
/// Per-query results are bit-identical to a serial Match loop for every
/// thread count. Fails on the first query error (by query order) — but a
/// per-query lifecycle stop (deadline / cancel / budget) is not an error:
/// that query contributes its partial (possibly empty) ranking, the stop
/// is recorded in stats[i].termination, and the batch proceeds. A cancel
/// token in `options` spans the whole batch: queries not yet started when
/// it fires are skipped (termination = kCancelled), in-flight ones stop
/// with best-so-far.
util::Result<std::vector<std::vector<MatchResult>>> MatchBatch(
    const ShapeBase& base, const std::vector<geom::Polyline>& queries,
    const MatchOptions& options = {}, std::vector<MatchStats>* stats = nullptr);

}  // namespace geosir::core

#endif  // GEOSIR_CORE_ENVELOPE_MATCHER_H_
