#ifndef GEOSIR_CORE_DYNAMIC_BASE_JOURNAL_H_
#define GEOSIR_CORE_DYNAMIC_BASE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/shape.h"
#include "geom/polyline.h"
#include "util/status.h"

namespace geosir::core {

class ShapeBase;

/// Durability hook of DynamicShapeBase. The core layer cannot depend on
/// storage/, so the base talks to an abstract journal and storage/wal.h
/// provides the write-ahead-log implementation (WalJournal); tests can
/// substitute an in-memory recorder.
///
/// Contract (write-ahead discipline):
///   * LogInsert/LogRemove are called BEFORE the mutation is applied to
///     the in-memory state. A non-OK return aborts the mutation, so every
///     acknowledged mutation was logged first.
///   * LogCompactBegin is called before a main-base rebuild starts (a
///     marker only; recovery does not need it to be durable).
///   * LogCompactCommit is called AFTER the rebuilt main base is swapped
///     in. `main` holds every live shape, `stable_ids[i]` is the stable id
///     of main shape i, and `next_id` is the next id Insert would hand
///     out. The implementation is expected to checkpoint this state and
///     truncate its log; a non-OK return surfaces from Compact() but the
///     in-memory base stays valid (the previous log still replays to the
///     same state).
class DynamicBaseJournal {
 public:
  virtual ~DynamicBaseJournal() = default;

  virtual util::Status LogInsert(uint64_t id, const geom::Polyline& boundary,
                                 ImageId image, const std::string& label) = 0;
  virtual util::Status LogRemove(uint64_t id) = 0;
  virtual util::Status LogCompactBegin() = 0;
  virtual util::Status LogCompactCommit(
      const ShapeBase& main, const std::vector<uint64_t>& stable_ids,
      uint64_t next_id) = 0;
};

}  // namespace geosir::core

#endif  // GEOSIR_CORE_DYNAMIC_BASE_JOURNAL_H_
