#ifndef GEOSIR_CORE_DYNAMIC_SHAPE_BASE_H_
#define GEOSIR_CORE_DYNAMIC_SHAPE_BASE_H_

#include <memory>
#include <vector>

#include "core/dynamic_base_journal.h"
#include "core/envelope_matcher.h"
#include "core/normalize.h"
#include "core/shape_base.h"
#include "util/status.h"

namespace geosir::core {

/// EXTENSION: a shape base that supports interleaved inserts, deletes and
/// queries. The paper's structures are static (its related-work section
/// points at Berchtold et al. for "dynamic environments, where insert and
/// delete operations occur frequently"); this wrapper brings the standard
/// database recipe to the envelope matcher:
///
///   * a finalized *main* ShapeBase with its range-search index,
///   * a small unindexed *delta* of recent inserts, matched by direct
///     evaluation,
///   * a tombstone set for deletes,
///   * automatic compaction (rebuild of the main base) once the delta or
///     the tombstones exceed a fraction of the total.
///
/// Ids handed out by this class are stable across compactions.
///
/// EXTENSION (tiered retrieval, DESIGN.md section 14): observer of
/// applied mutations. Hooked at the shared infallible mutation tails, so
/// direct Insert/Remove AND journal replay (hence replication follower
/// replay) reach it — an attached LSH pre-filter (lsh::DynamicLshIndex)
/// stays coherent on followers with no extra plumbing. Callbacks run
/// synchronously on the mutating thread; keep them cheap and never call
/// back into the base. Not invoked by RestoreCheckpoint or Compact
/// (stable ids do not change there) — after a restore, rebuild the
/// observer's state from LiveIds()/NormalizedCopiesOf().
class DynamicBaseObserver {
 public:
  virtual ~DynamicBaseObserver() = default;
  /// A record was applied: its stable id and its normalized copies.
  virtual void OnInsert(uint64_t id,
                        const std::vector<NormalizedCopy>& copies) = 0;
  /// A record was deleted (direct or replayed).
  virtual void OnRemove(uint64_t id) = 0;
};

class DynamicShapeBase {
 public:
  struct Options {
    ShapeBaseOptions base;
    MatchOptions match;
    /// Compact when delta shapes exceed this fraction of live shapes.
    double max_delta_fraction = 0.25;
    /// Compact when tombstones exceed this fraction of main shapes.
    double max_tombstone_fraction = 0.25;
    /// Never compact below this many delta shapes (avoids rebuilding a
    /// tiny base on every insert).
    size_t min_compaction_size = 64;
  };

  DynamicShapeBase() : DynamicShapeBase(Options()) {}
  explicit DynamicShapeBase(Options options);

  /// Inserts a shape; returns its stable id.
  util::Result<uint64_t> Insert(geom::Polyline boundary,
                                ImageId image = kNoImage,
                                std::string label = "");

  /// Deletes a shape by stable id. Idempotent errors: deleting twice or
  /// deleting an unknown id fails.
  util::Status Remove(uint64_t id);

  /// k-best retrieval over the live shapes (main minus tombstones plus
  /// delta). Distances use options.match.measure. `stats` (optional)
  /// receives the main-base matcher diagnostics, including the
  /// `degraded` flag when an external index backend skipped unreadable
  /// subtrees — a degraded Match is still correctly ordered over the
  /// candidates that were readable.
  util::Result<std::vector<std::pair<uint64_t, double>>> Match(
      const geom::Polyline& query, size_t k = 1,
      MatchStats* stats = nullptr);

  /// Throughput-style front end: runs independent queries concurrently
  /// across the pool configured in options().match (num_threads / pool),
  /// one matcher per worker. result[i] corresponds to queries[i];
  /// per-query results are bit-identical to a serial Match loop for every
  /// thread count. `stats`, when non-null, is resized to one entry per
  /// query. No Insert/Remove/Compact may run concurrently.
  util::Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
  MatchBatch(const std::vector<geom::Polyline>& queries, size_t k = 1,
             std::vector<MatchStats>* stats = nullptr);

  /// EXTENSION (tiered retrieval): exact verification of an explicit
  /// candidate id set — the second tier behind an approximate pre-filter
  /// (lsh::DynamicLshIndex) that produced `ids`. Each live id is scored
  /// directly under options().match.measure (best over its normalized
  /// copies); unknown, deleted or restored-placeholder ids are skipped
  /// silently, since approximate candidate sets may be stale by one
  /// mutation. Results are the k best (distance, id)-ordered pairs.
  /// Deterministic: ids are processed in the given order and the
  /// candidate budget (options().match.budget.max_candidates) cuts
  /// deterministically; deadline / cancel follow the usual
  /// partial-result contract.
  util::Result<std::vector<std::pair<uint64_t, double>>> MatchIds(
      const std::vector<uint64_t>& ids, const geom::Polyline& query,
      size_t k = 1, MatchStats* stats = nullptr) const;

  /// Attaches a mutation observer (non-owning; nullptr detaches). The
  /// observer sees every ApplyInsert/ApplyRemove from now on, including
  /// replayed ones.
  void SetObserver(DynamicBaseObserver* observer) { observer_ = observer; }

  /// Normalized copies of a known live id: the cached delta copies when
  /// present, otherwise recomputed from the stored boundary (records
  /// absorbed into main drop their cache at compaction). For observer
  /// state rebuilds after RestoreCheckpoint.
  util::Result<std::vector<NormalizedCopy>> NormalizedCopiesOf(
      uint64_t id) const;

  /// Forces a rebuild of the main base (normally automatic).
  util::Status Compact();

  // --- Durability (see storage/wal.h for the WAL implementation) ---

  /// Attaches a journal (non-owning; pass nullptr to detach). Once
  /// attached, Insert/Remove log before they apply — a journal failure
  /// aborts the mutation — and Compact logs a begin marker before the
  /// rebuild and a commit (checkpoint) after the swap.
  void SetJournal(DynamicBaseJournal* journal) { journal_ = journal; }

  /// Restores checkpoint state into an EMPTY base (kFailedPrecondition
  /// otherwise): adopts `main` as the finalized main base, `stable_ids[i]`
  /// names main shape i, ids in [0, next_id) not listed become deleted
  /// placeholders so stable ids keep their meaning across recovery.
  util::Status RestoreCheckpoint(std::unique_ptr<ShapeBase> main,
                                 std::vector<uint64_t> stable_ids,
                                 uint64_t next_id);

  /// Idempotent replay of a logged insert: `id == NextId()` applies it
  /// (no journaling, no auto-compaction), `id < NextId()` is a no-op (the
  /// checkpoint already absorbed it), and a gap (`id > NextId()`) is
  /// kCorruption — the log and checkpoint disagree.
  util::Status ReplayInsert(uint64_t id, geom::Polyline boundary,
                            ImageId image, std::string label);

  /// Idempotent replay of a logged remove: deleting an already-deleted
  /// shape is a no-op; an unknown id is kCorruption.
  util::Status ReplayRemove(uint64_t id);

  /// The id the next Insert will return.
  uint64_t NextId() const { return records_.size(); }
  bool IsLive(uint64_t id) const {
    return id < records_.size() && !records_[id].deleted;
  }
  /// Stable ids of all live shapes, ascending.
  std::vector<uint64_t> LiveIds() const;
  /// Original (un-normalized) boundary of a known id (live or deleted
  /// placeholder boundaries of restored tombstones are empty).
  const geom::Polyline& boundary(uint64_t id) const {
    return records_[id].boundary;
  }
  ImageId image(uint64_t id) const { return records_[id].image; }
  const std::string& label(uint64_t id) const { return records_[id].label; }

  /// Mutable match configuration, including the query-lifecycle controls
  /// (deadline / cancel_token / budget). A deadline is an absolute time
  /// point, so arm it right before the Match or MatchBatch call it should
  /// bound. Lifecycle stops follow the matcher's partial-result contract:
  /// best-so-far rankings come back with MatchStats::partial set (delta
  /// shapes not yet scored count as candidates_skipped); a stop before
  /// anything was ranked returns the stop status instead.
  MatchOptions& match_options() { return options_.match; }
  const MatchOptions& match_options() const { return options_.match; }

  size_t NumLive() const { return live_count_; }
  size_t NumDelta() const { return delta_ids_.size(); }
  size_t NumTombstones() const { return tombstones_; }
  size_t NumCompactions() const { return compactions_; }

 private:
  struct Record {
    geom::Polyline boundary;
    ImageId image = kNoImage;
    std::string label;
    bool deleted = false;
    bool in_main = false;
    /// Normalized copies, cached at insert so delta queries do not pay
    /// normalization per query. Cleared once the record enters main.
    std::vector<NormalizedCopy> copies;
  };

  util::Status MaybeCompact();
  /// The fallible half of an insert: normalized copies for the delta
  /// cache. Insert and ReplayInsert run this BEFORE the journal write so
  /// a journaled insert can never fail to apply (a record that applied in
  /// the live process but aborted replay would make the store
  /// unrecoverable until a checkpoint absorbed it).
  util::Result<std::vector<NormalizedCopy>> NormalizeBoundary(
      const geom::Polyline& boundary) const;
  /// Shared infallible tail of Insert and ReplayInsert: appends the
  /// record (with its pre-normalized copies) to the delta and updates
  /// gauges. Never journals, never compacts.
  uint64_t ApplyInsert(geom::Polyline boundary, ImageId image,
                       std::string label, std::vector<NormalizedCopy> copies);
  /// Shared tail of Remove and ReplayRemove (same no-journal rule).
  void ApplyRemove(uint64_t id);
  double EvaluateAgainstQuery(const Record& record,
                              const NormalizedCopy& qnorm) const;
  /// One copy shape scored against the normalized query under
  /// options().match.measure.
  double EvaluateCopyShape(const geom::Polyline& copy_shape,
                           const NormalizedCopy& qnorm) const;
  /// The Match pipeline against an explicit matcher instance (MatchBatch
  /// runs one per worker slot). Mutates only `matcher`'s scratch.
  util::Result<std::vector<std::pair<uint64_t, double>>> MatchWith(
      EnvelopeMatcher* matcher, const geom::Polyline& query, size_t k,
      MatchStats* stats) const;

  Options options_;
  DynamicBaseJournal* journal_ = nullptr;  // Non-owning.
  DynamicBaseObserver* observer_ = nullptr;  // Non-owning.
  std::vector<Record> records_;        // Indexed by stable id.
  std::unique_ptr<ShapeBase> main_;    // Finalized; may be null (empty).
  std::unique_ptr<EnvelopeMatcher> matcher_;
  std::vector<uint64_t> main_ids_;     // Main ShapeId -> stable id.
  std::vector<uint64_t> delta_ids_;    // Stable ids not yet in main.
  size_t live_count_ = 0;
  size_t tombstones_ = 0;              // Deleted records still in main.
  size_t compactions_ = 0;
};

}  // namespace geosir::core

#endif  // GEOSIR_CORE_DYNAMIC_SHAPE_BASE_H_
