#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geom/distance.h"
#include "util/numeric.h"

namespace geosir::core {

namespace {

using geom::Polyline;
using geom::Segment;

double EdgeDistanceIntegral(const Segment& edge, const Polyline& b,
                            const SimilarityOptions& options) {
  const double len = edge.Length();
  if (len <= 0.0) return 0.0;
  util::QuadratureOptions quad;
  quad.abs_tolerance = options.quadrature_tolerance * len;
  quad.max_depth = options.max_depth;
  const double mean = util::AdaptiveSimpson(
      [&edge, &b](double t) {
        return geom::DistancePointPolyline(edge.At(t), b);
      },
      0.0, 1.0, quad);
  return mean * len;  // Parameter integral times |dx/dt| = len.
}

}  // namespace

double AvgMinDistance(const Polyline& a, const Polyline& b,
                      const SimilarityOptions& options) {
  const size_t n = a.NumEdges();
  if (n == 0) {
    // Degenerate shape: fall back to the vertex average.
    return DiscreteAvgMinDistance(a, b);
  }
  double total = 0.0;
  double perimeter = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Segment e = a.Edge(i);
    total += EdgeDistanceIntegral(e, b, options);
    perimeter += e.Length();
  }
  return perimeter > 0.0 ? total / perimeter : 0.0;
}

double AvgMinDistanceSymmetric(const Polyline& a, const Polyline& b,
                               const SimilarityOptions& options) {
  return std::max(AvgMinDistance(a, b, options),
                  AvgMinDistance(b, a, options));
}

double DiscreteAvgMinDistance(const Polyline& a, const Polyline& b) {
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (geom::Point p : a.vertices()) {
    sum += geom::DistancePointPolyline(p, b);
  }
  return sum / static_cast<double>(a.size());
}

double DiscreteDirectedHausdorff(const Polyline& a, const Polyline& b) {
  double worst = 0.0;
  for (geom::Point p : a.vertices()) {
    worst = std::max(worst, geom::DistancePointPolyline(p, b));
  }
  return worst;
}

double DiscreteHausdorff(const Polyline& a, const Polyline& b) {
  return std::max(DiscreteDirectedHausdorff(a, b),
                  DiscreteDirectedHausdorff(b, a));
}

double PartialDirectedHausdorff(const Polyline& a, const Polyline& b,
                                double fraction) {
  if (a.empty()) return 0.0;
  fraction = std::clamp(fraction, 1e-9, 1.0);
  std::vector<double> dists;
  dists.reserve(a.size());
  for (geom::Point p : a.vertices()) {
    dists.push_back(geom::DistancePointPolyline(p, b));
  }
  // Huttenlocher-Rucklidge ranking: the K-th smallest distance with
  // K = ceil(fraction * |A|). fraction = 1 recovers the Hausdorff max;
  // fraction = 0.5 is the median variant the paper cites (k = m/2).
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(fraction * dists.size())));
  std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
  return dists[k - 1];
}

double PartialHausdorff(const Polyline& a, const Polyline& b,
                        double fraction) {
  return std::max(PartialDirectedHausdorff(a, b, fraction),
                  PartialDirectedHausdorff(b, a, fraction));
}

}  // namespace geosir::core
