#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geom/distance.h"
#include "geom/kernel_dispatch.h"
#include "util/numeric.h"

namespace geosir::core {

namespace {

using geom::Polyline;
using geom::Segment;

/// Integrates the distance-to-target function along one edge of A.
/// `distance_to_b` is any exact point-to-boundary distance oracle
/// (the O(E) scan or a prebuilt edge grid).
template <typename DistanceFn>
double EdgeDistanceIntegral(const Segment& edge, const DistanceFn& distance_to_b,
                            const SimilarityOptions& options) {
  const double len = edge.Length();
  if (len <= 0.0) return 0.0;
  util::QuadratureOptions quad;
  quad.abs_tolerance = options.quadrature_tolerance * len;
  quad.max_depth = options.max_depth;
  const double mean = util::AdaptiveSimpson(
      [&edge, &distance_to_b](double t) { return distance_to_b(edge.At(t)); },
      0.0, 1.0, quad);
  return mean * len;  // Parameter integral times |dx/dt| = len.
}

template <typename DistanceFn>
double AvgMinDistanceImpl(const Polyline& a, const DistanceFn& distance_to_b,
                          const SimilarityOptions& options) {
  const size_t n = a.NumEdges();
  double total = 0.0;
  double perimeter = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Segment e = a.Edge(i);
    total += EdgeDistanceIntegral(e, distance_to_b, options);
    perimeter += e.Length();
  }
  if (perimeter > 0.0) return total / perimeter;
  // Degenerate shape (no edges, or only zero-length edges — e.g. every
  // vertex duplicated): the boundary is a point set, so the arc-length
  // average degenerates to the vertex average. Returning 0 here would
  // rank such a shape as a perfect match to everything.
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (geom::Point p : a.vertices()) sum += distance_to_b(p);
  return sum / static_cast<double>(a.size());
}

template <typename DistanceFn>
double DiscreteAvgMinDistanceImpl(const Polyline& a,
                                  const DistanceFn& distance_to_b) {
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (geom::Point p : a.vertices()) sum += distance_to_b(p);
  return sum / static_cast<double>(a.size());
}

/// All of A's vertex min-distances to B in one batched kernel call.
std::vector<double> VertexMinDistances(const Polyline& a,
                                       const geom::EdgeSoA& b) {
  std::vector<double> dists(a.size());
  b.MinDistances(a.vertices().data(), a.size(), dists.data());
  return dists;
}

}  // namespace

double AvgMinDistance(const Polyline& a, const Polyline& b,
                      const SimilarityOptions& options) {
  if (b.NumEdges() >= options.grid_min_edges) {
    const geom::EdgeGrid grid(b);
    return AvgMinDistanceImpl(
        a, [&grid](geom::Point p) { return grid.Distance(p); }, options);
  }
  // Below the grid threshold the flat scan wins: build the SoA store
  // once and stream every quadrature sample through the batch kernel.
  const geom::EdgeSoA soa(b);
  return AvgMinDistance(a, soa, options);
}

double AvgMinDistance(const Polyline& a, const geom::EdgeGrid& b,
                      const SimilarityOptions& options) {
  return AvgMinDistanceImpl(
      a, [&b](geom::Point p) { return b.Distance(p); }, options);
}

double AvgMinDistance(const Polyline& a, const geom::EdgeSoA& b,
                      const SimilarityOptions& options) {
  // Count kernel work locally and flush one increment per evaluation —
  // never per quadrature sample.
  size_t evals = 0;
  const double result = AvgMinDistanceImpl(
      a,
      [&b, &evals](geom::Point p) {
        ++evals;
        return b.MinDistance(p);
      },
      options);
  geom::CountBatchedEdges(evals * b.num_edges());
  return result;
}

double AvgMinDistanceSymmetric(const Polyline& a, const Polyline& b,
                               const SimilarityOptions& options) {
  return std::max(AvgMinDistance(a, b, options),
                  AvgMinDistance(b, a, options));
}

double DiscreteAvgMinDistance(const Polyline& a, const Polyline& b) {
  return DiscreteAvgMinDistance(a, geom::EdgeSoA(b));
}

double DiscreteAvgMinDistance(const Polyline& a, const geom::EdgeGrid& b) {
  return DiscreteAvgMinDistanceImpl(
      a, [&b](geom::Point p) { return b.Distance(p); });
}

double DiscreteAvgMinDistance(const Polyline& a, const geom::EdgeSoA& b) {
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (double d : VertexMinDistances(a, b)) sum += d;
  return sum / static_cast<double>(a.size());
}

double DiscreteDirectedHausdorff(const Polyline& a, const Polyline& b) {
  if (a.empty()) return 0.0;
  const geom::EdgeSoA soa(b);
  double worst = 0.0;
  for (double d : VertexMinDistances(a, soa)) worst = std::max(worst, d);
  return worst;
}

double DiscreteHausdorff(const Polyline& a, const Polyline& b) {
  return std::max(DiscreteDirectedHausdorff(a, b),
                  DiscreteDirectedHausdorff(b, a));
}

double PartialDirectedHausdorff(const Polyline& a, const Polyline& b,
                                double fraction) {
  if (a.empty()) return 0.0;
  fraction = std::clamp(fraction, 1e-9, 1.0);
  std::vector<double> dists = VertexMinDistances(a, geom::EdgeSoA(b));
  // Huttenlocher-Rucklidge ranking: the K-th smallest distance with
  // K = ceil(fraction * |A|). fraction = 1 recovers the Hausdorff max;
  // fraction = 0.5 is the median variant the paper cites (k = m/2).
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(fraction * dists.size())));
  std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
  return dists[k - 1];
}

double PartialHausdorff(const Polyline& a, const Polyline& b,
                        double fraction) {
  return std::max(PartialDirectedHausdorff(a, b, fraction),
                  PartialDirectedHausdorff(b, a, fraction));
}

}  // namespace geosir::core
