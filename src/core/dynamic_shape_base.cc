#include "core/dynamic_shape_base.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/normalize.h"
#include "core/similarity.h"
#include "obs/metrics.h"
#include "util/query_control.h"
#include "util/thread_pool.h"

namespace geosir::core {

namespace {

/// Process-wide dynamic-base metric families. The gauges aggregate over
/// instances by delta: each instance adds its own size changes.
struct DynamicBaseMetrics {
  obs::Counter* inserts;
  obs::Counter* removes;
  obs::Counter* compactions;
  obs::Gauge* delta_shapes;
  obs::Gauge* tombstones;
  obs::Gauge* live_shapes;
  obs::Histogram* compaction_latency;

  static const DynamicBaseMetrics& Get() {
    static const DynamicBaseMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new DynamicBaseMetrics();
      m->inserts = r.GetCounter("geosir_dynamic_inserts_total",
                                "Shapes inserted into dynamic bases");
      m->removes = r.GetCounter("geosir_dynamic_removes_total",
                                "Shapes removed from dynamic bases");
      m->compactions = r.GetCounter("geosir_dynamic_compactions_total",
                                    "Main-base rebuilds (delta merges)");
      m->delta_shapes = r.GetGauge("geosir_dynamic_delta_shapes",
                                   "Unindexed delta shapes awaiting merge");
      m->tombstones = r.GetGauge("geosir_dynamic_tombstones",
                                 "Deleted shapes still in main bases");
      m->live_shapes =
          r.GetGauge("geosir_dynamic_live_shapes", "Live shapes (all bases)");
      m->compaction_latency = r.GetHistogram(
          "geosir_dynamic_compaction_seconds",
          "Wall-clock latency of one compaction (main-base rebuild)",
          obs::LatencyBucketsSeconds());
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

DynamicShapeBase::DynamicShapeBase(Options options)
    : options_(std::move(options)) {}

util::Result<std::vector<NormalizedCopy>> DynamicShapeBase::NormalizeBoundary(
    const geom::Polyline& boundary) const {
  Shape tmp;
  tmp.boundary = boundary;
  return NormalizeShape(tmp, options_.base.normalize);
}

uint64_t DynamicShapeBase::ApplyInsert(geom::Polyline boundary, ImageId image,
                                       std::string label,
                                       std::vector<NormalizedCopy> copies) {
  Record record;
  record.boundary = std::move(boundary);
  record.image = image;
  record.label = std::move(label);
  record.copies = std::move(copies);
  const uint64_t id = records_.size();
  records_.push_back(std::move(record));
  delta_ids_.push_back(id);
  ++live_count_;
  const DynamicBaseMetrics& metrics = DynamicBaseMetrics::Get();
  metrics.inserts->Inc();
  metrics.delta_shapes->Add(1);
  metrics.live_shapes->Add(1);
  // Observer hook sits on this shared tail so replayed inserts (journal
  // recovery, replication followers) reach it too.
  if (observer_ != nullptr) observer_->OnInsert(id, records_[id].copies);
  return id;
}

void DynamicShapeBase::ApplyRemove(uint64_t id) {
  Record& record = records_[id];
  record.deleted = true;
  --live_count_;
  const DynamicBaseMetrics& metrics = DynamicBaseMetrics::Get();
  metrics.removes->Inc();
  metrics.live_shapes->Add(-1);
  if (record.in_main) {
    ++tombstones_;
    metrics.tombstones->Add(1);
  } else {
    delta_ids_.erase(
        std::remove(delta_ids_.begin(), delta_ids_.end(), id),
        delta_ids_.end());
    metrics.delta_shapes->Add(-1);
  }
  if (observer_ != nullptr) observer_->OnRemove(id);
}

util::Result<uint64_t> DynamicShapeBase::Insert(geom::Polyline boundary,
                                                ImageId image,
                                                std::string label) {
  // Validate eagerly with the same rules the main base applies, so a bad
  // shape fails at insert time instead of at the next compaction.
  GEOSIR_RETURN_IF_ERROR(boundary.Validate());
  if (boundary.size() < 3) {
    return util::Status::InvalidArgument(
        "database shapes need at least 3 vertices");
  }
  // All fallible apply work (normalization) runs before the journal
  // write: once a record is in the WAL its replay must always succeed,
  // or one rejected shape would abort every future recovery.
  GEOSIR_ASSIGN_OR_RETURN(std::vector<NormalizedCopy> copies,
                          NormalizeBoundary(boundary));
  // Write-ahead: the mutation is logged before it is applied, so an
  // acknowledged insert is always in the journal and a journal failure
  // leaves the in-memory state untouched.
  if (journal_ != nullptr) {
    GEOSIR_RETURN_IF_ERROR(
        journal_->LogInsert(records_.size(), boundary, image, label));
  }
  const uint64_t id = ApplyInsert(std::move(boundary), image,
                                  std::move(label), std::move(copies));
  GEOSIR_RETURN_IF_ERROR(MaybeCompact());
  return id;
}

util::Status DynamicShapeBase::Remove(uint64_t id) {
  if (id >= records_.size()) {
    return util::Status::NotFound("unknown shape id");
  }
  if (records_[id].deleted) {
    return util::Status::FailedPrecondition("shape already deleted");
  }
  if (journal_ != nullptr) {
    GEOSIR_RETURN_IF_ERROR(journal_->LogRemove(id));
  }
  ApplyRemove(id);
  return MaybeCompact();
}

util::Status DynamicShapeBase::RestoreCheckpoint(
    std::unique_ptr<ShapeBase> main, std::vector<uint64_t> stable_ids,
    uint64_t next_id) {
  if (!records_.empty() || main_ != nullptr) {
    return util::Status::FailedPrecondition(
        "RestoreCheckpoint needs an empty base");
  }
  if (main == nullptr || !main->finalized()) {
    return util::Status::InvalidArgument(
        "checkpoint base must be finalized");
  }
  if (stable_ids.size() != main->NumShapes()) {
    return util::Status::Corruption(
        "checkpoint id map does not match checkpoint shape count");
  }
  uint64_t prev = 0;
  for (size_t i = 0; i < stable_ids.size(); ++i) {
    if (stable_ids[i] >= next_id || (i > 0 && stable_ids[i] <= prev)) {
      return util::Status::Corruption(
          "checkpoint stable ids must be ascending and below next_id");
    }
    prev = stable_ids[i];
  }
  // Unlisted ids below next_id become deleted placeholders: stable ids
  // are record indexes, so holes must stay holes after recovery.
  records_.resize(next_id);
  for (Record& record : records_) record.deleted = true;
  for (size_t i = 0; i < stable_ids.size(); ++i) {
    Record& record = records_[stable_ids[i]];
    const Shape& shape = main->shape(static_cast<ShapeId>(i));
    record.boundary = shape.boundary;
    record.image = shape.image;
    record.label = shape.label;
    record.deleted = false;
    record.in_main = true;
  }
  main_ = std::move(main);
  matcher_ = std::make_unique<EnvelopeMatcher>(main_.get());
  main_ids_ = std::move(stable_ids);
  live_count_ = main_ids_.size();
  tombstones_ = 0;
  DynamicBaseMetrics::Get().live_shapes->Add(
      static_cast<int64_t>(live_count_));
  return util::Status::OK();
}

util::Status DynamicShapeBase::ReplayInsert(uint64_t id,
                                            geom::Polyline boundary,
                                            ImageId image, std::string label) {
  if (id < records_.size()) {
    // Already applied (live) or already applied and later removed
    // (tombstone). Either way the log prefix up to here was absorbed by
    // the checkpoint, so the replay is a no-op — this is what makes
    // replay idempotent across a crash between checkpoint publication
    // and log truncation.
    return util::Status::OK();
  }
  if (id > records_.size()) {
    return util::Status::Corruption(
        "replayed insert skips ids (log/checkpoint mismatch)");
  }
  GEOSIR_RETURN_IF_ERROR(boundary.Validate());
  if (boundary.size() < 3) {
    return util::Status::Corruption("replayed shape has too few vertices");
  }
  GEOSIR_ASSIGN_OR_RETURN(std::vector<NormalizedCopy> copies,
                          NormalizeBoundary(boundary));
  ApplyInsert(std::move(boundary), image, std::move(label),
              std::move(copies));
  return util::Status::OK();
}

util::Status DynamicShapeBase::ReplayRemove(uint64_t id) {
  if (id >= records_.size()) {
    return util::Status::Corruption("replayed remove of an unknown id");
  }
  if (records_[id].deleted) return util::Status::OK();  // Idempotent.
  ApplyRemove(id);
  return util::Status::OK();
}

std::vector<uint64_t> DynamicShapeBase::LiveIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(live_count_);
  for (uint64_t id = 0; id < records_.size(); ++id) {
    if (!records_[id].deleted) ids.push_back(id);
  }
  return ids;
}

util::Status DynamicShapeBase::MaybeCompact() {
  const size_t main_shapes = main_ == nullptr ? 0 : main_->NumShapes();
  const bool delta_heavy =
      delta_ids_.size() >= options_.min_compaction_size &&
      static_cast<double>(delta_ids_.size()) >
          options_.max_delta_fraction *
              std::max<size_t>(1, live_count_);
  const bool tombstone_heavy =
      tombstones_ >= options_.min_compaction_size &&
      static_cast<double>(tombstones_) >
          options_.max_tombstone_fraction * std::max<size_t>(1, main_shapes);
  if (!delta_heavy && !tombstone_heavy) return util::Status::OK();
  return Compact();
}

util::Status DynamicShapeBase::Compact() {
  const DynamicBaseMetrics& metrics = DynamicBaseMetrics::Get();
  const auto compact_start = std::chrono::steady_clock::now();
  // The begin marker is advisory (recovery does not need it): it records
  // in the log that a rebuild started, which makes crash traces readable.
  if (journal_ != nullptr) {
    GEOSIR_RETURN_IF_ERROR(journal_->LogCompactBegin());
  }
  auto rebuilt = std::make_unique<ShapeBase>(options_.base);
  std::vector<uint64_t> ids;
  for (uint64_t id = 0; id < records_.size(); ++id) {
    Record& record = records_[id];
    if (record.deleted) continue;
    GEOSIR_ASSIGN_OR_RETURN(ShapeId inner,
                            rebuilt->AddShape(record.boundary, record.image,
                                              record.label));
    (void)inner;  // Sequential: ids.size() tracks it.
    ids.push_back(id);
    record.in_main = true;
    record.copies.clear();  // The main base owns normalized copies now.
    record.copies.shrink_to_fit();
  }
  GEOSIR_RETURN_IF_ERROR(rebuilt->Finalize());
  main_ = std::move(rebuilt);
  matcher_ = std::make_unique<EnvelopeMatcher>(main_.get());
  main_ids_ = std::move(ids);
  metrics.delta_shapes->Add(-static_cast<int64_t>(delta_ids_.size()));
  metrics.tombstones->Add(-static_cast<int64_t>(tombstones_));
  delta_ids_.clear();
  tombstones_ = 0;
  ++compactions_;
  metrics.compactions->Inc();
  metrics.compaction_latency->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    compact_start)
          .count());
  // Checkpoint after the swap: the journal persists the full live state
  // and truncates its log. On failure the in-memory base is still valid
  // and the previous log still replays to this exact state, so the error
  // is surfaced but nothing is rolled back.
  if (journal_ != nullptr) {
    GEOSIR_RETURN_IF_ERROR(
        journal_->LogCompactCommit(*main_, main_ids_, records_.size()));
  }
  return util::Status::OK();
}

double DynamicShapeBase::EvaluateCopyShape(const geom::Polyline& copy_shape,
                                           const NormalizedCopy& qnorm) const {
  switch (options_.match.measure) {
    case MatchMeasure::kContinuousSymmetric:
      return AvgMinDistanceSymmetric(copy_shape, qnorm.shape,
                                     options_.match.similarity);
    case MatchMeasure::kContinuousDirected:
      return AvgMinDistance(copy_shape, qnorm.shape,
                            options_.match.similarity);
    case MatchMeasure::kDiscreteSymmetric:
      return std::max(DiscreteAvgMinDistance(copy_shape, qnorm.shape),
                      DiscreteAvgMinDistance(qnorm.shape, copy_shape));
    case MatchMeasure::kDiscreteDirected:
      return DiscreteAvgMinDistance(copy_shape, qnorm.shape);
  }
  return std::numeric_limits<double>::infinity();
}

double DynamicShapeBase::EvaluateAgainstQuery(
    const Record& record, const NormalizedCopy& qnorm) const {
  // Delta shapes are matched by direct evaluation over their cached
  // normalized copies (the delta is small by construction).
  double best = std::numeric_limits<double>::infinity();
  for (const NormalizedCopy& copy : record.copies) {
    best = std::min(best, EvaluateCopyShape(copy.shape, qnorm));
  }
  return best;
}

util::Result<std::vector<NormalizedCopy>> DynamicShapeBase::NormalizedCopiesOf(
    uint64_t id) const {
  if (id >= records_.size() || records_[id].deleted) {
    return util::Status::NotFound("unknown or deleted shape id");
  }
  const Record& record = records_[id];
  if (!record.copies.empty()) return record.copies;
  if (record.boundary.empty()) {
    // Restored tombstone placeholder that later resurfaced — impossible
    // for live ids, but keep the failure explicit.
    return util::Status::FailedPrecondition("record has no boundary");
  }
  return NormalizeBoundary(record.boundary);
}

util::Result<std::vector<std::pair<uint64_t, double>>>
DynamicShapeBase::MatchIds(const std::vector<uint64_t>& ids,
                           const geom::Polyline& query, size_t k,
                           MatchStats* stats) const {
  MatchStats local_stats;
  MatchStats& st = stats != nullptr ? *stats : local_stats;
  st = MatchStats{};

  const util::QueryControl control{options_.match.deadline,
                                   options_.match.cancel_token};
  {
    util::Status entry = control.Check();
    if (!entry.ok()) {
      st.termination = entry;
      return entry;
    }
  }
  const util::ScopedQueryControl scoped(&control);

  GEOSIR_ASSIGN_OR_RETURN(NormalizedCopy qnorm, NormalizeQuery(query));
  const WorkBudget& budget = options_.match.budget;
  std::vector<std::pair<uint64_t, double>> results;
  results.reserve(std::min(ids.size(), k + 8));
  util::Status stop;
  for (uint64_t id : ids) {
    if (stop.ok()) stop = control.Check();
    if (stop.ok() && budget.max_candidates > 0 &&
        st.candidates_evaluated >= budget.max_candidates) {
      stop = util::Status::ResourceExhausted("candidate budget exhausted");
    }
    if (!stop.ok()) {
      ++st.candidates_skipped;
      continue;
    }
    // Stale candidates (removed since the pre-filter emitted them) are
    // skipped silently: the approximate tier is allowed to lag by a
    // mutation, the exact tier filters it out here.
    if (id >= records_.size() || records_[id].deleted) continue;
    const Record& record = records_[id];
    double distance;
    if (!record.copies.empty()) {
      distance = EvaluateAgainstQuery(record, qnorm);
    } else if (record.in_main && main_ != nullptr) {
      // Compaction cleared the record's cached copies; score the main
      // base's pooled copies instead of renormalizing. main_ids_ is
      // ascending (Compact builds it in id order, RestoreCheckpoint
      // validates it), so the reverse map is a binary search.
      const auto it =
          std::lower_bound(main_ids_.begin(), main_ids_.end(), id);
      if (it == main_ids_.end() || *it != id) continue;
      const ShapeId shape_id =
          static_cast<ShapeId>(it - main_ids_.begin());
      distance = std::numeric_limits<double>::infinity();
      for (uint32_t copy_idx : main_->CopiesOfShape(shape_id)) {
        distance = std::min(
            distance, EvaluateCopyShape(main_->copy(copy_idx).shape, qnorm));
      }
    } else {
      continue;
    }
    ++st.candidates_evaluated;
    results.emplace_back(id, distance);
  }

  std::sort(results.begin(), results.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (results.size() > k) results.resize(k);

  if (!stop.ok()) {
    st.termination = stop;
    if (results.empty()) return stop;
    st.partial = true;
  }
  return results;
}

util::Result<std::vector<std::pair<uint64_t, double>>>
DynamicShapeBase::Match(const geom::Polyline& query, size_t k,
                        MatchStats* stats) {
  return MatchWith(matcher_.get(), query, k, stats);
}

util::Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
DynamicShapeBase::MatchBatch(const std::vector<geom::Polyline>& queries,
                             size_t k, std::vector<MatchStats>* stats) {
  const size_t n = queries.size();
  std::vector<std::vector<std::pair<uint64_t, double>>> results(n);
  if (stats != nullptr) stats->assign(n, MatchStats{});
  if (n == 0) return results;

  util::ThreadPool* pool =
      options_.match.num_threads > 1
          ? (options_.match.pool != nullptr ? options_.match.pool
                                            : &util::ThreadPool::Shared())
          : nullptr;
  const size_t slots =
      pool != nullptr ? pool->MaxSlots(options_.match.num_threads) : 1;

  // One matcher per worker slot over the (immutable during the batch)
  // main base; the delta is evaluated directly per query.
  std::vector<std::unique_ptr<EnvelopeMatcher>> matchers(slots);
  if (main_ != nullptr) {
    for (auto& matcher : matchers) {
      matcher = std::make_unique<EnvelopeMatcher>(main_.get());
    }
  }
  std::vector<util::Status> errors(n);
  std::vector<uint8_t> started(n, 0);
  // Same per-query lifecycle contract as core::MatchBatch: stops leave
  // partial results + stats[i].termination; real errors fail the batch.
  const auto run_query = [&](size_t worker, size_t i) {
    started[i] = 1;
    MatchStats* query_stats = stats != nullptr ? &(*stats)[i] : nullptr;
    auto result = MatchWith(matchers[worker].get(), queries[i], k, query_stats);
    if (result.ok()) {
      results[i] = *std::move(result);
    } else if (!util::IsLifecycleStop(result.status().code())) {
      errors[i] = result.status();
    }
  };
  const util::CancellationToken* cancel = options_.match.cancel_token;
  if (pool != nullptr) {
    pool->ParallelFor(n, options_.match.num_threads, run_query, cancel);
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) break;
      run_query(0, i);
    }
  }
  if (stats != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (!started[i]) {
        (*stats)[i].termination =
            util::Status::Cancelled("batch cancelled before query started");
      }
    }
  }
  for (const util::Status& status : errors) {
    GEOSIR_RETURN_IF_ERROR(status);
  }
  return results;
}

util::Result<std::vector<std::pair<uint64_t, double>>>
DynamicShapeBase::MatchWith(EnvelopeMatcher* matcher,
                            const geom::Polyline& query, size_t k,
                            MatchStats* stats) const {
  MatchStats local_stats;
  MatchStats& st = stats != nullptr ? *stats : local_stats;
  st = MatchStats{};

  // Lifecycle entry check + thread-local binding for the delta-evaluation
  // loop (the inner matcher rebinds the same control around its own body).
  const util::QueryControl control{options_.match.deadline,
                                   options_.match.cancel_token};
  {
    util::Status entry = control.Check();
    if (!entry.ok()) {
      st.termination = entry;
      return entry;
    }
  }
  const util::ScopedQueryControl scoped(&control);

  GEOSIR_ASSIGN_OR_RETURN(NormalizedCopy qnorm, NormalizeQuery(query));
  std::vector<std::pair<uint64_t, double>> results;
  util::Status stop;  // First lifecycle stop observed.

  if (main_ != nullptr && main_->NumShapes() > 0) {
    // Ask for a little slack to survive tombstone filtering; retry with
    // more only in the rare case the top results were mostly deleted
    // (asking for k + all tombstones upfront would defeat the matcher's
    // early exit on every query).
    size_t slack = std::min<size_t>(tombstones_, 2);
    while (true) {
      MatchOptions match = options_.match;
      match.k = k + slack;
      // Each slack attempt re-runs the full query; `st` keeps the final
      // attempt's diagnostics (including the degraded flag). The
      // matcher's per-query memo makes retries cheap: every copy scored
      // in an earlier attempt is a cache hit.
      auto main_result = matcher->Match(query, match, &st);
      std::vector<MatchResult> main_results;
      if (main_result.ok()) {
        main_results = *std::move(main_result);
        if (st.partial) stop = st.termination;
      } else if (util::IsLifecycleStop(main_result.status().code())) {
        stop = main_result.status();
      } else {
        return main_result.status();
      }
      std::vector<std::pair<uint64_t, double>> survivors;
      for (const MatchResult& m : main_results) {
        const uint64_t stable = main_ids_[m.shape_id];
        if (records_[stable].deleted) continue;
        survivors.emplace_back(stable, m.distance);
      }
      const bool exhausted = main_results.size() < k + slack ||
                             slack >= tombstones_;
      // A stopping query does not get slack retries: re-running with a
      // larger k would start the whole search over past its deadline.
      if (!stop.ok() || survivors.size() >= k || exhausted) {
        results = std::move(survivors);
        break;
      }
      slack = std::min(tombstones_, 2 * slack + 8);
    }
  }
  for (uint64_t id : delta_ids_) {
    // Each delta shape costs one direct similarity evaluation — the same
    // unit the matcher's candidate checkpoint guards, so poll per shape.
    if (stop.ok()) stop = control.Check();
    if (!stop.ok()) {
      ++st.candidates_skipped;
      continue;
    }
    results.emplace_back(id, EvaluateAgainstQuery(records_[id], qnorm));
    ++st.candidates_evaluated;
  }

  std::sort(results.begin(), results.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (results.size() > k) results.resize(k);

  // Same partial-result contract as the matcher: ranked best-so-far comes
  // back OK with `partial` set; a stop before anything was ranked is the
  // call's error.
  if (!stop.ok()) {
    st.termination = stop;
    if (results.empty()) {
      st.partial = false;  // Tombstones may have emptied a partial ranking.
      return stop;
    }
    st.partial = true;
  }
  return results;
}

}  // namespace geosir::core
