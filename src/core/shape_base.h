#ifndef GEOSIR_CORE_SHAPE_BASE_H_
#define GEOSIR_CORE_SHAPE_BASE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/match_types.h"
#include "core/normalize.h"
#include "core/shape.h"
#include "rangesearch/simplex_index.h"
#include "util/status.h"

namespace geosir::core {

/// Area of the lune (lens) bounded by the two unit circles centered at
/// (0,0) and (1,0): 2*pi/3 - sqrt(3)/2. Vertices of shapes normalized
/// about their true diameter always land inside it.
constexpr double kLuneArea = 1.2283696986087567;

/// Which simplex range-search structure backs the shape base.
enum class IndexBackend {
  kBruteForce,
  kGrid,
  kKdTree,
  kRangeTree,
  /// Output-sensitive half-plane structure; build is O(n * layers), so
  /// only suitable for small-to-moderate bases.
  kConvexLayers,
};

const char* IndexBackendName(IndexBackend backend);

struct ShapeBaseOptions {
  NormalizeOptions normalize;
  /// kKdTree is the default: near-logarithmic queries with linear space,
  /// which keeps 10M+ vertex bases comfortable. kRangeTree trades
  /// O(n log n) space for the paper's O(log n + k) reporting bound.
  IndexBackend backend = IndexBackend::kKdTree;
  /// When set, Finalize() uses this factory instead of `backend`. This is
  /// how upper layers plug in indexes the core cannot name (e.g.
  /// storage::ExternalSimplexIndex, possibly fault-injected) without a
  /// dependency cycle.
  std::function<std::unique_ptr<rangesearch::SimplexIndex>()> index_factory;
};

/// The shape base of Section 2.4: every added shape is normalized about
/// its alpha-diameters and all normalized copies are stored, their
/// vertices pooled into one point set indexed by a simplex range-search
/// structure. Build-then-query: AddShape() until done, Finalize() once,
/// then the matcher runs queries against it.
class ShapeBase {
 public:
  explicit ShapeBase(ShapeBaseOptions options = {});

  ShapeBase(const ShapeBase&) = delete;
  ShapeBase& operator=(const ShapeBase&) = delete;

  /// Validates, normalizes and stores a shape. Returns its id.
  util::Result<ShapeId> AddShape(geom::Polyline boundary,
                                 ImageId image = kNoImage,
                                 std::string label = "");

  /// Builds the vertex index. No AddShape() calls are allowed afterwards.
  util::Status Finalize();
  bool finalized() const { return index_ != nullptr; }

  const ShapeBaseOptions& options() const { return options_; }

  size_t NumShapes() const { return shapes_.size(); }
  size_t NumCopies() const { return copies_.size(); }
  /// Total number of pooled normalized vertices (the paper's n).
  size_t NumVertices() const { return vertex_copy_.size(); }

  const Shape& shape(ShapeId id) const { return shapes_[id]; }
  const std::vector<Shape>& shapes() const { return shapes_; }
  const NormalizedCopy& copy(size_t idx) const { return copies_[idx]; }
  const std::vector<NormalizedCopy>& copies() const { return copies_; }
  /// Indices of the copies of a given shape.
  const std::vector<uint32_t>& CopiesOfShape(ShapeId id) const {
    return shape_copies_[id];
  }

  /// Copy that owns pooled vertex `vertex_id`.
  uint32_t CopyOfVertex(uint32_t vertex_id) const {
    return vertex_copy_[vertex_id];
  }

  /// The finalized range-search index over all pooled vertices; ids
  /// reported by the index are pooled vertex ids.
  const rangesearch::SimplexIndex& index() const { return *index_; }

  /// Throughput-style front end: runs independent queries concurrently
  /// across the pool configured in `options` (one EnvelopeMatcher per
  /// worker). result[i] corresponds to queries[i]; per-query results are
  /// bit-identical to a serial Match loop for every thread count. The
  /// base must be finalized.
  util::Result<std::vector<std::vector<MatchResult>>> MatchBatch(
      const std::vector<geom::Polyline>& queries,
      const MatchOptions& options = {},
      std::vector<MatchStats>* stats = nullptr) const;

 private:
  ShapeBaseOptions options_;
  std::vector<Shape> shapes_;
  std::vector<NormalizedCopy> copies_;
  std::vector<std::vector<uint32_t>> shape_copies_;
  std::vector<uint32_t> vertex_copy_;         // Pooled vertex -> copy index.
  std::vector<rangesearch::IndexedPoint> pending_points_;
  std::unique_ptr<rangesearch::SimplexIndex> index_;
};

/// Instantiates an empty index of the requested backend.
std::unique_ptr<rangesearch::SimplexIndex> MakeSimplexIndex(
    IndexBackend backend);

}  // namespace geosir::core

#endif  // GEOSIR_CORE_SHAPE_BASE_H_
