#include "core/shape_base.h"

#include "core/envelope_matcher.h"
#include "rangesearch/brute_force_index.h"
#include "rangesearch/convex_layers.h"
#include "rangesearch/grid_index.h"
#include "rangesearch/kd_tree_index.h"
#include "rangesearch/range_tree_index.h"

namespace geosir::core {

const char* IndexBackendName(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kBruteForce:
      return "brute-force";
    case IndexBackend::kGrid:
      return "grid";
    case IndexBackend::kKdTree:
      return "kd-tree";
    case IndexBackend::kRangeTree:
      return "range-tree-fc";
    case IndexBackend::kConvexLayers:
      return "convex-layers";
  }
  return "unknown";
}

std::unique_ptr<rangesearch::SimplexIndex> MakeSimplexIndex(
    IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kBruteForce:
      return std::make_unique<rangesearch::BruteForceIndex>();
    case IndexBackend::kGrid:
      return std::make_unique<rangesearch::GridIndex>();
    case IndexBackend::kKdTree:
      return std::make_unique<rangesearch::KdTreeIndex>();
    case IndexBackend::kRangeTree:
      return std::make_unique<rangesearch::RangeTreeIndex>();
    case IndexBackend::kConvexLayers:
      return std::make_unique<rangesearch::ConvexLayersIndex>();
  }
  return nullptr;
}

ShapeBase::ShapeBase(ShapeBaseOptions options)
    : options_(std::move(options)) {}

util::Result<ShapeId> ShapeBase::AddShape(geom::Polyline boundary,
                                          ImageId image, std::string label) {
  if (finalized()) {
    return util::Status::FailedPrecondition(
        "ShapeBase is finalized; no further AddShape calls");
  }
  if (boundary.size() < 3) {
    // A 2-vertex shape normalizes to the bare unit segment for every
    // possible input, so it carries no shape information (and would be
    // invisible to the index, which skips axis vertices).
    return util::Status::InvalidArgument(
        "database shapes need at least 3 vertices");
  }
  Shape shape;
  shape.id = static_cast<ShapeId>(shapes_.size());
  shape.image = image;
  shape.boundary = std::move(boundary);
  shape.label = std::move(label);

  GEOSIR_ASSIGN_OR_RETURN(std::vector<NormalizedCopy> copies,
                          NormalizeShape(shape, options_.normalize));

  shape_copies_.push_back({});
  std::vector<uint32_t>& copy_ids = shape_copies_.back();
  for (NormalizedCopy& copy : copies) {
    const uint32_t copy_idx = static_cast<uint32_t>(copies_.size());
    copy_ids.push_back(copy_idx);
    for (size_t vi = 0; vi < copy.shape.size(); ++vi) {
      // The two axis vertices sit exactly at (0,0) and (1,0) in every
      // copy — and on every normalized query's boundary, i.e. inside
      // every envelope. Indexing them would add ~2 * NumCopies()
      // zero-information reports to each query, so they stay implicit:
      // the matcher credits every copy with 2 in-envelope vertices.
      if (vi == copy.axis_i || vi == copy.axis_j) continue;
      const uint32_t vertex_id = static_cast<uint32_t>(vertex_copy_.size());
      vertex_copy_.push_back(copy_idx);
      pending_points_.push_back(
          rangesearch::IndexedPoint{copy.shape.vertex(vi), vertex_id});
    }
    copies_.push_back(std::move(copy));
  }
  shapes_.push_back(std::move(shape));
  return shapes_.back().id;
}

util::Result<std::vector<std::vector<MatchResult>>> ShapeBase::MatchBatch(
    const std::vector<geom::Polyline>& queries, const MatchOptions& options,
    std::vector<MatchStats>* stats) const {
  return core::MatchBatch(*this, queries, options, stats);
}

util::Status ShapeBase::Finalize() {
  if (finalized()) {
    return util::Status::FailedPrecondition("ShapeBase already finalized");
  }
  index_ = options_.index_factory != nullptr ? options_.index_factory()
                                             : MakeSimplexIndex(options_.backend);
  if (index_ == nullptr) {
    return util::Status::InvalidArgument("unknown index backend");
  }
  index_->Build(std::move(pending_points_));
  pending_points_.clear();
  return util::Status::OK();
}

}  // namespace geosir::core
