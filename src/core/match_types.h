#ifndef GEOSIR_CORE_MATCH_TYPES_H_
#define GEOSIR_CORE_MATCH_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/shape.h"
#include "core/similarity.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/deadline.h"
#include "util/status.h"

namespace geosir::util {
class ThreadPool;
}  // namespace geosir::util

namespace geosir::core {

/// Which similarity measure ranks the candidates.
enum class MatchMeasure {
  /// max(h_avg(P, Q), h_avg(Q, P)) with the continuous average (default).
  kContinuousSymmetric,
  /// h_avg(P, Q): continuous average from the database shape to the query.
  kContinuousDirected,
  /// Vertex-based symmetric average.
  kDiscreteSymmetric,
  /// Vertex-based average from the database shape to the query.
  kDiscreteDirected,
};

/// Hard caps on the work one Match call may perform; 0 means unlimited.
/// Budgets are enforced on the single-threaded control path (round entry,
/// the range-search visitor, candidate admission), so a budget-terminated
/// query returns a bit-identical partial result set for every thread
/// count — unlike deadline or cancellation stops, which depend on timing.
/// Exceeding a budget terminates with kResourceExhausted; best-so-far
/// results are still returned (see MatchStats::partial).
struct WorkBudget {
  /// Maximum ε-growth rounds (MatchStats::iterations).
  size_t max_rounds = 0;
  /// Maximum candidate similarity evaluations. Admission stops at the
  /// cap; further qualifying copies count as MatchStats::candidates_skipped.
  size_t max_candidates = 0;
  /// Maximum vertex reports from the range structure
  /// (MatchStats::vertices_reported).
  size_t max_vertex_reports = 0;

  bool Unlimited() const {
    return max_rounds == 0 && max_candidates == 0 && max_vertex_reports == 0;
  }
};

struct MatchOptions {
  /// A copy becomes a candidate when at least (1 - beta) of its vertices
  /// lie inside the current envelope (step 3 of the algorithm).
  double beta = 0.25;
  /// Envelope growth factor per iteration (step 5).
  double growth = 2.0;
  /// Initial envelope width; <= 0 selects the occupancy heuristic
  /// A / (2 p l_Q) of step 1.
  double initial_epsilon = -1.0;
  /// Hard stop; <= 0 selects the paper's bound A / (2 p l_Q) * log^3 n.
  double max_epsilon = -1.0;
  /// Number of best-matching shapes to return (k-best retrieval; the
  /// storage experiments sweep k = 1..10).
  size_t k = 1;
  MatchMeasure measure = MatchMeasure::kContinuousSymmetric;
  SimilarityOptions similarity;
  /// Early-exit confidence factor: the search stops once the k-th best
  /// distance is <= stop_factor * beta * eps (any copy that is not yet a
  /// candidate has > beta of its vertices farther than eps from the
  /// query, so its discrete average exceeds beta * eps). For the
  /// continuous measures this bound is a heuristic; set to 0 to disable
  /// early exit and always run to max_epsilon.
  double stop_factor = 1.0;
  /// Threshold-collection mode (> 0): instead of the k best shapes,
  /// return *every* shape with distance <= collect_threshold — the
  /// shape_similar(Q) set of Section 5. The envelope is grown to at
  /// least collect_threshold / beta (by Markov's inequality a shape with
  /// average distance <= threshold then has >= (1 - beta) of its
  /// vertices inside), early exit is disabled, and `k` is ignored.
  double collect_threshold = -1.0;
  /// Parallelism for candidate scoring (within one Match) and for
  /// MatchBatch (across queries). 1 runs fully serial on the calling
  /// thread; higher values fan work out across `pool` (or the shared
  /// process-wide pool when `pool` is null). Results are bit-identical
  /// for every value — the range-search phase stays single-threaded and
  /// the expensive similarity evaluations are merged deterministically.
  size_t num_threads = 1;
  /// Engine handle: the thread pool to run on. Null selects
  /// util::ThreadPool::Shared() when num_threads > 1. The pool is never
  /// owned; it must outlive the call.
  util::ThreadPool* pool = nullptr;
  /// Wall-clock deadline for the call (default: none). An expired
  /// deadline terminates the search cooperatively: a Match that already
  /// holds candidates returns them ranked with MatchStats::partial set;
  /// one with nothing yet (including a deadline that expired before the
  /// call) returns kDeadlineExceeded. Checked at round, candidate and
  /// (amortized) vertex-report granularity, and inherited by storage
  /// retries underneath the index.
  util::Deadline deadline;
  /// Cooperative cancellation (default: none). Same partial-result
  /// contract as `deadline`, terminating with kCancelled. The token is
  /// not owned and must outlive the call; one token may fan out over many
  /// concurrent queries (MatchBatch cancels them all).
  const util::CancellationToken* cancel_token = nullptr;
  /// Work caps (rounds / candidate evaluations / vertex reports);
  /// defaults unlimited. Deterministic: see WorkBudget.
  WorkBudget budget;
  /// Opt-in per-query timeline (ε-round progression, candidate and
  /// degradation events, termination; see obs/trace.h). The matcher
  /// Start()s it at entry and Finish()es it at exit, so the same instance
  /// can be reused across queries. Not owned; null (the default) costs a
  /// pointer test. Independent of `trace` below Match — that records the
  /// candidate access sequence, this records the timeline. When the
  /// process-wide obs::SlowQueryLog is armed the matcher builds a trace
  /// internally even if this is null, offering it to the log at exit.
  obs::QueryTrace* query_trace = nullptr;
};

/// One retrieved shape.
struct MatchResult {
  ShapeId shape_id = 0;
  /// Distance under the configured measure, for the best copy.
  double distance = 0.0;
  /// Copy index (into ShapeBase::copies()) that achieved it.
  uint32_t copy_index = 0;
};

/// Diagnostics for one query.
struct MatchStats {
  size_t iterations = 0;
  size_t vertices_reported = 0;   // Reported by the range structure.
  size_t vertices_accepted = 0;   // Passed the exact ring test.
  size_t candidates_evaluated = 0;
  /// Similarity-measure components answered by the per-query memo cache
  /// instead of being recomputed (symmetric measures share their directed
  /// halves; repeated Match calls on the same query reuse everything).
  size_t eval_cache_hits = 0;
  double final_epsilon = 0.0;
  double initial_epsilon = 0.0;
  double max_epsilon = 0.0;
  bool stopped_early = false;     // Early-exit bound fired.
  bool exhausted = false;         // Ran to max_epsilon.
  /// Fault-tolerance outcome (external index backends only): the range
  /// structure skipped unreadable subtrees under its degradation policy,
  /// so the result may be missing candidates. A degraded result is still
  /// ordered correctly among the candidates that were seen.
  bool degraded = false;
  size_t skipped_subtrees = 0;
  size_t skipped_leaves = 0;
  /// Query-lifecycle outcome. `partial` is set when the search was
  /// terminated early by a deadline, a cancellation or a work budget but
  /// still returned a (correctly ranked) best-so-far result set;
  /// `termination` then holds the stop reason (kDeadlineExceeded /
  /// kCancelled / kResourceExhausted). When the stop fired before any
  /// candidate was ranked the call returns `termination` as its error
  /// instead, with `partial` false. `rounds_completed` counts rounds that
  /// ran to their merge (vs. `iterations`, which includes an aborted
  /// round); `candidates_skipped` counts copies that met the occupancy
  /// threshold but were never scored because the query was stopping.
  bool partial = false;
  util::Status termination;
  size_t rounds_completed = 0;
  size_t candidates_skipped = 0;
  /// Replicated-serving provenance (set only when the query was served by
  /// a replication follower — see src/replication/). `replica_lsn` is the
  /// exclusive LSN bound the query was pinned to: every mutation with
  /// lsn < replica_lsn is visible, nothing at or above it is (the
  /// snapshot-consistency contract). `replica_lag` is how many records
  /// behind the primary's tail that bound was when the query was
  /// admitted — the staleness the caller actually experienced.
  bool replicated = false;
  uint32_t replica = 0;
  uint64_t replica_lsn = 0;
  uint64_t replica_lag = 0;
};

/// Order in which shape *records* were read, i.e. the sequence of
/// candidate-copy evaluations (vertex membership is answered by the
/// in-memory index; the stored record is only fetched to evaluate the
/// similarity measure). The external-storage experiments (Section 4)
/// replay this sequence against the block store to count I/O. The
/// paper's locality claim — "two shapes which are processed successively
/// are usually similar" — is about exactly this sequence.
using AccessTrace = std::vector<uint32_t>;

}  // namespace geosir::core

#endif  // GEOSIR_CORE_MATCH_TYPES_H_
