#include "core/envelope_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "geom/distance.h"
#include "geom/envelope.h"

namespace geosir::core {

namespace {

using geom::Polyline;

double Log2(double v) { return std::log2(std::max(2.0, v)); }

}  // namespace

EnvelopeMatcher::EnvelopeMatcher(const ShapeBase* base) : base_(base) {
  vertex_epoch_.assign(base_->NumVertices(), 0);
  copy_count_.assign(base_->NumCopies(), 0);
  copy_epoch_.assign(base_->NumCopies(), 0);
  copy_touch_iter_.assign(base_->NumCopies(), 0);
  copy_evaluated_.assign(base_->NumCopies(), 0);
  eval_epoch_.assign(base_->NumCopies(), 0);
}

double EnvelopeMatcher::EvaluateCopy(const NormalizedCopy& copy,
                                     const Polyline& q,
                                     const MatchOptions& options) const {
  switch (options.measure) {
    case MatchMeasure::kContinuousSymmetric:
      return AvgMinDistanceSymmetric(copy.shape, q, options.similarity);
    case MatchMeasure::kContinuousDirected:
      return AvgMinDistance(copy.shape, q, options.similarity);
    case MatchMeasure::kDiscreteSymmetric:
      return std::max(DiscreteAvgMinDistance(copy.shape, q),
                      DiscreteAvgMinDistance(q, copy.shape));
    case MatchMeasure::kDiscreteDirected:
      return DiscreteAvgMinDistance(copy.shape, q);
  }
  return std::numeric_limits<double>::infinity();
}

util::Result<std::vector<MatchResult>> EnvelopeMatcher::Match(
    const Polyline& query, const MatchOptions& options, MatchStats* stats,
    AccessTrace* trace) {
  if (!base_->finalized()) {
    return util::Status::FailedPrecondition("ShapeBase not finalized");
  }
  if (options.beta < 0.0 || options.beta >= 1.0) {
    return util::Status::InvalidArgument("beta must be in [0, 1)");
  }
  if (options.growth <= 1.0) {
    return util::Status::InvalidArgument("growth must exceed 1");
  }
  GEOSIR_ASSIGN_OR_RETURN(NormalizedCopy qnorm, NormalizeQuery(query));
  const Polyline& q = qnorm.shape;

  MatchStats local_stats;
  MatchStats& st = stats != nullptr ? *stats : local_stats;
  st = MatchStats{};

  const double n = static_cast<double>(std::max<size_t>(1, base_->NumVertices()));
  const double p = static_cast<double>(std::max<size_t>(1, base_->NumCopies()));
  const double l_q = std::max(1e-9, q.Perimeter());

  // Step 1: initial envelope width chosen so the expected number of pool
  // vertices inside it is about one shape's worth (area ratio heuristic),
  // eps_1 = A / (2 p l_Q). Step 5's stop bound multiplies by log^3 n.
  const bool collect_mode = options.collect_threshold > 0.0;
  const double eps1 = options.initial_epsilon > 0.0
                          ? options.initial_epsilon
                          : kLuneArea / (2.0 * p * l_q);
  const double log_n = Log2(n);
  double eps_max =
      options.max_epsilon > 0.0
          ? options.max_epsilon
          : std::max(eps1 * log_n * log_n * log_n, eps1 * options.growth);
  if (collect_mode) {
    // Grow far enough that every shape within the threshold has become a
    // candidate (Markov bound; beta = 0 degenerates to "all vertices in").
    const double needed =
        options.collect_threshold / std::max(options.beta, 0.05);
    eps_max = std::max(eps_max, needed);
  }
  st.initial_epsilon = eps1;
  st.max_epsilon = eps_max;

  // Fresh epoch; all per-copy/per-vertex scratch self-invalidates.
  ++epoch_;

  // Snapshot the index's fault counters so this query's degradation (an
  // external backend skipping unreadable subtrees) can be reported in the
  // stats without charging it for earlier queries.
  const uint64_t skipped_subtrees_before = base_->index().stats().subtrees_skipped;
  const uint64_t skipped_leaves_before = base_->index().stats().leaves_skipped;

  // Best result per shape.
  std::unordered_map<ShapeId, MatchResult> best_per_shape;
  // Distances of evaluated copies' shapes, for the k-th best early exit.
  std::vector<double> best_distances;

  const auto kth_best = [&]() {
    if (best_distances.size() < options.k) {
      return std::numeric_limits<double>::infinity();
    }
    return best_distances[options.k - 1];
  };

  double eps_prev = 0.0;
  double eps = eps1;
  std::vector<uint32_t> touched;  // Copies touched in this iteration.

  while (true) {
    ++st.iterations;
    touched.clear();

    const geom::EnvelopeRingCover cover =
        geom::BuildEnvelopeRingCover(q, eps_prev, eps);
    for (const geom::Triangle& tri : cover.triangles) {
      base_->index().ReportInTriangle(
          tri, [&](const rangesearch::IndexedPoint& ip) {
            ++st.vertices_reported;
            if (vertex_epoch_[ip.id] == epoch_) return;  // Deduplicated.
            // Exact membership: the cover is a superset of the ring.
            const double d = geom::DistancePointPolyline(ip.p, q);
            if (d > eps) return;
            vertex_epoch_[ip.id] = epoch_;
            ++st.vertices_accepted;
            const uint32_t copy_idx = base_->CopyOfVertex(ip.id);
            if (copy_epoch_[copy_idx] != epoch_) {
              copy_epoch_[copy_idx] = epoch_;
              copy_count_[copy_idx] = 0;
              copy_evaluated_[copy_idx] = 0;
            }
            if (copy_touch_iter_[copy_idx] != st.iterations ||
                copy_count_[copy_idx] == 0) {
              copy_touch_iter_[copy_idx] = static_cast<uint32_t>(st.iterations);
              touched.push_back(copy_idx);
            }
            ++copy_count_[copy_idx];
          });
      // A fail-fast external backend records the I/O error it hit (the
      // reporting interface itself is void); surface it instead of
      // returning a silently incomplete match.
      GEOSIR_RETURN_IF_ERROR(base_->index().TakeLastError());
    }

    // Steps 3-4: process copies that reached the (1 - beta) occupancy
    // threshold and have not been evaluated yet.
    for (uint32_t copy_idx : touched) {
      if (copy_evaluated_[copy_idx]) continue;
      const NormalizedCopy& copy = base_->copy(copy_idx);
      const size_t num_vertices = copy.shape.size();
      const size_t needed = static_cast<size_t>(
          std::ceil((1.0 - options.beta) * static_cast<double>(num_vertices)));
      // +2: the copy's axis vertices sit at (0,0)/(1,0), on the
      // normalized query's boundary, hence inside every envelope. They
      // are not indexed (see ShapeBase::AddShape), so credit them here.
      if (copy_count_[copy_idx] + 2 < std::max<size_t>(1, needed)) continue;
      copy_evaluated_[copy_idx] = 1;
      ++st.candidates_evaluated;
      if (trace != nullptr) trace->push_back(copy_idx);

      const double distance = EvaluateCopy(copy, q, options);
      auto [it, inserted] = best_per_shape.try_emplace(
          copy.shape_id, MatchResult{copy.shape_id, distance, copy_idx});
      if (!inserted && distance < it->second.distance) {
        it->second.distance = distance;
        it->second.copy_index = copy_idx;
      }
    }

    // Refresh the sorted distance list (small: one entry per shape seen).
    best_distances.clear();
    best_distances.reserve(best_per_shape.size());
    for (const auto& [id, result] : best_per_shape) {
      best_distances.push_back(result.distance);
    }
    std::sort(best_distances.begin(), best_distances.end());

    // Early exit: every unevaluated copy still has > beta of its vertices
    // outside the eps-envelope, so its (discrete, directed) average
    // distance exceeds beta * eps; once the k-th best is below that, no
    // unseen shape can displace it.
    st.final_epsilon = eps;
    if (!collect_mode && options.stop_factor > 0.0 &&
        kth_best() <= options.stop_factor * options.beta * eps) {
      st.stopped_early = true;
      break;
    }
    if (eps >= eps_max) {
      st.exhausted = true;
      break;
    }
    eps_prev = eps;
    eps = std::min(eps * options.growth, eps_max);
  }

  st.skipped_subtrees = static_cast<size_t>(
      base_->index().stats().subtrees_skipped - skipped_subtrees_before);
  st.skipped_leaves = static_cast<size_t>(
      base_->index().stats().leaves_skipped - skipped_leaves_before);
  st.degraded = st.skipped_subtrees > 0;

  std::vector<MatchResult> results;
  results.reserve(best_per_shape.size());
  for (const auto& [id, result] : best_per_shape) {
    if (collect_mode && result.distance > options.collect_threshold) continue;
    results.push_back(result);
  }
  std::sort(results.begin(), results.end(),
            [](const MatchResult& a, const MatchResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.shape_id < b.shape_id;
            });
  if (!collect_mode && results.size() > options.k) results.resize(options.k);
  return results;
}

}  // namespace geosir::core
