#include "core/envelope_matcher.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string_view>
#include <unordered_map>

#include "core/candidate_source.h"
#include "geom/distance.h"
#include "geom/envelope.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "util/query_control.h"
#include "util/thread_pool.h"

namespace geosir::core {

namespace {

using geom::Polyline;

double Log2(double v) { return std::log2(std::max(2.0, v)); }

/// Process-wide matcher metric families, resolved once. Per-query cost is
/// one relaxed add per counter at Match exit — never per vertex.
struct MatcherMetrics {
  obs::Counter* queries;
  obs::Counter* rounds;
  obs::Counter* vertices_reported;
  obs::Counter* vertices_accepted;
  obs::Counter* candidates;
  obs::Counter* candidates_skipped;
  obs::Counter* eval_cache_hits;
  obs::Counter* partials;
  obs::Counter* degraded;
  obs::Counter* term_early_exit;
  obs::Counter* term_exhausted;
  obs::Counter* term_deadline;
  obs::Counter* term_cancelled;
  obs::Counter* term_budget;
  obs::Counter* term_error;
  obs::Histogram* latency;

  static const MatcherMetrics& Get() {
    static const MatcherMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new MatcherMetrics();
      m->queries = r.GetCounter("geosir_matcher_queries_total",
                                "Match calls finished (any outcome)");
      m->rounds = r.GetCounter("geosir_matcher_rounds_total",
                               "Envelope-growth rounds started");
      m->vertices_reported =
          r.GetCounter("geosir_matcher_vertices_reported_total",
                       "Vertices reported by the range structure");
      m->vertices_accepted =
          r.GetCounter("geosir_matcher_vertices_accepted_total",
                       "Reported vertices that passed the exact ring test");
      m->candidates = r.GetCounter("geosir_matcher_candidates_total",
                                   "Candidate copies scored");
      m->candidates_skipped =
          r.GetCounter("geosir_matcher_candidates_skipped_total",
                       "Qualifying copies never scored (query was stopping)");
      m->eval_cache_hits =
          r.GetCounter("geosir_matcher_eval_cache_hits_total",
                       "Similarity components served from the per-query memo");
      m->partials = r.GetCounter("geosir_matcher_partials_total",
                                 "Queries returning best-so-far partials");
      m->degraded = r.GetCounter(
          "geosir_matcher_degraded_total",
          "Queries whose index skipped unreadable subtrees");
      const char* term_name = "geosir_matcher_terminations_total";
      const char* term_help = "Match terminations by reason";
      m->term_early_exit =
          r.GetCounter(term_name, term_help, "reason=\"early_exit\"");
      m->term_exhausted =
          r.GetCounter(term_name, term_help, "reason=\"exhausted\"");
      m->term_deadline =
          r.GetCounter(term_name, term_help, "reason=\"deadline\"");
      m->term_cancelled =
          r.GetCounter(term_name, term_help, "reason=\"cancelled\"");
      m->term_budget = r.GetCounter(term_name, term_help, "reason=\"budget\"");
      m->term_error = r.GetCounter(term_name, term_help, "reason=\"error\"");
      m->latency = r.GetHistogram("geosir_matcher_latency_seconds",
                                  "End-to-end Match latency",
                                  obs::LatencyBucketsSeconds());
      return m;
    }();
    return *metrics;
  }

  obs::Counter* TerminationCounter(const char* reason) const {
    if (std::string_view(reason) == "early_exit") return term_early_exit;
    if (std::string_view(reason) == "exhausted") return term_exhausted;
    if (std::string_view(reason) == "deadline") return term_deadline;
    if (std::string_view(reason) == "cancelled") return term_cancelled;
    if (std::string_view(reason) == "budget") return term_budget;
    return term_error;
  }
};

/// Metric/trace label for a lifecycle stop status.
const char* StopReason(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kDeadlineExceeded:
      return "deadline";
    case util::StatusCode::kCancelled:
      return "cancelled";
    case util::StatusCode::kResourceExhausted:
      return "budget";
    default:
      return "error";
  }
}

/// Pool to run on, or null for fully serial execution.
util::ThreadPool* ResolvePool(const MatchOptions& options) {
  if (options.num_threads <= 1) return nullptr;
  return options.pool != nullptr ? options.pool : &util::ThreadPool::Shared();
}

/// The directed components options.measure is composed from (one or two).
size_t ComponentsFor(MatchMeasure measure, uint32_t out[2]) {
  switch (measure) {
    case MatchMeasure::kContinuousSymmetric:
      out[0] = 0;  // kContinuousToQuery
      out[1] = 1;  // kContinuousFromQuery
      return 2;
    case MatchMeasure::kContinuousDirected:
      out[0] = 0;
      return 1;
    case MatchMeasure::kDiscreteSymmetric:
      out[0] = 2;  // kDiscreteToQuery
      out[1] = 3;  // kDiscreteFromQuery
      return 2;
    case MatchMeasure::kDiscreteDirected:
      out[0] = 2;
      return 1;
  }
  return 0;
}

}  // namespace

EnvelopeMatcher::EnvelopeMatcher(const ShapeBase* base) : base_(base) {
  vertex_epoch_.assign(base_->NumVertices(), 0);
  copy_count_.assign(base_->NumCopies(), 0);
  copy_epoch_.assign(base_->NumCopies(), 0);
  copy_touch_iter_.assign(base_->NumCopies(), 0);
  copy_evaluated_.assign(base_->NumCopies(), 0);
}

void EnvelopeMatcher::PrepareQueryCache(const Polyline& q,
                                        const MatchOptions& options) {
  const bool want_grid =
      q.NumEdges() >= options.similarity.grid_min_edges && q.NumEdges() > 0;
  const bool same_query =
      cache_valid_ && cache_query_.closed() == q.closed() &&
      cache_query_.vertices() == q.vertices() &&
      cache_quadrature_tolerance_ == options.similarity.quadrature_tolerance &&
      cache_max_depth_ == options.similarity.max_depth &&
      (query_grid_ != nullptr) == want_grid &&
      (query_soa_ != nullptr) == !want_grid;
  if (same_query) return;
  eval_cache_.clear();
  query_grid_ = want_grid ? std::make_unique<geom::EdgeGrid>(q) : nullptr;
  // Small queries skip the grid; the SoA store still serves every
  // *-ToQuery distance through the batch kernel.
  query_soa_ = want_grid ? nullptr : std::make_unique<geom::EdgeSoA>(q);
  cache_query_ = q;
  cache_quadrature_tolerance_ = options.similarity.quadrature_tolerance;
  cache_max_depth_ = options.similarity.max_depth;
  cache_valid_ = true;
}

double EnvelopeMatcher::ComputeComponent(uint32_t copy_idx,
                                         EvalComponent component,
                                         const Polyline& q,
                                         const MatchOptions& options) const {
  const NormalizedCopy& copy = base_->copy(copy_idx);
  switch (component) {
    case kContinuousToQuery:
      return query_grid_ != nullptr
                 ? AvgMinDistance(copy.shape, *query_grid_, options.similarity)
                 : AvgMinDistance(copy.shape, *query_soa_, options.similarity);
    case kContinuousFromQuery:
      return AvgMinDistance(q, copy.shape, options.similarity);
    case kDiscreteToQuery:
      return query_grid_ != nullptr
                 ? DiscreteAvgMinDistance(copy.shape, *query_grid_)
                 : DiscreteAvgMinDistance(copy.shape, *query_soa_);
    case kDiscreteFromQuery:
      return DiscreteAvgMinDistance(q, copy.shape);
  }
  return std::numeric_limits<double>::infinity();
}

void EnvelopeMatcher::EvaluateCandidates(const std::vector<uint32_t>& candidates,
                                         const Polyline& q,
                                         const MatchOptions& options,
                                         std::vector<double>* distances,
                                         MatchStats* stats) {
  uint32_t components[2];
  const size_t num_components = ComponentsFor(options.measure, components);
  const size_t n = candidates.size();
  // component_values[i * 2 + j] holds component j of candidate i.
  pending_distances_.assign(n * 2, 0.0);
  missing_keys_.clear();
  missing_slots_.clear();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < num_components; ++j) {
      const uint64_t key =
          static_cast<uint64_t>(candidates[i]) * 4 + components[j];
      const auto it = eval_cache_.find(key);
      if (it != eval_cache_.end()) {
        pending_distances_[i * 2 + j] = it->second;
        ++stats->eval_cache_hits;
      } else {
        missing_keys_.push_back(key);
        missing_slots_.push_back(static_cast<uint32_t>(i * 2 + j));
      }
    }
  }

  // Fan the uncached similarity integrals out across the pool. Each item
  // writes only its own slot; the cache is read-only during the region.
  missing_values_.assign(missing_keys_.size(), 0.0);
  const auto score_one = [&](size_t /*worker*/, size_t w) {
    const uint64_t key = missing_keys_[w];
    missing_values_[w] =
        ComputeComponent(static_cast<uint32_t>(key / 4),
                         static_cast<EvalComponent>(key % 4), q, options);
  };
  util::ThreadPool* pool = ResolvePool(options);
  if (pool != nullptr && missing_keys_.size() > 1) {
    pool->ParallelFor(missing_keys_.size(), options.num_threads, score_one);
  } else {
    for (size_t w = 0; w < missing_keys_.size(); ++w) score_one(0, w);
  }

  // Merge barrier: fold results into the memo and the output in candidate
  // order — deterministic for every thread count.
  for (size_t w = 0; w < missing_keys_.size(); ++w) {
    eval_cache_.emplace(missing_keys_[w], missing_values_[w]);
    pending_distances_[missing_slots_[w]] = missing_values_[w];
  }
  distances->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*distances)[i] =
        num_components == 2
            ? std::max(pending_distances_[i * 2], pending_distances_[i * 2 + 1])
            : pending_distances_[i * 2];
  }
}

util::Result<std::vector<MatchResult>> EnvelopeMatcher::Match(
    const Polyline& query, const MatchOptions& options, MatchStats* stats,
    AccessTrace* trace) {
  if (!base_->finalized()) {
    return util::Status::FailedPrecondition("ShapeBase not finalized");
  }
  // Negated comparisons so a NaN parameter fails validation instead of
  // slipping past it (NaN growth would otherwise loop forever: eps never
  // reaches eps_max).
  if (!(options.beta >= 0.0 && options.beta < 1.0)) {
    return util::Status::InvalidArgument("beta must be in [0, 1)");
  }
  if (!(options.growth > 1.0)) {
    return util::Status::InvalidArgument("growth must exceed 1");
  }
  if (!std::isfinite(options.initial_epsilon) ||
      !std::isfinite(options.max_epsilon) ||
      !std::isfinite(options.stop_factor) ||
      !std::isfinite(options.collect_threshold)) {
    return util::Status::InvalidArgument(
        "epsilon/stop/threshold options must be finite");
  }

  MatchStats local_stats;
  MatchStats& st = stats != nullptr ? *stats : local_stats;
  st = MatchStats{};

  // Observability: registry counters are flushed once at exit (relaxed
  // adds, armed in production); the per-round timeline is recorded only
  // when a trace sink is attached or the slow-query log is armed.
  const MatcherMetrics& metrics = MatcherMetrics::Get();
  const auto obs_start = std::chrono::steady_clock::now();
  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Default();
  obs::QueryTrace slow_trace;
  obs::QueryTrace* qtrace = options.query_trace;
  if (qtrace == nullptr && slow_log.armed()) qtrace = &slow_trace;
  if (qtrace != nullptr) {
    qtrace->Start("match n=" + std::to_string(query.size()) +
                  " k=" + std::to_string(options.k));
  }
  const auto finish_obs = [&](const char* reason) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      obs_start)
            .count();
    metrics.queries->Inc();
    metrics.latency->Observe(seconds);
    metrics.rounds->Inc(st.iterations);
    metrics.vertices_reported->Inc(st.vertices_reported);
    metrics.vertices_accepted->Inc(st.vertices_accepted);
    metrics.candidates->Inc(st.candidates_evaluated);
    metrics.candidates_skipped->Inc(st.candidates_skipped);
    metrics.eval_cache_hits->Inc(st.eval_cache_hits);
    if (st.partial) metrics.partials->Inc();
    if (st.degraded) metrics.degraded->Inc();
    metrics.TerminationCounter(reason)->Inc();
    if (qtrace != nullptr) {
      if (st.degraded) {
        qtrace->AddEvent("degraded",
                         std::to_string(st.skipped_subtrees) +
                             " subtrees skipped (" +
                             std::to_string(st.skipped_leaves) + " leaves)");
      }
      qtrace->Finish(reason, st.partial, st.degraded);
      if (slow_log.armed()) slow_log.Offer(*qtrace);
    }
  };

  // Lifecycle entry check: a query that arrives already expired or
  // cancelled performs no work at all — not even query normalization.
  const util::QueryControl control{options.deadline, options.cancel_token};
  {
    util::Status entry = control.Check();
    if (!entry.ok()) {
      st.termination = entry;
      finish_obs(StopReason(entry));
      return entry;
    }
  }
  // Bind the control for layers below that cannot take per-call
  // parameters: the SimplexIndex traversal (external backends poll it per
  // node) and the storage retry loop (no retrying past the deadline).
  // The range-search phase runs on this thread, so a thread-local
  // binding reaches exactly this query's index work.
  const util::ScopedQueryControl scoped(&control);

  GEOSIR_ASSIGN_OR_RETURN(NormalizedCopy qnorm, NormalizeQuery(query));
  const Polyline& q = qnorm.shape;

  PrepareQueryCache(q, options);

  const double n = static_cast<double>(std::max<size_t>(1, base_->NumVertices()));
  const double p = static_cast<double>(std::max<size_t>(1, base_->NumCopies()));
  const double l_q = std::max(1e-9, q.Perimeter());

  // Step 1: initial envelope width chosen so the expected number of pool
  // vertices inside it is about one shape's worth (area ratio heuristic),
  // eps_1 = A / (2 p l_Q). Step 5's stop bound multiplies by log^3 n.
  const bool collect_mode = options.collect_threshold > 0.0;
  const double eps1 = options.initial_epsilon > 0.0
                          ? options.initial_epsilon
                          : kLuneArea / (2.0 * p * l_q);
  const double log_n = Log2(n);
  double eps_max =
      options.max_epsilon > 0.0
          ? options.max_epsilon
          : std::max(eps1 * log_n * log_n * log_n, eps1 * options.growth);
  if (collect_mode) {
    // Grow far enough that every shape within the threshold has become a
    // candidate (Markov bound; beta = 0 degenerates to "all vertices in").
    const double needed =
        options.collect_threshold / std::max(options.beta, 0.05);
    eps_max = std::max(eps_max, needed);
  }
  st.initial_epsilon = eps1;
  st.max_epsilon = eps_max;

  // Fresh epoch; all per-copy/per-vertex scratch self-invalidates.
  ++epoch_;

  // Snapshot the index's fault counters so this query's degradation (an
  // external backend skipping unreadable subtrees) can be reported in the
  // stats without charging it for earlier queries.
  const uint64_t skipped_subtrees_before = base_->index().stats().subtrees_skipped;
  const uint64_t skipped_leaves_before = base_->index().stats().leaves_skipped;

  // Best result per shape.
  std::unordered_map<ShapeId, MatchResult> best_per_shape;
  // Distances of evaluated copies' shapes, for the k-th best early exit.
  std::vector<double> best_distances;

  const auto kth_best = [&]() {
    if (best_distances.size() < options.k) {
      return std::numeric_limits<double>::infinity();
    }
    return best_distances[options.k - 1];
  };

  // Exact membership distance to the (normalized) query; the prebuilt
  // edge grid and the flat SoA store return the same value bit for bit
  // (both run the canonical batch kernel arithmetic).
  const auto query_distance = [&](geom::Point pt) {
    return query_grid_ != nullptr ? query_grid_->Distance(pt)
                                  : query_soa_->MinDistance(pt);
  };

  double eps_prev = 0.0;
  double eps = eps1;
  std::vector<uint32_t> touched;  // Copies touched in this iteration.
  std::vector<double> candidate_distances;

  // Lifecycle stop state. `hard_stop` (deadline / cancel) abandons the
  // current round without scoring its candidates — a query on its way out
  // must not start new similarity integrals. `budget_stop`
  // (kResourceExhausted) finishes the round's already-admitted work first:
  // budgets are deterministic cutoffs, not emergencies. Both end the
  // search with best-so-far results.
  util::Status hard_stop;
  util::Status budget_stop;
  const WorkBudget& budget = options.budget;

  // Per-round trace baseline: deltas of the stats counters between round
  // entries become one RoundTrace each. Only maintained when tracing.
  struct RoundBaseline {
    bool active = false;
    size_t round = 0;
    double epsilon = 0.0;
    double at_ms = 0.0;
    size_t vertices_reported = 0;
    size_t vertices_accepted = 0;
    size_t candidates_evaluated = 0;
    size_t candidates_skipped = 0;
    size_t eval_cache_hits = 0;
    uint64_t nodes_visited = 0;
    uint64_t subtrees_skipped = 0;
  } round_base;
  const auto flush_round_trace = [&]() {
    if (qtrace == nullptr || !round_base.active) return;
    obs::RoundTrace round;
    round.round = round_base.round;
    round.epsilon = round_base.epsilon;
    round.elapsed_ms = qtrace->ElapsedMs() - round_base.at_ms;
    round.vertices_reported = st.vertices_reported - round_base.vertices_reported;
    round.vertices_accepted = st.vertices_accepted - round_base.vertices_accepted;
    round.candidates_admitted =
        st.candidates_evaluated - round_base.candidates_evaluated;
    round.candidates_skipped =
        st.candidates_skipped - round_base.candidates_skipped;
    round.eval_cache_hits = st.eval_cache_hits - round_base.eval_cache_hits;
    const rangesearch::QueryStats& index_stats = base_->index().stats();
    round.index_nodes_visited =
        index_stats.nodes_visited - round_base.nodes_visited;
    round.subtrees_skipped =
        index_stats.subtrees_skipped - round_base.subtrees_skipped;
    qtrace->AddRound(round);
    round_base.active = false;
  };

  while (true) {
    flush_round_trace();
    // Round-entry checkpoint (also the per-round budget gate).
    if (hard_stop.ok()) hard_stop = control.Check();
    if (hard_stop.ok() && budget_stop.ok() && budget.max_rounds > 0 &&
        st.iterations >= budget.max_rounds) {
      budget_stop = util::Status::ResourceExhausted("round budget exhausted");
    }
    if (!hard_stop.ok() || !budget_stop.ok()) break;
    ++st.iterations;
    touched.clear();
    if (qtrace != nullptr) {
      const rangesearch::QueryStats& index_stats = base_->index().stats();
      round_base = RoundBaseline{
          true,
          st.iterations,
          eps,
          qtrace->ElapsedMs(),
          st.vertices_reported,
          st.vertices_accepted,
          st.candidates_evaluated,
          st.candidates_skipped,
          st.eval_cache_hits,
          index_stats.nodes_visited,
          index_stats.subtrees_skipped};
    }

    const geom::EnvelopeRingCover cover =
        geom::BuildEnvelopeRingCover(q, eps_prev, eps);
    for (const geom::Triangle& tri : cover.triangles) {
      base_->index().ReportInTriangle(
          tri, [&](const rangesearch::IndexedPoint& ip) {
            if (!hard_stop.ok()) return;  // Drain the traversal cheaply.
            if (budget.max_vertex_reports > 0 &&
                st.vertices_reported >= budget.max_vertex_reports) {
              if (budget_stop.ok()) {
                budget_stop = util::Status::ResourceExhausted(
                    "vertex-report budget exhausted");
              }
              return;
            }
            ++st.vertices_reported;
            // Amortized deadline/cancel poll: one Check per 1024 reports
            // keeps the overhead unmeasurable on the hot path.
            if ((st.vertices_reported & 1023u) == 0) {
              hard_stop = control.Check();
              if (!hard_stop.ok()) return;
            }
            if (vertex_epoch_[ip.id] == epoch_) return;  // Deduplicated.
            // Exact membership: the cover is a superset of the ring.
            const double d = query_distance(ip.p);
            if (d > eps) return;
            vertex_epoch_[ip.id] = epoch_;
            ++st.vertices_accepted;
            const uint32_t copy_idx = base_->CopyOfVertex(ip.id);
            if (copy_epoch_[copy_idx] != epoch_) {
              copy_epoch_[copy_idx] = epoch_;
              copy_count_[copy_idx] = 0;
              copy_evaluated_[copy_idx] = 0;
            }
            if (copy_touch_iter_[copy_idx] != st.iterations ||
                copy_count_[copy_idx] == 0) {
              copy_touch_iter_[copy_idx] = static_cast<uint32_t>(st.iterations);
              touched.push_back(copy_idx);
            }
            ++copy_count_[copy_idx];
          });
      // A fail-fast external backend records the I/O error it hit (the
      // reporting interface itself is void); surface it instead of
      // returning a silently incomplete match. An external backend may
      // also have observed the thread-local lifecycle control and aborted
      // its traversal — that is a stop, not a malfunction.
      {
        util::Status index_status = base_->index().TakeLastError();
        if (!index_status.ok()) {
          if (util::IsLifecycleStop(index_status.code())) {
            if (hard_stop.ok()) hard_stop = index_status;
          } else {
            flush_round_trace();
            finish_obs("error");
            return index_status;
          }
        }
      }
      if (!hard_stop.ok() || !budget_stop.ok()) break;
    }

    // Step 3: collect copies that reached the (1 - beta) occupancy
    // threshold and have not been evaluated yet. When the query is
    // stopping, qualifying copies are counted as skipped instead of
    // admitted — under a candidate budget this cutoff is deterministic
    // (the range-search phase is single-threaded, so `touched` has the
    // same order for every thread count).
    pending_eval_.clear();
    for (uint32_t copy_idx : touched) {
      if (copy_evaluated_[copy_idx]) continue;
      const NormalizedCopy& copy = base_->copy(copy_idx);
      const size_t num_vertices = copy.shape.size();
      const size_t needed = static_cast<size_t>(
          std::ceil((1.0 - options.beta) * static_cast<double>(num_vertices)));
      // +2: the copy's axis vertices sit at (0,0)/(1,0), on the
      // normalized query's boundary, hence inside every envelope. They
      // are not indexed (see ShapeBase::AddShape), so credit them here.
      if (copy_count_[copy_idx] + 2 < std::max<size_t>(1, needed)) continue;
      if (!hard_stop.ok()) {
        ++st.candidates_skipped;
        continue;
      }
      if (budget.max_candidates > 0 &&
          st.candidates_evaluated >= budget.max_candidates) {
        if (budget_stop.ok()) {
          budget_stop =
              util::Status::ResourceExhausted("candidate budget exhausted");
        }
        ++st.candidates_skipped;
        continue;
      }
      copy_evaluated_[copy_idx] = 1;
      ++st.candidates_evaluated;
      if (trace != nullptr) trace->push_back(copy_idx);
      pending_eval_.push_back(copy_idx);
    }
    if (!hard_stop.ok()) break;  // Nothing admitted; abandon the round.

    // Step 4: score this round's candidate set — the expensive similarity
    // integrals fan out across the pool; the merge below runs on this
    // thread in candidate order, so ranking is deterministic.
    EvaluateCandidates(pending_eval_, q, options, &candidate_distances, &st);
    for (size_t i = 0; i < pending_eval_.size(); ++i) {
      const uint32_t copy_idx = pending_eval_[i];
      const NormalizedCopy& copy = base_->copy(copy_idx);
      const double distance = candidate_distances[i];
      auto [it, inserted] = best_per_shape.try_emplace(
          copy.shape_id, MatchResult{copy.shape_id, distance, copy_idx});
      if (!inserted && distance < it->second.distance) {
        it->second.distance = distance;
        it->second.copy_index = copy_idx;
      }
    }

    // Refresh the sorted distance list (small: one entry per shape seen).
    best_distances.clear();
    best_distances.reserve(best_per_shape.size());
    for (const auto& [id, result] : best_per_shape) {
      best_distances.push_back(result.distance);
    }
    std::sort(best_distances.begin(), best_distances.end());
    ++st.rounds_completed;

    // Early exit: every unevaluated copy still has > beta of its vertices
    // outside the eps-envelope, so its (discrete, directed) average
    // distance exceeds beta * eps; once the k-th best is below that, no
    // unseen shape can displace it.
    st.final_epsilon = eps;
    if (!collect_mode && options.stop_factor > 0.0 &&
        kth_best() <= options.stop_factor * options.beta * eps) {
      st.stopped_early = true;
      budget_stop = util::Status::OK();  // Finished naturally this round.
      break;
    }
    if (eps >= eps_max) {
      st.exhausted = true;
      budget_stop = util::Status::OK();
      break;
    }
    if (!budget_stop.ok()) break;
    eps_prev = eps;
    eps = std::min(eps * options.growth, eps_max);
  }

  flush_round_trace();
  st.skipped_subtrees = static_cast<size_t>(
      base_->index().stats().subtrees_skipped - skipped_subtrees_before);
  st.skipped_leaves = static_cast<size_t>(
      base_->index().stats().leaves_skipped - skipped_leaves_before);
  st.degraded = st.skipped_subtrees > 0;

  std::vector<MatchResult> results;
  results.reserve(best_per_shape.size());
  for (const auto& [id, result] : best_per_shape) {
    if (collect_mode && result.distance > options.collect_threshold) continue;
    results.push_back(result);
  }
  std::sort(results.begin(), results.end(),
            [](const MatchResult& a, const MatchResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.shape_id < b.shape_id;
            });
  if (!collect_mode && results.size() > options.k) results.resize(options.k);

  // Partial-result contract: a lifecycle stop with ranked candidates in
  // hand returns them as an OK partial result (the ranking among scored
  // candidates is exact); a stop before anything was ranked surfaces the
  // stop reason as the call's error. Either way `termination` records it.
  const util::Status stop = !hard_stop.ok() ? hard_stop : budget_stop;
  if (!stop.ok()) {
    st.termination = stop;
    if (results.empty()) {
      finish_obs(StopReason(stop));
      return stop;
    }
    st.partial = true;
    finish_obs(StopReason(stop));
  } else {
    finish_obs(st.stopped_early ? "early_exit" : "exhausted");
  }
  return results;
}

namespace {

/// Tiered-retrieval metric families (DESIGN.md section 14.4): queries
/// that went through a CandidateSource pre-filter instead of envelope
/// growth. `empty` is the recall proxy an operator watches: prefiltered
/// queries that verified nothing at all trend with pre-filter misses.
struct PrefilterMetrics {
  obs::Counter* queries;
  obs::Counter* candidates;
  obs::Counter* verified;
  obs::Counter* empty;

  static const PrefilterMetrics& Get() {
    static const PrefilterMetrics* metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Default();
      auto* m = new PrefilterMetrics();
      m->queries = r.GetCounter("geosir_matcher_prefilter_queries_total",
                                "MatchCandidates calls finished");
      m->candidates =
          r.GetCounter("geosir_matcher_prefilter_candidates_total",
                       "Candidates emitted by the sources");
      m->verified = r.GetCounter("geosir_matcher_prefilter_verified_total",
                                 "Candidates exactly scored");
      m->empty = r.GetCounter(
          "geosir_matcher_prefilter_empty_total",
          "Prefiltered queries returning no results (recall proxy)");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

util::Result<std::vector<MatchResult>> EnvelopeMatcher::MatchCandidates(
    const Polyline& query, CandidateSource* source, const MatchOptions& options,
    MatchStats* stats, AccessTrace* trace) {
  if (!base_->finalized()) {
    return util::Status::FailedPrecondition("ShapeBase not finalized");
  }
  if (source == nullptr) {
    return util::Status::InvalidArgument("MatchCandidates requires a source");
  }
  if (!std::isfinite(options.collect_threshold)) {
    return util::Status::InvalidArgument(
        "epsilon/stop/threshold options must be finite");
  }

  MatchStats local_stats;
  MatchStats& st = stats != nullptr ? *stats : local_stats;
  st = MatchStats{};

  const MatcherMetrics& metrics = MatcherMetrics::Get();
  const PrefilterMetrics& prefilter = PrefilterMetrics::Get();
  const auto obs_start = std::chrono::steady_clock::now();
  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Default();
  obs::QueryTrace slow_trace;
  obs::QueryTrace* qtrace = options.query_trace;
  if (qtrace == nullptr && slow_log.armed()) qtrace = &slow_trace;
  if (qtrace != nullptr) {
    qtrace->Start(std::string("match_candidates src=") + source->name() +
                  " n=" + std::to_string(query.size()) +
                  " k=" + std::to_string(options.k));
  }
  size_t candidates_emitted = 0;
  bool any_result = false;
  const auto finish_obs = [&](const char* reason) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      obs_start)
            .count();
    metrics.queries->Inc();
    metrics.latency->Observe(seconds);
    metrics.candidates->Inc(st.candidates_evaluated);
    metrics.candidates_skipped->Inc(st.candidates_skipped);
    metrics.eval_cache_hits->Inc(st.eval_cache_hits);
    if (st.partial) metrics.partials->Inc();
    metrics.TerminationCounter(reason)->Inc();
    prefilter.queries->Inc();
    prefilter.candidates->Inc(candidates_emitted);
    prefilter.verified->Inc(st.candidates_evaluated);
    if (!any_result) prefilter.empty->Inc();
    if (qtrace != nullptr) {
      qtrace->Finish(reason, st.partial, st.degraded);
      if (slow_log.armed()) slow_log.Offer(*qtrace);
    }
  };

  // Lifecycle entry check: same zero-work contract as Match.
  const util::QueryControl control{options.deadline, options.cancel_token};
  {
    util::Status entry = control.Check();
    if (!entry.ok()) {
      st.termination = entry;
      finish_obs(StopReason(entry));
      return entry;
    }
  }
  const util::ScopedQueryControl scoped(&control);

  GEOSIR_ASSIGN_OR_RETURN(NormalizedCopy qnorm, NormalizeQuery(query));
  const Polyline& q = qnorm.shape;
  PrepareQueryCache(q, options);

  // Tier 1: candidate generation. The candidate budget is enforced here,
  // at the source, so the truncation is deterministic (the source's
  // preference order does not depend on timing or thread count).
  CandidateSourceStats gen_stats;
  std::vector<uint32_t> candidates;
  util::Status generate = source->Generate(
      q, options.budget.max_candidates, options, &candidates, &gen_stats);
  candidates_emitted = candidates.size();
  if (qtrace != nullptr) {
    qtrace->AddEvent("candidates",
                     std::string(source->name()) + " emitted " +
                         std::to_string(candidates.size()) +
                         (gen_stats.truncated ? " (truncated)" : ""));
  }
  if (!generate.ok()) {
    if (!util::IsLifecycleStop(generate.code())) {
      finish_obs("error");
      return generate;
    }
    // A query already on its way out must not start similarity
    // integrals: drop the generated prefix unscored, per the
    // nothing-ranked-yet contract.
    st.candidates_skipped = candidates.size();
    st.termination = generate;
    finish_obs(StopReason(generate));
    return generate;
  }
  util::Status budget_stop;
  if (gen_stats.truncated) {
    budget_stop = util::Status::ResourceExhausted("candidate budget exhausted");
  }

  // Tier 2: exact verification under options.measure, in source
  // preference order, chunked so deadline / cancel are observed between
  // chunks without a per-candidate poll.
  constexpr size_t kChunk = 64;
  std::unordered_map<ShapeId, MatchResult> best_per_shape;
  std::vector<uint32_t> chunk;
  std::vector<double> chunk_distances;
  util::Status hard_stop;
  for (size_t begin = 0; begin < candidates.size(); begin += kChunk) {
    hard_stop = control.Check();
    if (!hard_stop.ok()) {
      st.candidates_skipped += candidates.size() - begin;
      break;
    }
    const size_t end = std::min(candidates.size(), begin + kChunk);
    chunk.assign(candidates.begin() + static_cast<ptrdiff_t>(begin),
                 candidates.begin() + static_cast<ptrdiff_t>(end));
    EvaluateCandidates(chunk, q, options, &chunk_distances, &st);
    for (size_t i = 0; i < chunk.size(); ++i) {
      const uint32_t copy_idx = chunk[i];
      ++st.candidates_evaluated;
      if (trace != nullptr) trace->push_back(copy_idx);
      const NormalizedCopy& copy = base_->copy(copy_idx);
      const double distance = chunk_distances[i];
      auto [it, inserted] = best_per_shape.try_emplace(
          copy.shape_id, MatchResult{copy.shape_id, distance, copy_idx});
      if (!inserted && distance < it->second.distance) {
        it->second.distance = distance;
        it->second.copy_index = copy_idx;
      }
    }
  }

  const bool collect_mode = options.collect_threshold > 0.0;
  std::vector<MatchResult> results;
  results.reserve(best_per_shape.size());
  for (const auto& [id, result] : best_per_shape) {
    if (collect_mode && result.distance > options.collect_threshold) continue;
    results.push_back(result);
  }
  std::sort(results.begin(), results.end(),
            [](const MatchResult& a, const MatchResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.shape_id < b.shape_id;
            });
  if (!collect_mode && results.size() > options.k) results.resize(options.k);
  any_result = !results.empty();

  // Partial-result contract, exactly as Match: a stop with ranked
  // candidates returns them as an OK partial; a stop before anything was
  // ranked surfaces the stop status. A fully scored candidate set — even
  // an approximate one — is a natural "exhausted" finish.
  const util::Status stop = !hard_stop.ok() ? hard_stop : budget_stop;
  if (!stop.ok()) {
    st.termination = stop;
    if (results.empty()) {
      finish_obs(StopReason(stop));
      return stop;
    }
    st.partial = true;
    finish_obs(StopReason(stop));
  } else {
    st.exhausted = true;
    finish_obs("exhausted");
  }
  return results;
}

util::Result<std::vector<std::vector<MatchResult>>> MatchBatch(
    const ShapeBase& base, const std::vector<Polyline>& queries,
    const MatchOptions& options, std::vector<MatchStats>* stats) {
  if (!base.finalized()) {
    return util::Status::FailedPrecondition("ShapeBase not finalized");
  }
  const size_t n = queries.size();
  std::vector<std::vector<MatchResult>> results(n);
  if (stats != nullptr) stats->assign(n, MatchStats{});
  if (n == 0) return results;

  util::ThreadPool* pool = ResolvePool(options);
  const size_t slots =
      pool != nullptr ? pool->MaxSlots(options.num_threads) : 1;

  // One matcher per worker slot: Match owns per-query scratch, so
  // concurrent queries must not share an instance. Within one query the
  // candidate scoring already fans out through the same pool; nested
  // parallel regions degrade to inline execution, which keeps per-query
  // results identical to a serial loop.
  std::vector<std::unique_ptr<EnvelopeMatcher>> matchers;
  matchers.reserve(slots);
  for (size_t s = 0; s < slots; ++s) {
    matchers.push_back(std::make_unique<EnvelopeMatcher>(&base));
  }
  std::vector<util::Status> errors(n);
  std::vector<uint8_t> started(n, 0);

  // Per-query lifecycle stops do not fail the batch: a query that ran out
  // of time (or hit its budget / a batch-wide cancel) leaves its partial
  // results (possibly empty) in results[i] with the stop recorded in
  // stats[i].termination, while the other queries proceed. Real errors
  // still fail the whole batch, first query order.
  const auto run_query = [&](size_t worker, size_t i) {
    started[i] = 1;
    MatchStats* query_stats = stats != nullptr ? &(*stats)[i] : nullptr;
    auto result = matchers[worker]->Match(queries[i], options, query_stats);
    if (result.ok()) {
      results[i] = *std::move(result);
    } else if (!util::IsLifecycleStop(result.status().code())) {
      errors[i] = result.status();
    }
  };
  if (pool != nullptr) {
    // The token doubles as the pool's checkpoint: once cancelled, queries
    // not yet claimed never start (marked below), in-flight ones observe
    // the token themselves and stop with best-so-far.
    pool->ParallelFor(n, options.num_threads, run_query, options.cancel_token);
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (options.cancel_token != nullptr && options.cancel_token->cancelled()) {
        break;
      }
      run_query(0, i);
    }
  }
  if (stats != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (!started[i]) {
        (*stats)[i].termination =
            util::Status::Cancelled("batch cancelled before query started");
      }
    }
  }
  for (const util::Status& status : errors) {
    GEOSIR_RETURN_IF_ERROR(status);
  }
  return results;
}

}  // namespace geosir::core
