#include "core/chamfer_baseline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/normalize.h"

namespace geosir::core {

namespace {

constexpr double kMinX = -0.05, kMaxX = 1.05;
constexpr double kMinY = -1.05, kMaxY = 1.05;
constexpr float kInf = std::numeric_limits<float>::infinity();
// Unseeded cells use a large finite value: infinities make the EDT's
// intersection formula produce NaNs (inf - inf) and corrupt the hull.
constexpr float kFar = 1e12f;

/// 1D squared Euclidean distance transform (Felzenszwalb-Huttenlocher).
void Edt1d(const float* f, int n, float* out, int* v, float* z) {
  int k = 0;
  v[0] = 0;
  z[0] = -kInf;
  z[1] = kInf;
  for (int q = 1; q < n; ++q) {
    float s;
    while (true) {
      s = ((f[q] + q * q) - (f[v[k]] + v[k] * v[k])) / (2.0f * (q - v[k]));
      if (s > z[k]) break;
      --k;
    }
    ++k;
    v[k] = q;
    z[k] = s;
    z[k + 1] = kInf;
  }
  k = 0;
  for (int q = 0; q < n; ++q) {
    while (z[k + 1] < q) ++k;
    const int dq = q - v[k];
    out[q] = dq * dq + f[v[k]];
  }
}

}  // namespace

ChamferBaseline::ChamferBaseline(ChamferOptions options)
    : options_(options) {}

bool ChamferBaseline::ToCell(geom::Point p, int* cx, int* cy) const {
  const int w = options_.grid_width;
  const int h = options_.grid_height;
  *cx = static_cast<int>((p.x - kMinX) / (kMaxX - kMinX) * w);
  *cy = static_cast<int>((p.y - kMinY) / (kMaxY - kMinY) * h);
  return *cx >= 0 && *cx < w && *cy >= 0 && *cy < h;
}

util::Status ChamferBaseline::Add(ShapeId id, const geom::Polyline& boundary) {
  Shape shape;
  shape.id = id;
  shape.boundary = boundary;
  NormalizeOptions norm;
  norm.use_alpha_diameters = false;  // Both diameter orientations.
  GEOSIR_ASSIGN_OR_RETURN(std::vector<NormalizedCopy> copies,
                          NormalizeShape(shape, norm));

  const int w = options_.grid_width;
  const int h = options_.grid_height;
  const double cell_w = (kMaxX - kMinX) / w;
  for (const NormalizedCopy& copy : copies) {
    DistanceMap map;
    map.shape_id = id;
    map.cells.assign(static_cast<size_t>(w) * h, kFar);
    // Seed boundary cells by dense sampling along each edge.
    for (size_t e = 0; e < copy.shape.NumEdges(); ++e) {
      const geom::Segment edge = copy.shape.Edge(e);
      const int steps =
          std::max(2, static_cast<int>(edge.Length() / (cell_w * 0.5)));
      for (int s = 0; s <= steps; ++s) {
        int cx, cy;
        if (ToCell(edge.At(static_cast<double>(s) / steps), &cx, &cy)) {
          map.cells[static_cast<size_t>(cy) * w + cx] = 0.0f;
        }
      }
    }
    // Exact squared EDT: columns then rows.
    std::vector<float> scratch(std::max(w, h));
    std::vector<float> out(std::max(w, h));
    std::vector<int> v(std::max(w, h));
    std::vector<float> z(std::max(w, h) + 1);
    for (int x = 0; x < w; ++x) {
      for (int y = 0; y < h; ++y) {
        scratch[y] = map.cells[static_cast<size_t>(y) * w + x];
      }
      Edt1d(scratch.data(), h, out.data(), v.data(), z.data());
      for (int y = 0; y < h; ++y) {
        map.cells[static_cast<size_t>(y) * w + x] = out[y];
      }
    }
    for (int y = 0; y < h; ++y) {
      Edt1d(&map.cells[static_cast<size_t>(y) * w], w, out.data(), v.data(),
            z.data());
      for (int x = 0; x < w; ++x) {
        // Store linear distance in normalized units.
        map.cells[static_cast<size_t>(y) * w + x] =
            std::sqrt(out[x]) * static_cast<float>(cell_w);
      }
    }
    maps_.push_back(std::move(map));
  }
  return util::Status::OK();
}

double ChamferBaseline::Sample(const DistanceMap& map, geom::Point p) const {
  int cx, cy;
  if (!ToCell(p, &cx, &cy)) {
    // Outside the lune window: penalize by the window diagonal.
    return 2.0;
  }
  return map.cells[static_cast<size_t>(cy) * options_.grid_width + cx];
}

std::vector<ChamferBaseline::QueryResult> ChamferBaseline::Query(
    const geom::Polyline& query, size_t k) const {
  auto qnorm = NormalizeQuery(query);
  if (!qnorm.ok()) return {};
  // Contour samples of the normalized query.
  std::vector<geom::Point> samples;
  const double perimeter = qnorm->shape.Perimeter();
  for (int s = 0; s < options_.contour_samples; ++s) {
    samples.push_back(qnorm->shape.AtArcLength(
        perimeter * s / options_.contour_samples));
  }
  std::unordered_map<ShapeId, double> best;
  for (const DistanceMap& map : maps_) {
    double sum = 0.0;
    for (geom::Point p : samples) sum += Sample(map, p);
    const double score = sum / samples.size();
    auto [it, inserted] = best.try_emplace(map.shape_id, score);
    if (!inserted && score < it->second) it->second = score;
  }
  std::vector<QueryResult> results;
  results.reserve(best.size());
  for (const auto& [id, score] : best) results.push_back({id, score});
  std::sort(results.begin(), results.end(),
            [](const QueryResult& a, const QueryResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.shape_id < b.shape_id;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace geosir::core
