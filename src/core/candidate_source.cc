#include "core/candidate_source.h"

#include "core/shape_base.h"
#include "util/query_control.h"

namespace geosir::core {

util::Status ExactEnumerationSource::Generate(
    const geom::Polyline& normalized_query, size_t max_candidates,
    const MatchOptions& options, std::vector<uint32_t>* out,
    CandidateSourceStats* stats) {
  (void)normalized_query;
  out->clear();
  if (stats != nullptr) *stats = CandidateSourceStats{};
  if (base_ == nullptr || !base_->finalized()) {
    return util::Status::FailedPrecondition(
        "ExactEnumerationSource requires a finalized ShapeBase");
  }
  util::QueryControl control{options.deadline, options.cancel_token};
  const size_t total = base_->NumCopies();
  const size_t limit =
      (max_candidates == 0) ? total : std::min(max_candidates, total);
  out->reserve(limit);
  for (size_t idx = 0; idx < limit; ++idx) {
    // Poll at amortized granularity; enumeration is cheap per element.
    if ((idx & 1023) == 0) {
      util::Status stop = control.Check();
      if (!stop.ok()) {
        if (stats != nullptr) {
          stats->candidates_emitted = out->size();
          stats->termination = stop;
        }
        return stop;
      }
    }
    out->push_back(static_cast<uint32_t>(idx));
  }
  if (stats != nullptr) {
    stats->candidates_emitted = out->size();
    stats->truncated = limit < total;
    stats->exhaustive = limit == total;
  }
  return util::Status::OK();
}

}  // namespace geosir::core
