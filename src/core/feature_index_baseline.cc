#include "core/feature_index_baseline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "geom/transform.h"

namespace geosir::core {

FeatureIndexBaseline::FeatureIndexBaseline(FeatureIndexOptions options)
    : options_(options) {}

std::vector<double> FeatureIndexBaseline::MakeVector(
    const geom::Polyline& boundary, size_t edge_idx, bool forward) const {
  const geom::Segment edge = boundary.Edge(edge_idx);
  const geom::Point a = forward ? edge.a : edge.b;
  const geom::Point b = forward ? edge.b : edge.a;
  auto transform = geom::AffineTransform::MapSegmentToUnitBase(a, b);
  if (!transform.ok()) return {};
  const geom::Polyline normalized = boundary.Transformed(*transform);

  // Resample the boundary at uniform arc-length steps, starting from the
  // normalization edge's start vertex so corresponding features align.
  const double perimeter = normalized.Perimeter();
  if (perimeter <= 0.0) return {};
  // Arc-length offset of the edge start within the shape.
  double offset = 0.0;
  for (size_t i = 0; i < edge_idx; ++i) {
    offset += normalized.Edge(i).Length();
  }
  if (!forward) offset += normalized.Edge(edge_idx).Length();

  std::vector<double> vec;
  vec.reserve(2 * options_.samples);
  for (size_t s = 0; s < options_.samples; ++s) {
    double arc = offset + perimeter * static_cast<double>(s) /
                              static_cast<double>(options_.samples);
    if (normalized.closed()) {
      arc = std::fmod(arc, perimeter);
    } else if (arc > perimeter) {
      arc = perimeter;  // Open shapes clamp at the far end.
    }
    const geom::Point p = normalized.AtArcLength(arc);
    vec.push_back(p.x);
    vec.push_back(p.y);
  }
  return vec;
}

util::Status FeatureIndexBaseline::Add(ShapeId id,
                                       const geom::Polyline& boundary) {
  GEOSIR_RETURN_IF_ERROR(boundary.Validate());
  const size_t num_edges = boundary.NumEdges();
  size_t added = 0;
  for (size_t e = 0; e < num_edges; ++e) {
    for (bool forward : {true, false}) {
      std::vector<double> vec = MakeVector(boundary, e, forward);
      if (vec.empty()) continue;
      entries_.push_back(Entry{id, std::move(vec)});
      ++added;
    }
  }
  if (added == 0) {
    return util::Status::InvalidArgument("no usable edges in shape");
  }
  return util::Status::OK();
}

std::vector<FeatureIndexBaseline::QueryResult> FeatureIndexBaseline::Query(
    const geom::Polyline& query, size_t k) const {
  std::unordered_map<ShapeId, double> best;
  const size_t num_edges = query.NumEdges();
  for (size_t e = 0; e < num_edges; ++e) {
    // Matching Mehrotra & Gary: one query orientation suffices because
    // both orientations of every database edge are stored.
    const std::vector<double> qvec = MakeVector(query, e, /*forward=*/true);
    if (qvec.empty()) continue;
    for (const Entry& entry : entries_) {
      double d2 = 0.0;
      for (size_t i = 0; i < qvec.size() && i < entry.vec.size(); ++i) {
        const double diff = qvec[i] - entry.vec[i];
        d2 += diff * diff;
      }
      const double d = std::sqrt(d2);
      auto [it, inserted] = best.try_emplace(entry.shape_id, d);
      if (!inserted && d < it->second) it->second = d;
    }
  }
  std::vector<QueryResult> results;
  results.reserve(best.size());
  for (const auto& [id, d] : best) results.push_back(QueryResult{id, d});
  std::sort(results.begin(), results.end(),
            [](const QueryResult& a, const QueryResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.shape_id < b.shape_id;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace geosir::core
