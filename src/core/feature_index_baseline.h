#ifndef GEOSIR_CORE_FEATURE_INDEX_BASELINE_H_
#define GEOSIR_CORE_FEATURE_INDEX_BASELINE_H_

#include <cstdint>
#include <vector>

#include "core/shape.h"
#include "util/status.h"

namespace geosir::core {

struct FeatureIndexOptions {
  /// Number of boundary sample points per stored vector; the feature
  /// space is R^{2 * samples}.
  size_t samples = 16;
};

/// Reimplementation of the Mehrotra & Gary feature-index baseline the
/// paper compares against (Section 1/2.3): every shape is normalized
/// about *each of its edges* — the edge is mapped onto ((0,0), (1,0)),
/// both orientations — and each normalized copy is stored as a fixed-
/// dimensional vector of resampled boundary points; retrieval is
/// nearest-neighbor in that vector space under the Euclidean distance.
///
/// Two documented weaknesses this repo's benchmarks exercise:
///  * storage blow-up: 2 * edges copies per shape vs. 2 * alpha-diameters;
///  * noise sensitivity: a single distorted edge perturbs every vector
///    normalized on it, and the query matches only if some *edge pair*
///    aligns (Figure 2's failure case).
class FeatureIndexBaseline {
 public:
  explicit FeatureIndexBaseline(FeatureIndexOptions options = {});

  /// Adds a shape under all its edge normalizations.
  util::Status Add(ShapeId id, const geom::Polyline& boundary);

  struct QueryResult {
    ShapeId shape_id = 0;
    double distance = 0.0;
  };

  /// k nearest shapes for the query (per-shape best over all stored and
  /// query-side edge normalizations).
  std::vector<QueryResult> Query(const geom::Polyline& query,
                                 size_t k = 1) const;

  /// Total stored vectors (the space-overhead metric).
  size_t NumEntries() const { return entries_.size(); }
  size_t Dimension() const { return 2 * options_.samples; }

 private:
  struct Entry {
    ShapeId shape_id;
    std::vector<double> vec;
  };

  /// Resamples `boundary` normalized about edge `edge_idx` (direction
  /// `forward`) into a feature vector; empty when the edge is degenerate.
  std::vector<double> MakeVector(const geom::Polyline& boundary,
                                 size_t edge_idx, bool forward) const;

  FeatureIndexOptions options_;
  std::vector<Entry> entries_;
};

}  // namespace geosir::core

#endif  // GEOSIR_CORE_FEATURE_INDEX_BASELINE_H_
