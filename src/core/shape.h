#ifndef GEOSIR_CORE_SHAPE_H_
#define GEOSIR_CORE_SHAPE_H_

#include <cstdint>
#include <string>

#include "geom/polyline.h"

namespace geosir::core {

/// Identifier of a shape in the shape base.
using ShapeId = uint32_t;

/// Identifier of the image a shape was extracted from (query module).
using ImageId = uint32_t;

constexpr ImageId kNoImage = static_cast<ImageId>(-1);

/// A database shape: an object boundary extracted from an image
/// (Section 2.4). Geometry is stored in original (image) coordinates; the
/// normalized copies live in the ShapeBase.
struct Shape {
  ShapeId id = 0;
  ImageId image = kNoImage;
  geom::Polyline boundary;
  std::string label;  // Optional human-readable tag (examples/tests).
};

}  // namespace geosir::core

#endif  // GEOSIR_CORE_SHAPE_H_
